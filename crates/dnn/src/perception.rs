//! The calibrated perception head used by closed-loop evaluations.
//!
//! The paper trains its classifiers on 12,000 rendered images; training
//! deep networks inside the benchmark harness is infeasible, so closed-loop
//! flights use this calibrated substitute (see DESIGN.md §1): the true
//! angular/lateral class is computed from ground truth, the predicted class
//! follows the model's validation accuracy (Table 3), and softmax
//! confidence grows with model capacity — reproducing both failure modes
//! discussed in Section 5.2 (small models: wrong and timid predictions →
//! wide turns and collisions; big models: overconfident predictions →
//! sharp corrections), while inference *latency* is always measured on the
//! cycle-level SoC model.

use crate::resnet::DnnModel;
use rose_sim_core::rng::SimRng;
use rose_sim_core::snap::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// The three view classes of each head (Figure 8), drone-centric:
/// `Left` means the UAV is rotated/offset to the left of the trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViewClass {
    /// UAV left of / rotated left of the trail.
    Left,
    /// On the trail.
    Center,
    /// UAV right of / rotated right of the trail.
    Right,
}

impl ViewClass {
    fn index(self) -> usize {
        match self {
            ViewClass::Left => 0,
            ViewClass::Center => 1,
            ViewClass::Right => 2,
        }
    }
}

/// Softmax probabilities over `[left, center, right]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassProbs(pub [f64; 3]);

impl ClassProbs {
    /// Probability of the `Left` class.
    pub fn left(&self) -> f64 {
        self.0[0]
    }

    /// Probability of the `Center` class.
    pub fn center(&self) -> f64 {
        self.0[1]
    }

    /// Probability of the `Right` class.
    pub fn right(&self) -> f64 {
        self.0[2]
    }

    /// The argmax class.
    pub fn argmax(&self) -> ViewClass {
        let mut best = 0;
        for i in 1..3 {
            if self.0[i] > self.0[best] {
                best = i;
            }
        }
        [ViewClass::Left, ViewClass::Center, ViewClass::Right][best]
    }

    /// Collapses to a one-hot distribution on the argmax (the argmax
    /// policy used with ResNet6 in the dynamic runtime, Section 5.3).
    pub fn one_hot(&self) -> ClassProbs {
        let mut p = [0.0; 3];
        p[self.argmax().index()] = 1.0;
        ClassProbs(p)
    }
}

/// Output of one inference: both heads' distributions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerceptionOutput {
    /// Angular head (view angle relative to the trail).
    pub angular: ClassProbs,
    /// Lateral head (offset relative to the trail).
    pub lateral: ClassProbs,
}

/// The calibrated dual-head classifier for one [`DnnModel`].
#[derive(Debug, Clone)]
pub struct PerceptionHead {
    model: DnnModel,
    rng: SimRng,
    /// Heading error magnitude (rad) at which the view leaves `Center`.
    pub angular_threshold: f64,
    /// Lateral offset (fraction of corridor half-width) at which the view
    /// leaves `Center`.
    pub lateral_threshold: f64,
}

impl PerceptionHead {
    /// Creates a head for `model` with its own noise stream.
    pub fn new(model: DnnModel, rng: &SimRng) -> PerceptionHead {
        PerceptionHead {
            model,
            rng: rng.split("perception"),
            angular_threshold: 0.12,
            lateral_threshold: 0.30,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> DnnModel {
        self.model
    }

    /// Serializes the head's dynamic state: the sampling stream position
    /// plus the (publicly tunable) class-boundary thresholds.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let PerceptionHead {
            model: _,
            rng,
            angular_threshold,
            lateral_threshold,
        } = self;
        rng.save_state(w);
        w.f64(*angular_threshold);
        w.f64(*lateral_threshold);
    }

    /// Restores the head's dynamic state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rng.restore_state(r)?;
        self.angular_threshold = r.f64()?;
        self.lateral_threshold = r.f64()?;
        Ok(())
    }

    /// Classifies a ground-truth pose error.
    ///
    /// * `heading_error` — radians, positive = UAV points left of trail.
    /// * `lateral_offset` — meters, positive = UAV left of trail.
    /// * `half_width` — local corridor half-width (normalizes the offset).
    pub fn classify(
        &mut self,
        heading_error: f64,
        lateral_offset: f64,
        half_width: f64,
    ) -> PerceptionOutput {
        let ang_true = Self::bucket(heading_error / self.angular_threshold);
        let lat_true = Self::bucket(lateral_offset / (half_width * self.lateral_threshold));
        // Margin: how deep into the class the sample is (0 at a boundary,
        // 1 well inside). Deeper samples are classified more reliably and
        // more confidently.
        let ang_margin = Self::margin(heading_error / self.angular_threshold);
        let lat_margin = Self::margin(lateral_offset / (half_width * self.lateral_threshold));
        PerceptionOutput {
            angular: self.head(ang_true, ang_margin),
            lateral: self.head(lat_true, lat_margin),
        }
    }

    /// Maps a normalized error to its true class (±1 boundaries).
    fn bucket(normalized: f64) -> ViewClass {
        if normalized > 1.0 {
            ViewClass::Left
        } else if normalized < -1.0 {
            ViewClass::Right
        } else {
            ViewClass::Center
        }
    }

    /// Distance from the nearest class boundary, saturating at 1.
    fn margin(normalized: f64) -> f64 {
        (normalized.abs() - 1.0).abs().min(1.0)
    }

    fn head(&mut self, truth: ViewClass, margin: f64) -> ClassProbs {
        // Effective accuracy: validation accuracy, degraded near class
        // boundaries (ambiguous views) and slightly improved deep inside.
        let base = self.model.validation_accuracy();
        let acc = (base - 0.25 * (1.0 - margin)).clamp(0.34, 0.99);
        let predicted = if self.rng.chance(acc) {
            truth
        } else {
            // Confusions are mostly with the adjacent class: a side view is
            // rarely mistaken for the opposite side.
            match truth {
                ViewClass::Center => {
                    if self.rng.chance(0.5) {
                        ViewClass::Left
                    } else {
                        ViewClass::Right
                    }
                }
                side => {
                    if self.rng.chance(0.85) {
                        ViewClass::Center
                    } else {
                        side
                    }
                }
            }
        };
        // Confidence: model capacity scaled by margin (Section 5.2 — large
        // nets produce higher-confidence softmax outputs).
        let conf = (self.model.confidence() * (0.55 + 0.45 * margin)).clamp(0.34, 0.97);
        let mut probs = [0.0; 3];
        let rest = 1.0 - conf;
        match predicted {
            ViewClass::Center => {
                probs[1] = conf;
                probs[0] = rest * 0.5;
                probs[2] = rest * 0.5;
            }
            ViewClass::Left => {
                probs[0] = conf;
                probs[1] = rest * 0.8;
                probs[2] = rest * 0.2;
            }
            ViewClass::Right => {
                probs[2] = conf;
                probs[1] = rest * 0.8;
                probs[0] = rest * 0.2;
            }
        }
        ClassProbs(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(model: DnnModel) -> PerceptionHead {
        PerceptionHead::new(model, &SimRng::new(99))
    }

    #[test]
    fn clear_views_classify_at_validation_accuracy() {
        let mut h = head(DnnModel::ResNet14);
        let n = 20_000;
        let correct = (0..n)
            .filter(|_| {
                // Deep inside the Left class (pointing far left).
                let out = h.classify(0.3, 0.0, 1.6);
                out.angular.argmax() == ViewClass::Left
            })
            .count();
        let acc = correct as f64 / n as f64;
        let expect = DnnModel::ResNet14.validation_accuracy();
        assert!(
            (acc - expect).abs() < 0.04,
            "empirical {acc} vs validation {expect}"
        );
    }

    #[test]
    fn boundary_views_are_less_reliable() {
        let mut h = head(DnnModel::ResNet34);
        let n = 10_000;
        let acc_of = |h: &mut PerceptionHead, err: f64| {
            (0..n)
                .filter(|_| h.classify(err, 0.0, 1.6).angular.argmax() == ViewClass::Left)
                .count() as f64
                / n as f64
        };
        let deep = acc_of(&mut h, 0.3);
        let shallow = acc_of(&mut h, 0.125); // just past the threshold
        assert!(deep > shallow + 0.1, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    fn bigger_models_are_more_confident() {
        let mut small = head(DnnModel::ResNet6);
        let mut big = head(DnnModel::ResNet34);
        let mut conf_small = 0.0;
        let mut conf_big = 0.0;
        let n = 2000;
        for _ in 0..n {
            conf_small += small.classify(0.3, 0.0, 1.6).angular.left();
            conf_big += big.classify(0.3, 0.0, 1.6).angular.left();
        }
        assert!(
            conf_big / n as f64 > conf_small / n as f64 + 0.15,
            "big {} vs small {}",
            conf_big / n as f64,
            conf_small / n as f64
        );
    }

    #[test]
    fn signs_are_drone_centric() {
        let mut h = head(DnnModel::ResNet34);
        // Average over noise: pointing left -> Left dominates.
        let mut left = 0.0;
        let mut right = 0.0;
        for _ in 0..500 {
            let out = h.classify(0.4, 0.0, 1.6);
            left += out.angular.left();
            right += out.angular.right();
        }
        assert!(left > right, "pointing left should read Left");
        // Offset right -> lateral Right dominates.
        let mut l = 0.0;
        let mut r = 0.0;
        for _ in 0..500 {
            let out = h.classify(0.0, -1.2, 1.6);
            l += out.lateral.left();
            r += out.lateral.right();
        }
        assert!(r > l, "offset right should read Right");
    }

    #[test]
    fn one_hot_collapse() {
        let p = ClassProbs([0.1, 0.2, 0.7]);
        assert_eq!(p.argmax(), ViewClass::Right);
        assert_eq!(p.one_hot().0, [0.0, 0.0, 1.0]);
    }

    #[test]
    fn probabilities_always_normalized() {
        let mut h = head(DnnModel::ResNet6);
        for i in 0..1000 {
            let err = (i as f64 - 500.0) / 500.0;
            let out = h.classify(err, -err, 1.6);
            let sa: f64 = out.angular.0.iter().sum();
            let sl: f64 = out.lateral.0.iter().sum();
            assert!((sa - 1.0).abs() < 1e-9);
            assert!((sl - 1.0).abs() < 1e-9);
        }
    }
}
