//! A minimal NCHW `f32` tensor.

use serde::{Deserialize, Serialize};

/// A dense row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Tensor {
        let n = Tensor::check_shape(shape);
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Tensor {
        let n = Tensor::check_shape(shape);
        assert_eq!(data.len(), n, "data length {} != shape product {n}", data.len());
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a tensor by calling `f(flat_index)` for each element.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Tensor {
        let n = Tensor::check_shape(shape);
        Tensor {
            shape: shape.to_vec(),
            data: (0..n).map(&mut f).collect(),
        }
    }

    fn check_shape(shape: &[usize]) -> usize {
        assert!(!shape.is_empty(), "tensor shape cannot be empty");
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor shape {shape:?} has a zero dimension"
        );
        shape.iter().product()
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has zero elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at a 3-D (C, H, W) index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-D or the index is out of bounds.
    pub fn at3(&self, c: usize, h: usize, w: usize) -> f32 {
        assert_eq!(self.shape.len(), 3, "at3 on {:?}", self.shape);
        let (ch, hh, ww) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(c < ch && h < hh && w < ww, "index out of bounds");
        self.data[(c * hh + h) * ww + w]
    }

    /// Sets the element at a 3-D (C, H, W) index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-D or the index is out of bounds.
    pub fn set3(&mut self, c: usize, h: usize, w: usize, v: f32) {
        assert_eq!(self.shape.len(), 3, "set3 on {:?}", self.shape);
        let (ch, hh, ww) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(c < ch && h < hh && w < ww, "index out of bounds");
        self.data[(c * hh + h) * ww + w] = v;
    }

    /// Index of the maximum element (first on ties).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .fold((0, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }

    /// Reshapes in place (element count must match).
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn reshape(&mut self, shape: &[usize]) {
        let n = Tensor::check_shape(shape);
        assert_eq!(n, self.data.len(), "reshape changes element count");
        self.shape = shape.to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        t.set3(1, 2, 3, 5.0);
        assert_eq!(t.at3(1, 2, 3), 5.0);
        assert_eq!(t.at3(0, 0, 0), 0.0);
    }

    #[test]
    fn from_fn_layout() {
        let t = Tensor::from_fn(&[2, 2], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn argmax_first_max() {
        let t = Tensor::from_vec(&[4], vec![1.0, 7.0, 7.0, 2.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(&[6], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        t.reshape(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.data()[5], 5.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_length_mismatch_panics() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dim_panics() {
        Tensor::zeros(&[2, 0]);
    }
}
