//! Training for the dual classifier heads (the artifact's §A.4.4 flow).
//!
//! The paper trains its TrailNet-style classifiers on 12,000 rendered
//! images with randomized positions, angles, and textures. This module
//! provides the equivalent trainable stage for the reproduction: a
//! multinomial-logistic-regression trainer that fits the two 3-class
//! linear heads on top of backbone features
//! ([`crate::Network::forward_features`]), with mini-batch SGD and
//! cross-entropy loss. The backbone acts as a (fixed) random feature
//! extractor — enough to learn the strongly structured corridor renders,
//! while keeping training fast enough to run inside the test suite.

use crate::tensor::Tensor;
use rose_sim_core::rng::SimRng;
use serde::{Deserialize, Serialize};

/// One training example: a feature vector and its two class labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Backbone feature vector.
    pub features: Vec<f32>,
    /// Angular class (0 = left, 1 = center, 2 = right).
    pub angular: usize,
    /// Lateral class (0 = left, 1 = center, 2 = right).
    pub lateral: usize,
}

impl Example {
    /// Creates an example, validating labels.
    ///
    /// # Panics
    ///
    /// Panics if either label is not in `0..3`.
    pub fn new(features: Vec<f32>, angular: usize, lateral: usize) -> Example {
        assert!(angular < 3 && lateral < 3, "labels must be in 0..3");
        Example {
            features,
            angular,
            lateral,
        }
    }
}

/// Hyperparameters for head training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Epochs over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            learning_rate: 0.05,
            weight_decay: 1e-4,
            epochs: 40,
            batch_size: 16,
        }
    }
}

/// A single 3-class softmax head under training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxHead {
    /// Weights, shape (3, d).
    weights: Vec<f32>,
    /// Biases, shape (3).
    biases: [f32; 3],
    dim: usize,
}

impl SoftmaxHead {
    /// Creates a zero-initialized head over `dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> SoftmaxHead {
        assert!(dim > 0, "feature dimension must be nonzero");
        SoftmaxHead {
            weights: vec![0.0; 3 * dim],
            biases: [0.0; 3],
            dim,
        }
    }

    /// Class probabilities for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the feature length mismatches.
    pub fn predict(&self, features: &[f32]) -> [f32; 3] {
        assert_eq!(features.len(), self.dim, "feature length");
        let mut logits = [0.0f32; 3];
        for (c, logit) in logits.iter_mut().enumerate() {
            let row = &self.weights[c * self.dim..(c + 1) * self.dim];
            *logit = self.biases[c]
                + row.iter().zip(features).map(|(w, x)| w * x).sum::<f32>();
        }
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps = logits.map(|l| (l - max).exp());
        let sum: f32 = exps.iter().sum();
        exps.map(|e| e / sum)
    }

    /// The argmax class.
    pub fn classify(&self, features: &[f32]) -> usize {
        let p = self.predict(features);
        let mut best = 0;
        for class in 1..3 {
            if p[class].total_cmp(&p[best]).is_gt() {
                best = class;
            }
        }
        best
    }

    /// One SGD step on a mini-batch; returns the mean cross-entropy loss.
    fn step(&mut self, batch: &[(&[f32], usize)], cfg: &TrainConfig) -> f32 {
        let mut grad_w = vec![0.0f32; 3 * self.dim];
        let mut grad_b = [0.0f32; 3];
        let mut loss = 0.0;
        for &(x, label) in batch {
            let p = self.predict(x);
            loss -= p[label].max(1e-9).ln();
            for c in 0..3 {
                let err = p[c] - (c == label) as u8 as f32;
                grad_b[c] += err;
                for (g, &xv) in grad_w[c * self.dim..(c + 1) * self.dim]
                    .iter_mut()
                    .zip(x)
                {
                    *g += err * xv;
                }
            }
        }
        let scale = cfg.learning_rate / batch.len() as f32;
        for (w, g) in self.weights.iter_mut().zip(&grad_w) {
            *w -= scale * (g + cfg.weight_decay * *w);
        }
        for (b, g) in self.biases.iter_mut().zip(&grad_b) {
            *b -= scale * g;
        }
        loss / batch.len() as f32
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Final-epoch mean cross-entropy of the angular head.
    pub angular_loss: f32,
    /// Final-epoch mean cross-entropy of the lateral head.
    pub lateral_loss: f32,
    /// Epochs executed.
    pub epochs: usize,
}

/// The dual-head trainer.
#[derive(Debug, Clone)]
pub struct HeadTrainer {
    /// The angular classifier head.
    pub angular: SoftmaxHead,
    /// The lateral classifier head.
    pub lateral: SoftmaxHead,
    config: TrainConfig,
    rng: SimRng,
}

impl HeadTrainer {
    /// Creates a trainer for `dim`-dimensional features.
    pub fn new(dim: usize, config: TrainConfig, rng: &SimRng) -> HeadTrainer {
        HeadTrainer {
            angular: SoftmaxHead::new(dim),
            lateral: SoftmaxHead::new(dim),
            config,
            rng: rng.split("head-trainer"),
        }
    }

    /// Trains both heads with mini-batch SGD.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty.
    pub fn fit(&mut self, examples: &[Example]) -> TrainReport {
        assert!(!examples.is_empty(), "cannot train on an empty dataset");
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut angular_loss = 0.0;
        let mut lateral_loss = 0.0;
        for _ in 0..self.config.epochs {
            // Fisher–Yates shuffle from the deterministic stream.
            for i in (1..order.len()).rev() {
                let j = self.rng.below(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            angular_loss = 0.0;
            lateral_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                let ang: Vec<(&[f32], usize)> = chunk
                    .iter()
                    .map(|&i| (examples[i].features.as_slice(), examples[i].angular))
                    .collect();
                let lat: Vec<(&[f32], usize)> = chunk
                    .iter()
                    .map(|&i| (examples[i].features.as_slice(), examples[i].lateral))
                    .collect();
                angular_loss += self.angular.step(&ang, &self.config);
                lateral_loss += self.lateral.step(&lat, &self.config);
                batches += 1;
            }
            angular_loss /= batches as f32;
            lateral_loss /= batches as f32;
        }
        TrainReport {
            angular_loss,
            lateral_loss,
            epochs: self.config.epochs,
        }
    }

    /// Accuracy of both heads on a labeled set: `(angular, lateral)`.
    pub fn evaluate(&self, examples: &[Example]) -> (f64, f64) {
        if examples.is_empty() {
            return (0.0, 0.0);
        }
        let mut ang = 0;
        let mut lat = 0;
        for e in examples {
            if self.angular.classify(&e.features) == e.angular {
                ang += 1;
            }
            if self.lateral.classify(&e.features) == e.lateral {
                lat += 1;
            }
        }
        (
            ang as f64 / examples.len() as f64,
            lat as f64 / examples.len() as f64,
        )
    }
}

/// Extracts backbone features for an image tensor and builds an example.
pub fn example_from_image(
    net: &crate::Network,
    image: &Tensor,
    angular: usize,
    lateral: usize,
) -> Example {
    let features = net.forward_features(image);
    Example::new(features.data().to_vec(), angular, lateral)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable 3-class toy problem in 2-D.
    fn toy_dataset(n_per_class: usize, rng: &mut SimRng) -> Vec<Example> {
        let centers = [(-2.0f32, 0.0f32), (0.0, 2.0), (2.0, 0.0)];
        let mut out = Vec::new();
        for (label, (cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                let x = cx + rng.normal(0.0, 0.4) as f32;
                let y = cy + rng.normal(0.0, 0.4) as f32;
                // lateral label mirrors angular for the toy problem.
                out.push(Example::new(vec![x, y], label, 2 - label));
            }
        }
        out
    }

    #[test]
    fn learns_separable_classes() {
        let mut rng = SimRng::new(42);
        let train = toy_dataset(60, &mut rng);
        let test = toy_dataset(30, &mut rng);
        let mut trainer = HeadTrainer::new(2, TrainConfig::default(), &SimRng::new(7));
        let report = trainer.fit(&train);
        assert!(report.angular_loss < 0.3, "loss {}", report.angular_loss);
        let (acc_a, acc_l) = trainer.evaluate(&test);
        assert!(acc_a > 0.95, "angular accuracy {acc_a}");
        assert!(acc_l > 0.95, "lateral accuracy {acc_l}");
    }

    #[test]
    fn untrained_head_is_uniform() {
        let head = SoftmaxHead::new(4);
        let p = head.predict(&[1.0, -1.0, 0.5, 2.0]);
        for prob in p {
            assert!((prob - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let mut rng = SimRng::new(3);
        let data = toy_dataset(20, &mut rng);
        let run = || {
            let mut t = HeadTrainer::new(2, TrainConfig::default(), &SimRng::new(9));
            t.fit(&data);
            t.angular.predict(&[0.3, 0.8])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn features_from_backbone() {
        let net = crate::DnnModel::ResNet6.build(&SimRng::new(5), Some(16));
        let img = Tensor::from_fn(&[3, 16, 16], |i| (i % 7) as f32 / 7.0);
        let e = example_from_image(&net, &img, 0, 2);
        assert_eq!(e.features.len(), 64); // ResNet6's final channel count
        assert_eq!((e.angular, e.lateral), (0, 2));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        HeadTrainer::new(2, TrainConfig::default(), &SimRng::new(1)).fit(&[]);
    }
}
