//! The evaluated ResNet controller variants.
//!
//! Section 4.2.2 / Table 3 evaluate TrailNet-architecture ResNets of depth
//! 6, 11, 14, 18, and 34: a convolutional stem, stages of residual basic
//! blocks, global average pooling, and two 3-class linear heads (angular
//! and lateral). [`DnnModel`] enumerates the variants;
//! [`DnnModel::plan`] yields a shape-only [`InferencePlan`] used to time
//! inference on the SoC models, and [`DnnModel::build`] materializes a
//! weighted [`Network`] for functional inference.

use crate::graph::{Network, NetworkBuilder, NodeId, Op};
use crate::tensor::Tensor;
use rose_sim_core::rng::SimRng;
use rose_socsim::gemmini::ConvShape;
use rose_socsim::kernel::ElemKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The DNN controller variants of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DnnModel {
    /// 6-layer ResNet: fastest, least accurate.
    ResNet6,
    /// 11-layer ResNet.
    ResNet11,
    /// 14-layer ResNet: the paper's sweet spot on BOOM+Gemmini.
    ResNet14,
    /// 18-layer ResNet.
    ResNet18,
    /// 34-layer ResNet: most accurate in validation, worst in flight.
    ResNet34,
}

impl fmt::Display for DnnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ResNet{}", self.depth())
    }
}

/// Architecture description of one variant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResNetSpec {
    /// Input tensor shape (C, H, W).
    pub input: (usize, usize, usize),
    /// Stem convolution output channels (7×7, stride 2).
    pub stem_channels: usize,
    /// Residual basic blocks per stage.
    pub stage_blocks: Vec<usize>,
    /// Output channels per stage.
    pub stage_channels: Vec<usize>,
    /// Classes per head (3: left / center / right).
    pub classes: usize,
}

impl DnnModel {
    /// All variants, smallest to largest.
    pub fn all() -> [DnnModel; 5] {
        [
            DnnModel::ResNet6,
            DnnModel::ResNet11,
            DnnModel::ResNet14,
            DnnModel::ResNet18,
            DnnModel::ResNet34,
        ]
    }

    /// Serializes the model selection as a stable one-byte tag.
    pub fn save_state(&self, w: &mut rose_sim_core::snap::SnapWriter) {
        w.u8(match self {
            DnnModel::ResNet6 => 0,
            DnnModel::ResNet11 => 1,
            DnnModel::ResNet14 => 2,
            DnnModel::ResNet18 => 3,
            DnnModel::ResNet34 => 4,
        });
    }

    /// Restores a model selection from its tag.
    ///
    /// # Errors
    ///
    /// Propagates [`rose_sim_core::snap::SnapError`] on a malformed
    /// snapshot.
    pub fn restore_state(
        r: &mut rose_sim_core::snap::SnapReader<'_>,
    ) -> Result<DnnModel, rose_sim_core::snap::SnapError> {
        match r.u8()? {
            0 => Ok(DnnModel::ResNet6),
            1 => Ok(DnnModel::ResNet11),
            2 => Ok(DnnModel::ResNet14),
            3 => Ok(DnnModel::ResNet18),
            4 => Ok(DnnModel::ResNet34),
            tag => Err(rose_sim_core::snap::SnapError::BadTag {
                context: "DnnModel",
                tag,
            }),
        }
    }

    /// Nominal depth (weight layers).
    pub fn depth(&self) -> usize {
        match self {
            DnnModel::ResNet6 => 6,
            DnnModel::ResNet11 => 11,
            DnnModel::ResNet14 => 14,
            DnnModel::ResNet18 => 18,
            DnnModel::ResNet34 => 34,
        }
    }

    /// Validation accuracy from Table 3.
    pub fn validation_accuracy(&self) -> f64 {
        match self {
            DnnModel::ResNet6 => 0.72,
            DnnModel::ResNet11 => 0.78,
            DnnModel::ResNet14 => 0.82,
            DnnModel::ResNet18 => 0.83,
            DnnModel::ResNet34 => 0.86,
        }
    }

    /// Peak softmax confidence of the model's predictions. Higher-capacity
    /// models classify with higher confidence (Section 5.2), producing
    /// sharper trajectory corrections through Equation 2.
    pub fn confidence(&self) -> f64 {
        match self {
            DnnModel::ResNet6 => 0.48,
            DnnModel::ResNet11 => 0.60,
            DnnModel::ResNet14 => 0.72,
            DnnModel::ResNet18 => 0.84,
            DnnModel::ResNet34 => 0.95,
        }
    }

    /// The architecture spec (evaluation input resolution, 3×128×128).
    pub fn spec(&self) -> ResNetSpec {
        let (stem, blocks, channels): (usize, Vec<usize>, Vec<usize>) = match self {
            DnnModel::ResNet6 => (32, vec![1, 1], vec![32, 64]),
            DnnModel::ResNet11 => (48, vec![1, 1, 1, 1], vec![48, 96, 192, 384]),
            DnnModel::ResNet14 => (48, vec![1, 1, 2, 2], vec![48, 96, 192, 384]),
            DnnModel::ResNet18 => (64, vec![2, 2, 2, 2], vec![64, 128, 256, 512]),
            DnnModel::ResNet34 => (64, vec![3, 4, 6, 3], vec![64, 128, 256, 512]),
        };
        ResNetSpec {
            input: (3, 160, 160),
            stem_channels: stem,
            stage_blocks: blocks,
            stage_channels: channels,
            classes: 3,
        }
    }

    /// Builds the shape-only inference plan at the evaluation resolution.
    pub fn plan(&self) -> InferencePlan {
        InferencePlan::from_spec(&self.to_string(), &self.spec())
    }

    /// Materializes a weighted network with deterministic He-initialized
    /// weights, optionally overriding the input resolution (small inputs
    /// keep functional tests fast).
    pub fn build(&self, rng: &SimRng, input_hw: Option<usize>) -> Network {
        let mut spec = self.spec();
        if let Some(hw) = input_hw {
            spec.input = (spec.input.0, hw, hw);
        }
        build_network(&self.to_string(), &spec, rng)
    }
}

/// A shape-only operator, sufficient for timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanOp {
    /// A convolution (runs on the accelerator when present).
    Conv(ConvShape),
    /// An elementwise pass over `n` values.
    Elementwise {
        /// Element count.
        n: usize,
        /// Operation kind.
        kind: ElemKind,
    },
    /// Pooling over `out_elems` outputs with a square `window`.
    Pool {
        /// Output element count.
        out_elems: usize,
        /// Window edge length.
        window: usize,
    },
    /// A fully-connected layer (`out × in` matvec).
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Softmax over `n` values.
    Softmax {
        /// Element count.
        n: usize,
    },
}

/// A complete shape-only inference description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferencePlan {
    name: String,
    ops: Vec<PlanOp>,
    input_elems: usize,
}

impl InferencePlan {
    /// Derives the plan for a spec.
    pub fn from_spec(name: &str, spec: &ResNetSpec) -> InferencePlan {
        let (c_in, h, w) = spec.input;
        let mut ops = Vec::new();
        // Stem: 7×7 stride-2 conv + BN + ReLU + 2×2 maxpool.
        let (mut ch, mut hh, mut ww) = (spec.stem_channels, h / 2, w / 2);
        ops.push(PlanOp::Conv(ConvShape {
            in_c: c_in,
            out_c: ch,
            out_h: hh,
            out_w: ww,
            ksize: 7,
        }));
        let mut elems = ch * hh * ww;
        ops.push(PlanOp::Elementwise {
            n: elems,
            kind: ElemKind::BatchNorm,
        });
        ops.push(PlanOp::Elementwise {
            n: elems,
            kind: ElemKind::Relu,
        });
        hh /= 2;
        ww /= 2;
        elems = ch * hh * ww;
        ops.push(PlanOp::Pool {
            out_elems: elems,
            window: 2,
        });

        // Residual stages.
        for (stage, (&blocks, &out_ch)) in spec
            .stage_blocks
            .iter()
            .zip(&spec.stage_channels)
            .enumerate()
        {
            for block in 0..blocks {
                let downsample = stage > 0 && block == 0;
                let in_ch = ch;
                if downsample {
                    hh /= 2;
                    ww /= 2;
                }
                let out_elems = out_ch * hh * ww;
                // conv1 (maybe strided / channel-expanding).
                ops.push(PlanOp::Conv(ConvShape {
                    in_c: in_ch,
                    out_c: out_ch,
                    out_h: hh,
                    out_w: ww,
                    ksize: 3,
                }));
                ops.push(PlanOp::Elementwise {
                    n: out_elems,
                    kind: ElemKind::BatchNorm,
                });
                ops.push(PlanOp::Elementwise {
                    n: out_elems,
                    kind: ElemKind::Relu,
                });
                // conv2.
                ops.push(PlanOp::Conv(ConvShape {
                    in_c: out_ch,
                    out_c: out_ch,
                    out_h: hh,
                    out_w: ww,
                    ksize: 3,
                }));
                ops.push(PlanOp::Elementwise {
                    n: out_elems,
                    kind: ElemKind::BatchNorm,
                });
                // Projection shortcut when shape changes.
                if in_ch != out_ch || downsample {
                    ops.push(PlanOp::Conv(ConvShape {
                        in_c: in_ch,
                        out_c: out_ch,
                        out_h: hh,
                        out_w: ww,
                        ksize: 1,
                    }));
                }
                ops.push(PlanOp::Elementwise {
                    n: out_elems,
                    kind: ElemKind::Add,
                });
                ops.push(PlanOp::Elementwise {
                    n: out_elems,
                    kind: ElemKind::Relu,
                });
                ch = out_ch;
            }
        }

        // Global average pool + two heads.
        ops.push(PlanOp::Pool {
            out_elems: ch,
            window: hh.clamp(1, 8),
        });
        for _ in 0..2 {
            ops.push(PlanOp::Linear {
                in_features: ch,
                out_features: spec.classes,
            });
            ops.push(PlanOp::Softmax { n: spec.classes });
        }

        InferencePlan {
            name: name.to_string(),
            ops,
            input_elems: c_in * h * w,
        }
    }

    /// Plan name (the model it was derived from).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shape-only operators in execution order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Input element count (C·H·W).
    pub fn input_elems(&self) -> usize {
        self.input_elems
    }

    /// Total convolution/linear multiply-accumulates.
    pub fn macs(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                PlanOp::Conv(s) => s.macs(),
                PlanOp::Linear {
                    in_features,
                    out_features,
                } => (in_features * out_features) as u64,
                _ => 0,
            })
            .sum()
    }

    /// Number of framework nodes (operators) for overhead accounting.
    pub fn node_count(&self) -> usize {
        self.ops.len()
    }
}

/// Builds a weighted network for `spec` with deterministic initialization.
fn build_network(name: &str, spec: &ResNetSpec, rng: &SimRng) -> Network {
    let mut rng = rng.split("resnet-init");
    let (mut b, input) = NetworkBuilder::new();
    let (c_in, _h, _w) = spec.input;

    let he = |fan_in: usize, n: usize, rng: &mut SimRng| -> Vec<f32> {
        let std = (2.0 / fan_in as f64).sqrt();
        (0..n).map(|_| (rng.normal(0.0, std)) as f32).collect()
    };
    let conv =
        |b: &mut NetworkBuilder, x: NodeId, i: usize, o: usize, k: usize, s: usize, p: usize, rng: &mut SimRng| {
            let weight = Tensor::from_vec(&[o, i, k, k], he(i * k * k, o * i * k * k, rng));
            b.push(
                Op::Conv {
                    weight,
                    bias: None,
                    stride: s,
                    pad: p,
                },
                x,
            )
        };
    let bn = |b: &mut NetworkBuilder, x: NodeId, c: usize| {
        b.push(
            Op::BatchNorm {
                scale: Tensor::from_fn(&[c], |_| 1.0),
                shift: Tensor::zeros(&[c]),
            },
            x,
        )
    };

    // Stem.
    let mut ch = spec.stem_channels;
    let mut x = conv(&mut b, input, c_in, ch, 7, 2, 3, &mut rng);
    x = bn(&mut b, x, ch);
    x = b.push(Op::Relu, x);
    x = b.push(Op::MaxPool { window: 2 }, x);

    // Stages.
    for (stage, (&blocks, &out_ch)) in spec
        .stage_blocks
        .iter()
        .zip(&spec.stage_channels)
        .enumerate()
    {
        for block in 0..blocks {
            let downsample = stage > 0 && block == 0;
            let stride = if downsample { 2 } else { 1 };
            let shortcut_src = x;
            let in_ch = ch;
            let mut y = conv(&mut b, x, in_ch, out_ch, 3, stride, 1, &mut rng);
            y = bn(&mut b, y, out_ch);
            y = b.push(Op::Relu, y);
            y = conv(&mut b, y, out_ch, out_ch, 3, 1, 1, &mut rng);
            y = bn(&mut b, y, out_ch);
            let shortcut = if in_ch != out_ch || downsample {
                let s = conv(&mut b, shortcut_src, in_ch, out_ch, 1, stride, 0, &mut rng);
                bn(&mut b, s, out_ch)
            } else {
                shortcut_src
            };
            y = b.push(Op::Add { other: shortcut }, y);
            x = b.push(Op::Relu, y);
            ch = out_ch;
        }
    }

    // Heads.
    let pooled = b.push(Op::GlobalAvgPool, x);
    let head = |b: &mut NetworkBuilder, rng: &mut SimRng| {
        let weight = Tensor::from_vec(&[spec.classes, ch], he(ch, spec.classes * ch, rng));
        let fc = b.push(
            Op::Linear {
                weight,
                bias: Tensor::zeros(&[spec.classes]),
            },
            pooled,
        );
        b.push(Op::Softmax, fc)
    };
    let angular = head(&mut b, &mut rng);
    let lateral = head(&mut b, &mut rng);
    b.finish(name, angular, lateral)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_accuracies() {
        let accs: Vec<f64> = DnnModel::all()
            .iter()
            .map(|m| m.validation_accuracy())
            .collect();
        assert_eq!(accs, vec![0.72, 0.78, 0.82, 0.83, 0.86]);
        // Monotone with capacity, as is confidence.
        for pair in DnnModel::all().windows(2) {
            assert!(pair[0].validation_accuracy() < pair[1].validation_accuracy());
            assert!(pair[0].confidence() < pair[1].confidence());
        }
    }

    #[test]
    fn macs_grow_with_depth() {
        let macs: Vec<u64> = DnnModel::all().iter().map(|m| m.plan().macs()).collect();
        for pair in macs.windows(2) {
            assert!(pair[0] < pair[1], "MACs not monotone: {macs:?}");
        }
        // ResNet34 ≈ 2× ResNet18 (the classic ratio).
        let r = macs[4] as f64 / macs[3] as f64;
        assert!((1.6..2.4).contains(&r), "R34/R18 MAC ratio {r}");
    }

    #[test]
    fn plan_counts_are_plausible() {
        let plan = DnnModel::ResNet18.plan();
        // 1 stem + 16 block convs + 2 projections... conv ops:
        let convs = plan
            .ops()
            .iter()
            .filter(|o| matches!(o, PlanOp::Conv(_)))
            .count();
        assert_eq!(convs, 1 + 16 + 3, "stem + 16 block convs + 3 projections");
        assert_eq!(plan.input_elems(), 3 * 160 * 160);
    }

    #[test]
    fn functional_forward_small_input() {
        // A ResNet6 at 32×32 runs end to end and yields two distributions.
        let rng = SimRng::new(42);
        let net = DnnModel::ResNet6.build(&rng, Some(32));
        let input = Tensor::from_fn(&[3, 32, 32], |i| ((i % 17) as f32 - 8.0) / 8.0);
        let (a, l) = net.forward(&input);
        assert_eq!(a.len(), 3);
        assert_eq!(l.len(), 3);
        let sa: f32 = a.data().iter().sum();
        let sl: f32 = l.data().iter().sum();
        assert!((sa - 1.0).abs() < 1e-4, "angular sums to {sa}");
        assert!((sl - 1.0).abs() < 1e-4, "lateral sums to {sl}");
        assert!(net.param_count() > 10_000);
    }

    #[test]
    fn deterministic_build() {
        let rng = SimRng::new(7);
        let a = DnnModel::ResNet6.build(&rng, Some(16));
        let b = DnnModel::ResNet6.build(&rng, Some(16));
        assert_eq!(a, b);
    }

    #[test]
    fn depth_names() {
        assert_eq!(DnnModel::ResNet14.to_string(), "ResNet14");
        assert_eq!(DnnModel::ResNet14.depth(), 14);
    }
}
