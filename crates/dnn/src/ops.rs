//! Functional neural-network operators (NCHW, `f32`).
//!
//! These are the reference implementations executed on the host for
//! functional results; their *timing* on the simulated SoC comes from the
//! lowering in [`crate::lower`].

use crate::tensor::Tensor;

/// 2-D convolution with square kernels and symmetric zero padding.
///
/// `input` is (C_in, H, W); `weight` is (C_out, C_in, K, K); `bias` is
/// (C_out) if present. Output is (C_out, H_out, W_out) with
/// `H_out = (H + 2*pad - K) / stride + 1`.
///
/// # Panics
///
/// Panics on shape mismatches or a zero-sized output.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, stride: usize, pad: usize) -> Tensor {
    assert_eq!(input.shape().len(), 3, "conv2d input must be (C,H,W)");
    assert_eq!(weight.shape().len(), 4, "conv2d weight must be (O,I,K,K)");
    let (c_in, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (c_out, w_in, k, k2) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(k, k2, "kernel must be square");
    assert_eq!(c_in, w_in, "channel mismatch: input {c_in}, weight {w_in}");
    assert!(stride > 0, "stride must be positive");
    assert!(h + 2 * pad >= k && w + 2 * pad >= k, "kernel larger than input");
    let h_out = (h + 2 * pad - k) / stride + 1;
    let w_out = (w + 2 * pad - k) / stride + 1;

    let mut out = Tensor::zeros(&[c_out, h_out, w_out]);
    let idata = input.data();
    let wdata = weight.data();
    for oc in 0..c_out {
        let b = bias.map_or(0.0, |bt| bt.data()[oc]);
        for oy in 0..h_out {
            for ox in 0..w_out {
                let mut acc = b;
                for ic in 0..c_in {
                    for ky in 0..k {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let iv = idata[(ic * h + iy as usize) * w + ix as usize];
                            let wv = wdata[((oc * c_in + ic) * k + ky) * k + kx];
                            acc += iv * wv;
                        }
                    }
                }
                out.set3(oc, oy, ox, acc);
            }
        }
    }
    out
}

/// Inference-form batch normalization: `y = x * scale[c] + shift[c]`.
///
/// # Panics
///
/// Panics if the parameter length does not match the channel count.
pub fn batchnorm(input: &Tensor, scale: &Tensor, shift: &Tensor) -> Tensor {
    let c = input.shape()[0];
    assert_eq!(scale.len(), c, "scale length");
    assert_eq!(shift.len(), c, "shift length");
    let plane = input.len() / c;
    let mut out = input.clone();
    for ch in 0..c {
        let (s, b) = (scale.data()[ch], shift.data()[ch]);
        for v in &mut out.data_mut()[ch * plane..(ch + 1) * plane] {
            *v = *v * s + b;
        }
    }
    out
}

/// Elementwise `max(0, x)`.
pub fn relu(input: &Tensor) -> Tensor {
    let mut out = input.clone();
    for v in out.data_mut() {
        *v = v.max(0.0);
    }
    out
}

/// Elementwise addition (residual connection).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    let mut out = a.clone();
    for (o, &x) in out.data_mut().iter_mut().zip(b.data()) {
        *o += x;
    }
    out
}

/// 2-D max pooling with a square window (stride = window).
///
/// # Panics
///
/// Panics if the input is not 3-D.
pub fn maxpool(input: &Tensor, window: usize) -> Tensor {
    assert_eq!(input.shape().len(), 3, "maxpool input must be (C,H,W)");
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (h_out, w_out) = (h / window, w / window);
    assert!(h_out > 0 && w_out > 0, "window larger than input");
    let mut out = Tensor::zeros(&[c, h_out, w_out]);
    for ch in 0..c {
        for oy in 0..h_out {
            for ox in 0..w_out {
                let mut m = f32::NEG_INFINITY;
                for ky in 0..window {
                    for kx in 0..window {
                        m = m.max(input.at3(ch, oy * window + ky, ox * window + kx));
                    }
                }
                out.set3(ch, oy, ox, m);
            }
        }
    }
    out
}

/// Global average pooling: (C, H, W) → (C).
pub fn global_avgpool(input: &Tensor) -> Tensor {
    assert_eq!(input.shape().len(), 3, "gap input must be (C,H,W)");
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let plane = (h * w) as f32;
    Tensor::from_fn(&[c], |ch| {
        input.data()[ch * h * w..(ch + 1) * h * w].iter().sum::<f32>() / plane
    })
}

/// Fully-connected layer: `y = W x + b` with `W` of shape (out, in).
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn linear(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Tensor {
    assert_eq!(weight.shape().len(), 2, "linear weight must be (O,I)");
    let (o, i) = (weight.shape()[0], weight.shape()[1]);
    assert_eq!(input.len(), i, "linear input length");
    assert_eq!(bias.len(), o, "linear bias length");
    Tensor::from_fn(&[o], |row| {
        let mut acc = bias.data()[row];
        for (x, wv) in input.data().iter().zip(&weight.data()[row * i..(row + 1) * i]) {
            acc += x * wv;
        }
        acc
    })
}

/// Numerically-stable softmax over a 1-D tensor.
pub fn softmax(input: &Tensor) -> Tensor {
    let max = input.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = input.data().iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(&[input.len()], exps.into_iter().map(|e| e / sum).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1.0 reproduces the input.
        let input = Tensor::from_fn(&[1, 3, 3], |i| i as f32);
        let weight = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        let out = conv2d(&input, &weight, None, 1, 0);
        assert_eq!(out, input);
    }

    #[test]
    fn conv2d_hand_computed() {
        // 2x2 input, 2x2 kernel, no pad: single output = dot product.
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let weight = Tensor::from_vec(&[1, 1, 2, 2], vec![0.5, -1.0, 2.0, 0.0]);
        let out = conv2d(&input, &weight, None, 1, 0);
        assert_eq!(out.shape(), &[1, 1, 1]);
        assert!(approx(out.data()[0], 1.0 * 0.5 - 2.0 + 6.0));
    }

    #[test]
    fn conv2d_padding_and_stride() {
        let input = Tensor::from_fn(&[1, 4, 4], |_| 1.0);
        let weight = Tensor::from_fn(&[1, 1, 3, 3], |_| 1.0);
        // Same padding, stride 2: output 2x2; corners see 4 valid taps.
        let out = conv2d(&input, &weight, None, 2, 1);
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert!(approx(out.at3(0, 0, 0), 4.0));
        assert!(approx(out.at3(0, 1, 1), 9.0));
    }

    #[test]
    fn conv2d_bias_applied_per_channel() {
        let input = Tensor::zeros(&[1, 2, 2]);
        let weight = Tensor::zeros(&[2, 1, 1, 1]);
        let bias = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        let out = conv2d(&input, &weight, Some(&bias), 1, 0);
        assert!(approx(out.at3(0, 0, 0), 0.5));
        assert!(approx(out.at3(1, 1, 1), -0.5));
    }

    #[test]
    fn batchnorm_scale_shift() {
        let input = Tensor::from_vec(&[2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let scale = Tensor::from_vec(&[2], vec![2.0, 0.5]);
        let shift = Tensor::from_vec(&[2], vec![1.0, 0.0]);
        let out = batchnorm(&input, &scale, &shift);
        assert_eq!(out.data(), &[3.0, 5.0, 1.5, 2.0]);
    }

    #[test]
    fn relu_clamps() {
        let t = Tensor::from_vec(&[3], vec![-1.0, 0.0, 2.0]);
        assert_eq!(relu(&t).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn residual_add() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[2], vec![10.0, 20.0]);
        assert_eq!(add(&a, &b).data(), &[11.0, 22.0]);
    }

    #[test]
    fn maxpool_2x2() {
        let input = Tensor::from_vec(&[1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, -1.0, 9.0]);
        let out = maxpool(&input, 2);
        assert_eq!(out.shape(), &[1, 1, 2]);
        assert_eq!(out.data(), &[5.0, 9.0]);
    }

    #[test]
    fn global_avgpool_means() {
        let input = Tensor::from_vec(&[2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]);
        let out = global_avgpool(&input);
        assert_eq!(out.data(), &[2.0, 15.0]);
    }

    #[test]
    fn linear_matvec() {
        let x = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let w = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let b = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        assert_eq!(linear(&x, &w, &b).data(), &[1.5, 1.5]);
    }

    #[test]
    fn softmax_is_a_distribution() {
        let t = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let s = softmax(&t);
        let sum: f32 = s.data().iter().sum();
        assert!(approx(sum, 1.0));
        assert!(s.data()[2] > s.data()[1] && s.data()[1] > s.data()[0]);
        // Stability under large inputs.
        let big = Tensor::from_vec(&[2], vec![1000.0, 1000.0]);
        let s = softmax(&big);
        assert!(approx(s.data()[0], 0.5));
    }
}
