//! Lowering inference plans to SoC target operations.
//!
//! An [`InferencePlan`] lowers to a sequence of [`TargetOp`]s mirroring how
//! ONNX-Runtime executes the graph on the paper's software stack
//! (Section 3.3): convolutions dispatch to the Gemmini accelerator when the
//! SoC has one, or to im2col + matmul CPU kernels otherwise; pooling,
//! normalization, activations, and softmax run on the CPU; and each node
//! pays framework overhead (graph traversal, shape checks, allocation). A
//! per-inference session component models ONNX-Runtime's FP32 pre/post
//! processing and session bookkeeping — its size is calibrated so
//! single-inference latencies land in the regime of Table 3 (see
//! EXPERIMENTS.md for paper-vs-measured).

use crate::resnet::{DnnModel, InferencePlan, PlanOp};
use rose_socsim::config::SocConfig;
use rose_socsim::kernel::{ElemKind, Kernel};
use rose_socsim::program::ScriptedProgram;
use rose_socsim::{Soc, TargetOp};

/// Knobs for the framework-overhead model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweringConfig {
    /// Elements of FP32 pre/post-processing per inference (image decode,
    /// resize, normalize, NHWC→NCHW, output copies).
    pub session_elems: usize,
    /// Abstract ops of per-inference session bookkeeping.
    pub session_ops: usize,
    /// Scale of the per-inference session graph walk (ONNX-Runtime's
    /// pointer-heavy interpretation layer; dependency-serialized, so its
    /// cost is memory-latency-bound on every core).
    pub session_graph_tensors: usize,
    /// Tensors touched per framework node (per-node overhead scale).
    pub node_tensors: usize,
}

impl Default for LoweringConfig {
    fn default() -> LoweringConfig {
        LoweringConfig {
            session_elems: 4_000_000,
            session_ops: 500_000,
            session_graph_tensors: 1_300,
            node_tensors: 4,
        }
    }
}

/// Lowers one inference of `plan` to target operations.
///
/// The sequence begins after the image has been received from the bridge
/// (the closed-loop application issues its own `Recv`) and ends after the
/// classifier outputs are ready (the application then issues `Send`).
pub fn lower_inference(
    plan: &InferencePlan,
    has_accelerator: bool,
    cfg: &LoweringConfig,
) -> Vec<TargetOp> {
    let mut ops = Vec::with_capacity(plan.ops().len() * 2 + 4);

    // Image staging + preprocessing (decode, resize to the network input,
    // normalize to f32).
    ops.push(TargetOp::CpuKernel(Kernel::Memcpy {
        bytes: plan.input_elems(),
    }));
    ops.push(TargetOp::CpuKernel(Kernel::Elementwise {
        n: cfg.session_elems,
        kind: ElemKind::BatchNorm,
    }));
    ops.push(TargetOp::CpuKernel(Kernel::Control {
        ops: cfg.session_ops,
    }));
    ops.push(TargetOp::CpuKernel(Kernel::FrameworkNode {
        tensors: cfg.session_graph_tensors,
    }));

    for op in plan.ops() {
        // Per-node framework overhead.
        ops.push(TargetOp::CpuKernel(Kernel::FrameworkNode {
            tensors: cfg.node_tensors,
        }));
        match *op {
            PlanOp::Conv(shape) => {
                if has_accelerator {
                    ops.push(TargetOp::AccelConv(shape));
                } else {
                    let (m, k, n) = shape.as_gemm();
                    if shape.ksize > 1 {
                        ops.push(TargetOp::CpuKernel(Kernel::Im2col {
                            channels: shape.in_c,
                            ksize: shape.ksize,
                            out_elems: shape.out_h * shape.out_w,
                        }));
                    }
                    ops.push(TargetOp::CpuKernel(Kernel::MatMul { m, k, n }));
                }
            }
            PlanOp::Elementwise { n, kind } => {
                ops.push(TargetOp::CpuKernel(Kernel::Elementwise { n, kind }));
            }
            PlanOp::Pool { out_elems, window } => {
                ops.push(TargetOp::CpuKernel(Kernel::Pool { out_elems, window }));
            }
            PlanOp::Linear {
                in_features,
                out_features,
            } => {
                // Single-vector matvec: always CPU (too small for the mesh).
                ops.push(TargetOp::CpuKernel(Kernel::MatMul {
                    m: 1,
                    k: in_features,
                    n: out_features,
                }));
            }
            PlanOp::Softmax { n } => {
                ops.push(TargetOp::CpuKernel(Kernel::Softmax { n }));
            }
        }
    }
    ops
}

/// Times one standalone inference of `model` on an SoC of `config`,
/// returning the latency in cycles.
///
/// Builds a fresh SoC running a scripted program of the lowered ops and
/// advances it to completion.
pub fn time_inference(config: &SocConfig, model: DnnModel) -> u64 {
    time_plan(config, &model.plan())
}

/// Times one standalone inference of an explicit plan (see
/// [`time_inference`]).
pub fn time_plan(config: &SocConfig, plan: &InferencePlan) -> u64 {
    let ops = lower_inference(plan, config.has_accelerator(), &LoweringConfig::default());
    let program = ScriptedProgram::new(ops);
    let mut soc = Soc::new(config.clone(), Box::new(program));
    while !soc.halted() {
        soc.run_cycles(100_000_000);
    }
    // Subtract the trailing idle of the final quantum.
    soc.stats().cycles - soc.stats().idle_cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(cycles: u64) -> f64 {
        cycles as f64 / 1e6
    }

    #[test]
    fn accelerated_inference_uses_the_mesh() {
        let plan = DnnModel::ResNet6.plan();
        let ops = lower_inference(&plan, true, &LoweringConfig::default());
        assert!(ops.iter().any(|o| matches!(o, TargetOp::AccelConv(_))));
        assert!(!ops
            .iter()
            .any(|o| matches!(o, TargetOp::CpuKernel(Kernel::Im2col { .. }))));
    }

    #[test]
    fn cpu_only_inference_lowered_to_im2col_matmul() {
        let plan = DnnModel::ResNet6.plan();
        let ops = lower_inference(&plan, false, &LoweringConfig::default());
        assert!(!ops.iter().any(|o| matches!(o, TargetOp::AccelConv(_))));
        assert!(ops
            .iter()
            .any(|o| matches!(o, TargetOp::CpuKernel(Kernel::Im2col { .. }))));
        assert!(ops
            .iter()
            .any(|o| matches!(o, TargetOp::CpuKernel(Kernel::MatMul { .. }))));
    }

    #[test]
    fn latency_ordering_matches_table3() {
        // Table 3 shape: latency grows with depth on both SoCs, and
        // BOOM+Gemmini is faster than Rocket+Gemmini for every model.
        let a = SocConfig::config_a();
        let b = SocConfig::config_b();
        let mut last_a = 0;
        for model in DnnModel::all() {
            let la = time_inference(&a, model);
            let lb = time_inference(&b, model);
            assert!(la > last_a, "{model}: BOOM latency not monotone");
            assert!(
                lb as f64 > la as f64 * 1.1,
                "{model}: Rocket ({:.1} ms) should be slower than BOOM ({:.1} ms)",
                ms(lb),
                ms(la)
            );
            last_a = la;
        }
    }

    #[test]
    fn latencies_in_table3_regime() {
        // Loose windows around Table 3 (BOOM+Gemmini: 77–225 ms).
        let a = SocConfig::config_a();
        let small = ms(time_inference(&a, DnnModel::ResNet6));
        let large = ms(time_inference(&a, DnnModel::ResNet34));
        assert!(
            (30.0..160.0).contains(&small),
            "ResNet6 on A: {small:.1} ms"
        );
        assert!(
            (120.0..450.0).contains(&large),
            "ResNet34 on A: {large:.1} ms"
        );
        assert!(large > 2.0 * small, "R34 should be >2x R6");
    }

    #[test]
    fn cpu_only_is_dramatically_slower() {
        // Section 5.1: ~6 s image-to-actuation latency with BOOM-only vs
        // 85 ms with the accelerator — more than an order of magnitude.
        let a = time_inference(&SocConfig::config_a(), DnnModel::ResNet14);
        let c = time_inference(&SocConfig::config_c(), DnnModel::ResNet14);
        assert!(
            c > 10 * a,
            "CPU-only ({:.0} ms) should be >10x accelerated ({:.0} ms)",
            ms(c),
            ms(a)
        );
        assert!(ms(c) > 1000.0, "CPU-only ResNet14 should exceed 1 s");
    }
}
