//! DNN inference for the RoSÉ reproduction — the ONNX-Runtime substitute.
//!
//! The paper's companion computer runs DNN-based end-to-end controllers
//! (TrailNet-style dual-headed ResNets, Section 4.2.2) through ONNX-Runtime,
//! with matmuls/convolutions dispatched to Gemmini. This crate provides:
//!
//! * [`tensor`] — a small NCHW `f32` tensor type.
//! * [`ops`] — real functional operators: conv2d, batch-norm (inference
//!   form), ReLU, pooling, linear, softmax, residual add.
//! * [`graph`] — a DAG network representation with two classifier heads
//!   (angular and lateral, Figure 8) and a forward pass.
//! * [`resnet`] — builders for the evaluated ResNet6/11/14/18/34 variants,
//!   both as shape-only [`resnet::InferencePlan`]s (for SoC timing) and as
//!   weighted [`graph::Network`]s (for functional inference).
//! * [`lower`] — lowering of a plan to [`rose_socsim::TargetOp`] sequences:
//!   convolutions map to the accelerator (or to im2col + matmul CPU kernels
//!   on accelerator-less SoCs), everything else to CPU kernels, plus
//!   ONNX-Runtime-style per-node and per-session framework overhead.
//! * [`perception`] — the calibrated perception head used by the
//!   closed-loop evaluations (see DESIGN.md §1 for the substitution
//!   rationale): classification correctness follows each model's
//!   validation accuracy (Table 3), and softmax confidence grows with
//!   model capacity — reproducing the paper's observation that
//!   higher-capacity DNNs make more confident predictions and hence
//!   sharper trajectory corrections (Section 5.2).

#![deny(missing_docs)]

pub mod graph;
pub mod lower;
pub mod ops;
pub mod perception;
pub mod resnet;
pub mod tensor;
pub mod trainer;

pub use graph::Network;
pub use perception::{ClassProbs, PerceptionHead, PerceptionOutput};
pub use resnet::{DnnModel, InferencePlan};
pub use tensor::Tensor;
pub use trainer::{Example, HeadTrainer, TrainConfig};
