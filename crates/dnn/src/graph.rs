//! Network graphs: a DAG of operators with two classifier heads.
//!
//! The evaluated controllers are dual-headed classifiers (Figure 8): a
//! shared ResNet backbone feeding an **angular** head (left / center /
//! right view angle relative to the trail) and a **lateral** head (left /
//! center / right offset). [`Network::forward`] produces both heads'
//! softmax outputs.

use crate::ops;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Index of a node within a [`Network`].
pub type NodeId = usize;

/// One operator node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// The network input placeholder.
    Input,
    /// 2-D convolution.
    Conv {
        /// Weights (O, I, K, K).
        weight: Tensor,
        /// Optional bias (O).
        bias: Option<Tensor>,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        pad: usize,
    },
    /// Inference-form batch normalization.
    BatchNorm {
        /// Per-channel scale.
        scale: Tensor,
        /// Per-channel shift.
        shift: Tensor,
    },
    /// ReLU activation.
    Relu,
    /// Max pooling with a square window (stride = window).
    MaxPool {
        /// Window edge length.
        window: usize,
    },
    /// Global average pooling.
    GlobalAvgPool,
    /// Residual addition with another node's output.
    Add {
        /// The other operand.
        other: NodeId,
    },
    /// Fully-connected layer.
    Linear {
        /// Weights (O, I).
        weight: Tensor,
        /// Bias (O).
        bias: Tensor,
    },
    /// Softmax over a 1-D tensor.
    Softmax,
}

/// A node: an operator applied to the output of `input`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// The producing node of the primary operand.
    pub input: NodeId,
}

/// A feed-forward DAG with two output heads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    nodes: Vec<Node>,
    angular_head: NodeId,
    lateral_head: NodeId,
}

/// Incremental builder for a [`Network`].
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
}

impl NetworkBuilder {
    /// Starts a network; returns the builder and the input node id.
    pub fn new() -> (NetworkBuilder, NodeId) {
        let b = NetworkBuilder {
            nodes: vec![Node {
                op: Op::Input,
                input: 0,
            }],
        };
        (b, 0)
    }

    /// Appends a node consuming `input`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `input` (or an `Add`'s `other`) is not an earlier node.
    pub fn push(&mut self, op: Op, input: NodeId) -> NodeId {
        let id = self.nodes.len();
        assert!(input < id, "node input {input} must precede node {id}");
        if let Op::Add { other } = &op {
            assert!(*other < id, "add operand {other} must precede node {id}");
        }
        self.nodes.push(Node { op, input });
        id
    }

    /// Finalizes the network with the two head nodes.
    ///
    /// # Panics
    ///
    /// Panics if either head id is out of range.
    pub fn finish(self, name: &str, angular_head: NodeId, lateral_head: NodeId) -> Network {
        assert!(angular_head < self.nodes.len() && lateral_head < self.nodes.len());
        Network {
            name: name.to_string(),
            nodes: self.nodes,
            angular_head,
            lateral_head,
        }
    }
}

impl Network {
    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                Op::Conv { weight, bias, .. } => {
                    weight.len() + bias.as_ref().map_or(0, Tensor::len)
                }
                Op::BatchNorm { scale, shift } => scale.len() + shift.len(),
                Op::Linear { weight, bias } => weight.len() + bias.len(),
                _ => 0,
            })
            .sum()
    }

    /// Runs the backbone only, returning the globally-pooled feature
    /// vector (the input to both classifier heads).
    ///
    /// # Panics
    ///
    /// Panics if the network contains no [`Op::GlobalAvgPool`] node.
    pub fn forward_features(&self, input: &Tensor) -> Tensor {
        let gap = self
            .nodes
            .iter()
            .position(|n| matches!(n.op, Op::GlobalAvgPool))
            .expect("network has no GlobalAvgPool feature node");
        self.eval_nodes(input, gap)[gap]
            .clone()
            .expect("feature node evaluated")
    }

    /// Evaluates nodes `0..=last`, returning the outputs vector.
    fn eval_nodes(&self, input: &Tensor, last: usize) -> Vec<Option<Tensor>> {
        let mut outputs: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate().take(last + 1) {
            let value = match &node.op {
                Op::Input => input.clone(),
                op => {
                    let x = outputs[node.input]
                        .as_ref()
                        .expect("topological order violated");
                    match op {
                        Op::Input => unreachable!(),
                        Op::Conv {
                            weight,
                            bias,
                            stride,
                            pad,
                        } => ops::conv2d(x, weight, bias.as_ref(), *stride, *pad),
                        Op::BatchNorm { scale, shift } => ops::batchnorm(x, scale, shift),
                        Op::Relu => ops::relu(x),
                        Op::MaxPool { window } => ops::maxpool(x, *window),
                        Op::GlobalAvgPool => ops::global_avgpool(x),
                        Op::Add { other } => {
                            let y = outputs[*other].as_ref().expect("add operand unevaluated");
                            ops::add(x, y)
                        }
                        Op::Linear { weight, bias } => ops::linear(x, weight, bias),
                        Op::Softmax => ops::softmax(x),
                    }
                }
            };
            outputs[id] = Some(value);
        }
        outputs
    }

    /// Runs the network, returning `(angular, lateral)` head outputs.
    ///
    /// # Panics
    ///
    /// Panics if operator shapes are inconsistent (a malformed network).
    pub fn forward(&self, input: &Tensor) -> (Tensor, Tensor) {
        let outputs = self.eval_nodes(input, self.nodes.len() - 1);
        (
            outputs[self.angular_head].clone().expect("angular head"),
            outputs[self.lateral_head].clone().expect("lateral head"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a toy dual-head network: input -> relu -> two linear+softmax
    /// heads.
    fn toy() -> Network {
        let (mut b, input) = NetworkBuilder::new();
        let relu = b.push(Op::Relu, input);
        let w1 = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        let fc1 = b.push(
            Op::Linear {
                weight: w1.clone(),
                bias: Tensor::zeros(&[2]),
            },
            relu,
        );
        let s1 = b.push(Op::Softmax, fc1);
        let fc2 = b.push(
            Op::Linear {
                weight: w1,
                bias: Tensor::from_vec(&[2], vec![1.0, 0.0]),
            },
            relu,
        );
        let s2 = b.push(Op::Softmax, fc2);
        b.finish("toy", s1, s2)
    }

    #[test]
    fn forward_produces_two_distributions() {
        let net = toy();
        let x = Tensor::from_vec(&[3], vec![2.0, -1.0, 0.5]);
        let (a, l) = net.forward(&x);
        assert_eq!(a.len(), 2);
        assert_eq!(l.len(), 2);
        assert!((a.data().iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!((l.data().iter().sum::<f32>() - 1.0).abs() < 1e-5);
        // ReLU zeroed the -1, so head 1 favors index 0 (value 2 vs 0).
        assert!(a.data()[0] > a.data()[1]);
        // Head 2's bias pushes index 0 further.
        assert!(l.data()[0] > a.data()[0]);
    }

    #[test]
    fn residual_add_through_graph() {
        let (mut b, input) = NetworkBuilder::new();
        let r = b.push(Op::Relu, input);
        let a = b.push(Op::Add { other: input }, r);
        let net = b.finish("res", a, a);
        let x = Tensor::from_vec(&[2], vec![-2.0, 3.0]);
        let (out, _) = net.forward(&x);
        // relu(x) + x = [-2, 6].
        assert_eq!(out.data(), &[-2.0, 6.0]);
    }

    #[test]
    fn param_count_sums_weights() {
        let net = toy();
        // Two linear layers: (2*3 + 2) * 2 = 16.
        assert_eq!(net.param_count(), 16);
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn forward_reference_panics() {
        let (mut b, _) = NetworkBuilder::new();
        b.push(Op::Relu, 5);
    }
}
