//! The frame-stepped UAV simulation.
//!
//! [`UavSim`] combines a [`World`], a [`QuadrotorBody`], an [`Autopilot`]
//! (the flight controller, software-in-the-loop as in Figure 7), and the
//! sensor models into a single simulation that advances in discrete frames.
//! One frame = one physics + render step; physics runs at a higher substep
//! rate internally for numerical stability.

use crate::api::{Pose, SimRequest, SimResponse, VelocityTarget};
use crate::camera::{self, CameraConfig};
use crate::dynamics::{MotorCommand, QuadrotorBody, QuadrotorParams, RigidBodyState};
use crate::sensors::{DepthConfig, DepthSensor, Imu, ImuConfig};
use crate::world::{P2, World};
use rose_sim_core::cycles::FrameSpec;
use rose_sim_core::math::{Quat, Vec3};
use rose_sim_core::rng::SimRng;
use rose_sim_core::snap::{SnapError, SnapReader, SnapWriter};
use rose_trace::{ArgValue, TraceEvent, Track, Tracer};
use serde::{Deserialize, Serialize};

/// The flight controller interface.
///
/// The companion computer does not directly interface with motors; it sends
/// intermediate-level targets (velocity, yaw rate) to a flight controller
/// which computes motor commands (Section 3.4.2). Implementations live in
/// `rose-flightctl`.
pub trait Autopilot {
    /// Computes the motor command for one physics substep.
    fn command(&mut self, state: &RigidBodyState, target: &VelocityTarget, dt: f64)
        -> MotorCommand;

    /// Resets controller state (integrators, derivative history).
    fn reset(&mut self);

    /// Serializes the controller's dynamic state (integrators, derivative
    /// history) for a mission snapshot. Stateless controllers keep the
    /// default no-op; stateful ones must override **both** snapshot hooks
    /// symmetrically or resumed missions will diverge.
    fn save_state(&self, _w: &mut SnapWriter) {}

    /// Restores the controller's dynamic state from a mission snapshot.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot.
    fn restore_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// Configuration for a [`UavSim`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UavSimConfig {
    /// Environment frame rate (physics + render step rate).
    pub frames: FrameSpec,
    /// Physics substeps per frame.
    pub substeps: u32,
    /// Quadrotor physical parameters.
    pub quad: QuadrotorParams,
    /// Camera intrinsics.
    pub camera: CameraConfig,
    /// IMU noise model.
    pub imu: ImuConfig,
    /// Depth sensor model.
    pub depth: DepthConfig,
    /// Initial position.
    pub start_position: Vec3,
    /// Initial heading (radians).
    pub start_yaw: f64,
}

impl Default for UavSimConfig {
    fn default() -> UavSimConfig {
        UavSimConfig {
            frames: FrameSpec::default(),
            substeps: 8,
            quad: QuadrotorParams::default(),
            camera: CameraConfig::default(),
            imu: ImuConfig::default(),
            depth: DepthConfig::default(),
            start_position: Vec3::new(0.0, 0.0, 1.5),
            start_yaw: 0.0,
        }
    }
}

/// One trajectory log record (one per frame).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Simulated time in seconds.
    pub t: f64,
    /// World position.
    pub position: Vec3,
    /// World velocity.
    pub velocity: Vec3,
    /// Heading in radians.
    pub yaw: f64,
    /// True if the UAV was in wall contact this frame.
    pub in_collision: bool,
}

impl TrajectoryPoint {
    /// Serializes the point bit-exactly.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let TrajectoryPoint {
            t,
            position,
            velocity,
            yaw,
            in_collision,
        } = self;
        w.f64(*t);
        position.save_state(w);
        velocity.save_state(w);
        w.f64(*yaw);
        w.bool(*in_collision);
    }

    /// Deserializes a point written by [`TrajectoryPoint::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<TrajectoryPoint, SnapError> {
        Ok(TrajectoryPoint {
            t: r.f64()?,
            position: Vec3::restore_state(r)?,
            velocity: Vec3::restore_state(r)?,
            yaw: r.f64()?,
            in_collision: r.bool()?,
        })
    }
}

/// Sentinel depth returned while the depth sensor is blacked out. The
/// application layer treats any negative depth as "no valid reading" and
/// falls back to its conservative ladder instead of trusting the value.
pub const DEPTH_INVALID: f64 = -1.0;

/// The frame-stepped UAV environment simulation.
pub struct UavSim {
    config: UavSimConfig,
    world: World,
    body: QuadrotorBody,
    autopilot: Box<dyn Autopilot + Send>,
    imu: Imu,
    depth: DepthSensor,
    target: VelocityTarget,
    frame: u64,
    collision_count: u32,
    in_collision: bool,
    trajectory: Vec<TrajectoryPoint>,
    tracer: Tracer,
    /// Sim-time windows `[start, end)` (seconds) in which the depth sensor
    /// returns [`DEPTH_INVALID`]. Structural (from the mission config):
    /// rebuilt on resume, not serialized.
    depth_blackouts: Vec<(f64, f64)>,
    /// Scheduled accelerometer bias step changes `(at_seconds, delta)`,
    /// sorted by time. Structural, like the blackout windows.
    imu_bias_steps: Vec<(f64, Vec3)>,
    /// How many bias steps have fired (dynamic: serialized so a resumed
    /// mission does not re-apply steps already folded into the IMU bias).
    bias_steps_applied: usize,
}

impl std::fmt::Debug for UavSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UavSim")
            .field("world", &self.world.kind())
            .field("frame", &self.frame)
            .field("position", &self.body.state().position)
            .field("collisions", &self.collision_count)
            .finish()
    }
}

impl UavSim {
    /// Creates a simulation with the UAV at the configured start pose.
    pub fn new(
        config: UavSimConfig,
        world: World,
        autopilot: Box<dyn Autopilot + Send>,
        rng: &SimRng,
    ) -> UavSim {
        let state = RigidBodyState {
            position: config.start_position,
            attitude: rose_sim_core::math::Quat::from_euler(0.0, 0.0, config.start_yaw),
            ..RigidBodyState::default()
        };
        UavSim {
            body: QuadrotorBody::new(config.quad, state),
            imu: Imu::new(config.imu, rng),
            depth: DepthSensor::new(config.depth, rng),
            target: VelocityTarget {
                altitude: config.start_position.z.max(1.5),
                ..VelocityTarget::default()
            },
            config,
            world,
            autopilot,
            frame: 0,
            collision_count: 0,
            in_collision: false,
            trajectory: Vec::new(),
            tracer: Tracer::disabled(),
            depth_blackouts: Vec::new(),
            imu_bias_steps: Vec::new(),
            bias_steps_applied: 0,
        }
    }

    /// Schedules depth-sensor blackout windows `[start, end)` in simulated
    /// seconds. While inside a window, `GetDepth` answers
    /// [`DEPTH_INVALID`] without consuming sensor noise, modeling a sensor
    /// that stops producing frames rather than one producing garbage.
    pub fn set_depth_blackouts(&mut self, mut windows: Vec<(f64, f64)>) {
        windows.sort_by(|a, b| a.0.total_cmp(&b.0));
        self.depth_blackouts = windows;
    }

    /// Schedules accelerometer bias step changes `(at_seconds, delta)`.
    /// Each step fires once, at the first frame boundary at or after its
    /// time, and folds permanently into the IMU bias.
    pub fn set_imu_bias_steps(&mut self, mut steps: Vec<(f64, Vec3)>) {
        steps.sort_by(|a, b| a.0.total_cmp(&b.0));
        self.imu_bias_steps = steps;
    }

    /// True while the current sim time is inside a depth blackout window.
    pub fn depth_blacked_out(&self) -> bool {
        let t = self.time();
        self.depth_blackouts
            .iter()
            .any(|&(start, end)| t >= start && t < end)
    }

    /// Installs a tracer; subsequent frames emit `env-frame` spans and
    /// `collision` instants on the environment track.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Drains buffered trace events (for merging into a mission-wide log).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.tracer.take_events()
    }

    /// The environment.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Simulated seconds elapsed.
    pub fn time(&self) -> f64 {
        self.frame as f64 * self.config.frames.dt()
    }

    /// Frames stepped so far.
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// The current ground-truth pose.
    pub fn pose(&self) -> Pose {
        let s = self.body.state();
        Pose {
            position: s.position,
            velocity: s.velocity,
            yaw: s.yaw(),
        }
    }

    /// Total collision events so far (rising edges of wall contact).
    pub fn collision_count(&self) -> u32 {
        self.collision_count
    }

    /// The most recent velocity target latched by the flight controller.
    pub fn target(&self) -> &VelocityTarget {
        &self.target
    }

    /// The per-frame trajectory log.
    pub fn trajectory(&self) -> &[TrajectoryPoint] {
        &self.trajectory
    }

    /// True once the UAV has crossed the goal plane.
    pub fn mission_complete(&self) -> bool {
        self.world.mission_complete(self.body.state().position)
    }

    /// Handles one RPC request.
    pub fn handle(&mut self, request: SimRequest) -> SimResponse {
        match request {
            SimRequest::GetImage => {
                let s = self.body.state();
                SimResponse::Image(camera::render(
                    &self.world,
                    s.position,
                    s.yaw(),
                    &self.config.camera,
                ))
            }
            SimRequest::GetImu => SimResponse::Imu(self.imu.sample(&self.body, self.time())),
            SimRequest::GetDepth => {
                if self.depth_blacked_out() {
                    // No noise draw: the blacked-out sensor produces no
                    // frame at all, so the noise stream position matches a
                    // sensor that was simply not polled.
                    return SimResponse::Depth(crate::sensors::DepthSample {
                        depth: DEPTH_INVALID,
                        timestamp: self.time(),
                    });
                }
                let s = self.body.state();
                SimResponse::Depth(self.depth.sample(
                    &self.world,
                    s.position,
                    s.yaw(),
                    self.time(),
                ))
            }
            SimRequest::GetPose => SimResponse::Pose(self.pose()),
            SimRequest::SetVelocityTarget(t) => {
                // The flight controller tracks the most recent target
                // received (Section 4.2.2).
                self.target = t;
                SimResponse::Ack
            }
            SimRequest::GetCollisionCount => SimResponse::CollisionCount(self.collision_count),
            SimRequest::Reset { position, yaw } => {
                *self.body.state_mut() = RigidBodyState {
                    position,
                    attitude: rose_sim_core::math::Quat::from_euler(0.0, 0.0, yaw),
                    ..RigidBodyState::default()
                };
                self.autopilot.reset();
                self.collision_count = 0;
                self.in_collision = false;
                SimResponse::Ack
            }
        }
    }

    /// Section magic guarding the environment state in snapshots ("ENVS").
    pub const SNAP_SECTION: u32 = 0x454e_5653;

    /// Serializes the simulation's complete dynamic state.
    ///
    /// Structural fields (`config`, `world`) are rebuilt from
    /// `MissionConfig` on resume; everything that changes while frames
    /// step is written here, including the full trajectory log (the
    /// determinism digest covers every frame since launch, so a resumed
    /// mission must carry its prefix).
    pub fn save_state(&self, w: &mut SnapWriter) {
        let UavSim {
            config: _,
            world: _,
            body,
            autopilot,
            imu,
            depth,
            target,
            frame,
            collision_count,
            in_collision,
            trajectory,
            tracer,
            depth_blackouts: _,
            imu_bias_steps: _,
            bias_steps_applied,
        } = self;
        w.section(Self::SNAP_SECTION);
        body.save_state(w);
        autopilot.save_state(w);
        imu.save_state(w);
        depth.save_state(w);
        let VelocityTarget {
            forward,
            lateral,
            yaw_rate,
            altitude,
        } = target;
        w.f64(*forward);
        w.f64(*lateral);
        w.f64(*yaw_rate);
        w.f64(*altitude);
        w.u64(*frame);
        w.u32(*collision_count);
        w.bool(*in_collision);
        w.usize(trajectory.len());
        for point in trajectory {
            point.save_state(w);
        }
        w.usize(*bias_steps_applied);
        tracer.save_state(w);
    }

    /// Restores the simulation's dynamic state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section(Self::SNAP_SECTION)?;
        self.body.restore_state(r)?;
        self.autopilot.restore_state(r)?;
        self.imu.restore_state(r)?;
        self.depth.restore_state(r)?;
        self.target = VelocityTarget {
            forward: r.f64()?,
            lateral: r.f64()?,
            yaw_rate: r.f64()?,
            altitude: r.f64()?,
        };
        self.frame = r.u64()?;
        self.collision_count = r.u32()?;
        self.in_collision = r.bool()?;
        let count = r.usize()?;
        self.trajectory.clear();
        self.trajectory.reserve(count.min(1 << 20));
        for _ in 0..count {
            self.trajectory.push(TrajectoryPoint::restore_state(r)?);
        }
        self.bias_steps_applied = r.usize()?;
        self.tracer.restore_state(r)
    }

    /// Rotates the UAV's heading by `dyaw` radians in place.
    ///
    /// This is the divergence knob for forked missions: branches resumed
    /// from one shared checkpoint inject different heading disturbances
    /// and then fly on, which is how the warm-started Figure 10 sweep
    /// reproduces its initial-angle axis without re-simulating boot.
    pub fn perturb_yaw(&mut self, dyaw: f64) {
        let state = self.body.state_mut();
        state.attitude = (Quat::from_euler(0.0, 0.0, dyaw) * state.attitude).normalized();
    }

    /// Advances the simulation by `n` frames.
    pub fn step_frames(&mut self, n: u64) {
        for _ in 0..n {
            self.step_one_frame();
        }
    }

    fn step_one_frame(&mut self) {
        // Fire any scheduled IMU bias steps due by now. The cursor makes
        // each step one-shot and lets a resume skip steps already folded
        // into the serialized bias.
        while self.bias_steps_applied < self.imu_bias_steps.len()
            && self.imu_bias_steps[self.bias_steps_applied].0 <= self.time()
        {
            let (_, delta) = self.imu_bias_steps[self.bias_steps_applied];
            self.imu.shift_accel_bias(delta);
            self.bias_steps_applied += 1;
        }
        let start_frame = self.frame;
        let collisions_before = self.collision_count;
        let dt = self.config.frames.dt() / self.config.substeps as f64;
        for _ in 0..self.config.substeps {
            let cmd = self
                .autopilot
                .command(self.body.state(), &self.target, dt);
            self.body.step(cmd, dt);
            self.resolve_collisions();
        }
        self.frame += 1;
        let s = self.body.state();
        self.trajectory.push(TrajectoryPoint {
            t: self.time(),
            position: s.position,
            velocity: s.velocity,
            yaw: s.yaw(),
            in_collision: self.in_collision,
        });
        if self.tracer.is_enabled() {
            self.tracer.complete_frames(
                Track::Env,
                "env-frame",
                start_frame,
                start_frame + 1,
                vec![("frame", ArgValue::U64(start_frame))],
            );
            // One instant per rising edge of wall contact within this frame.
            for _ in collisions_before..self.collision_count {
                self.tracer.instant_frames(
                    Track::Env,
                    "collision",
                    start_frame + 1,
                    Vec::new(),
                );
            }
        }
    }

    /// Collision handling: when the body sphere penetrates a wall it is
    /// pushed out along the wall normal and the into-wall velocity component
    /// is reflected with heavy damping. Collision events are counted on the
    /// rising edge of contact.
    fn resolve_collisions(&mut self) {
        let radius = self.config.quad.radius;
        let pos = self.body.state().position;
        let colliding = self.world.collides(pos, radius);
        if colliding {
            let (dist, dir) = self.world.nearest_wall(P2::new(pos.x, pos.y));
            let penetration = radius - dist;
            if penetration > 0.0 {
                let normal = Vec3::new(dir.x, dir.y, 0.0);
                let state = self.body.state_mut();
                state.position += normal * penetration;
                let vn = state.velocity.dot(normal);
                if vn < 0.0 {
                    // Remove into-wall velocity, keep 20% as restitution.
                    state.velocity -= normal * (1.2 * vn);
                    // Scrub tangential speed a little (wall friction).
                    state.velocity = state.velocity * 0.9;
                }
            }
            if !self.in_collision {
                self.collision_count += 1;
            }
        }
        self.in_collision = colliding;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial autopilot: open-loop hover command, no target tracking.
    struct HoverOpenLoop;

    impl Autopilot for HoverOpenLoop {
        fn command(
            &mut self,
            _state: &RigidBodyState,
            _target: &VelocityTarget,
            _dt: f64,
        ) -> MotorCommand {
            MotorCommand::uniform(QuadrotorParams::default().hover_command())
        }

        fn reset(&mut self) {}
    }

    fn sim() -> UavSim {
        UavSim::new(
            UavSimConfig::default(),
            World::tunnel(),
            Box::new(HoverOpenLoop),
            &SimRng::new(11),
        )
    }

    #[test]
    fn frames_advance_time() {
        let mut s = sim();
        s.step_frames(60);
        assert_eq!(s.frame(), 60);
        assert!((s.time() - 1.0).abs() < 1e-9);
        assert_eq!(s.trajectory().len(), 60);
    }

    #[test]
    fn rpc_surface_answers() {
        let mut s = sim();
        s.step_frames(1);
        assert!(matches!(s.handle(SimRequest::GetImage), SimResponse::Image(_)));
        assert!(matches!(s.handle(SimRequest::GetImu), SimResponse::Imu(_)));
        assert!(matches!(s.handle(SimRequest::GetDepth), SimResponse::Depth(_)));
        assert!(matches!(s.handle(SimRequest::GetPose), SimResponse::Pose(_)));
        assert!(matches!(
            s.handle(SimRequest::SetVelocityTarget(VelocityTarget::forward(2.0))),
            SimResponse::Ack
        ));
        assert_eq!(s.target().forward, 2.0);
    }

    #[test]
    fn reset_restores_pose_and_counters() {
        let mut s = sim();
        s.step_frames(10);
        let r = s.handle(SimRequest::Reset {
            position: Vec3::new(1.0, 0.5, 2.0),
            yaw: 0.3,
        });
        assert_eq!(r, SimResponse::Ack);
        let p = s.pose();
        assert_eq!(p.position, Vec3::new(1.0, 0.5, 2.0));
        assert!((p.yaw - 0.3).abs() < 1e-9);
        assert_eq!(s.collision_count(), 0);
    }

    #[test]
    fn traced_sim_emits_one_span_per_frame() {
        use rose_trace::TraceClock;
        let mut s = sim();
        s.set_tracer(Tracer::enabled(TraceClock::default()));
        s.step_frames(30);
        let events = s.take_trace_events();
        let frames: Vec<_> = events.iter().filter(|e| e.name == "env-frame").collect();
        assert_eq!(frames.len(), 30);
        // Frame 0 starts at t=0; frame 1 starts one frame period later.
        assert_eq!(frames[0].ts_us, 0.0);
        let dt_us = 1e6 / 60.0;
        assert!((frames[1].ts_us - dt_us).abs() < 1e-6);
        // An untraced sim records nothing.
        let mut quiet = sim();
        quiet.step_frames(30);
        assert!(quiet.take_trace_events().is_empty());
    }

    #[test]
    fn depth_blackout_returns_the_sentinel_without_noise_draws() {
        let mut degraded = sim();
        let mut clean = sim();
        degraded.set_depth_blackouts(vec![(0.0, 0.5)]);
        // Inside the window: sentinel, and the noise stream is untouched.
        match degraded.handle(SimRequest::GetDepth) {
            SimResponse::Depth(s) => assert_eq!(s.depth, DEPTH_INVALID),
            other => panic!("unexpected response {other:?}"),
        }
        assert!(degraded.depth_blacked_out());
        // Past the window the reading matches a sim that never polled
        // during the blackout — proof the sentinel consumed no RNG.
        degraded.step_frames(60);
        clean.step_frames(60);
        assert!(!degraded.depth_blacked_out());
        assert_eq!(
            degraded.handle(SimRequest::GetDepth),
            clean.handle(SimRequest::GetDepth)
        );
    }

    #[test]
    fn imu_bias_steps_fire_once_and_resume_does_not_replay_them() {
        let mut s = sim();
        s.set_imu_bias_steps(vec![(0.1, Vec3::new(0.4, 0.0, 0.0))]);
        s.step_frames(30); // 0.5 s — the step has fired.
        assert_eq!(s.bias_steps_applied, 1);

        // Snapshot, restore into a twin with the same schedule, and step
        // both: the step must not fire a second time in the twin.
        let mut w = SnapWriter::new();
        s.save_state(&mut w);
        let buf = w.into_bytes();
        let mut twin = sim();
        twin.set_imu_bias_steps(vec![(0.1, Vec3::new(0.4, 0.0, 0.0))]);
        let mut r = SnapReader::new(&buf);
        twin.restore_state(&mut r).unwrap();
        assert_eq!(twin.bias_steps_applied, 1);
        s.step_frames(10);
        twin.step_frames(10);
        assert_eq!(
            s.handle(SimRequest::GetImu),
            twin.handle(SimRequest::GetImu)
        );
    }

    #[test]
    fn wall_contact_is_counted_once_per_event() {
        let mut s = sim();
        // Teleport into the wall region and give lateral velocity.
        s.handle(SimRequest::Reset {
            position: Vec3::new(10.0, 1.2, 1.5),
            yaw: 0.0,
        });
        s.body.state_mut().velocity = Vec3::new(0.0, 3.0, 0.0);
        s.step_frames(30);
        assert!(s.collision_count() >= 1);
        // The push-out keeps the UAV inside the corridor.
        assert!(s.pose().position.y.abs() <= 1.6 + 0.01);
    }
}
