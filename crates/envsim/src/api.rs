//! The RPC-style simulator API.
//!
//! AirSim exposes a remote-procedure-call API for sensor readings,
//! actuation, and simulator commands (Section 3.1). The RoSÉ synchronizer
//! decodes I/O packets from the simulated SoC and translates them into these
//! API calls (Algorithm 1: `cmd <- decode(datum); call_airsim_api(cmd)`).
//!
//! [`SimRequest`] covers the calls the evaluation uses: image, IMU, and
//! depth requests, pose queries, velocity-target actuation, and simulation
//! control. Each request is answered by exactly one [`SimResponse`].

use crate::camera::Image;
use crate::sensors::{DepthSample, ImuSample};
use rose_sim_core::math::Vec3;
use serde::{Deserialize, Serialize};

/// A velocity-level control target, as sent from the companion computer to
/// the flight controller (angular and linear velocity targets, Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VelocityTarget {
    /// Forward velocity target in the body frame (m/s).
    pub forward: f64,
    /// Lateral velocity target in the body frame, positive left (m/s).
    pub lateral: f64,
    /// Yaw rate target (rad/s), positive counterclockwise.
    pub yaw_rate: f64,
    /// Altitude to hold (m above ground).
    pub altitude: f64,
}

impl Default for VelocityTarget {
    /// Hover in place at 1.5 m.
    fn default() -> VelocityTarget {
        VelocityTarget {
            forward: 0.0,
            lateral: 0.0,
            yaw_rate: 0.0,
            altitude: 1.5,
        }
    }
}

impl VelocityTarget {
    /// A forward-flight target at `forward` m/s holding the default altitude.
    pub fn forward(forward: f64) -> VelocityTarget {
        VelocityTarget {
            forward,
            ..VelocityTarget::default()
        }
    }
}

/// The UAV's ground-truth pose, for logging and evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// World position (m).
    pub position: Vec3,
    /// World-frame velocity (m/s).
    pub velocity: Vec3,
    /// Heading (yaw) in radians.
    pub yaw: f64,
}

/// A request to the environment simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimRequest {
    /// Capture a camera frame.
    GetImage,
    /// Read the IMU.
    GetImu,
    /// Read the forward depth sensor.
    GetDepth,
    /// Query the ground-truth pose (simulation-level API, used by the
    /// synchronizer for CSV logging, never by the simulated SoC).
    GetPose,
    /// Send a velocity target to the flight controller.
    SetVelocityTarget(VelocityTarget),
    /// Query accumulated collision count.
    GetCollisionCount,
    /// Reset the vehicle to a pose (simulation-level API).
    Reset {
        /// New position.
        position: Vec3,
        /// New heading in radians.
        yaw: f64,
    },
}

/// A response from the environment simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimResponse {
    /// A camera frame.
    Image(Image),
    /// An IMU sample.
    Imu(ImuSample),
    /// A depth sample.
    Depth(DepthSample),
    /// The current pose.
    Pose(Pose),
    /// Collision count so far.
    CollisionCount(u32),
    /// Acknowledgement for actuation / control requests.
    Ack,
}

impl SimResponse {
    /// Extracts an image, if this response carries one.
    pub fn into_image(self) -> Option<Image> {
        match self {
            SimResponse::Image(img) => Some(img),
            _ => None,
        }
    }

    /// Extracts a depth sample, if this response carries one.
    pub fn as_depth(&self) -> Option<&DepthSample> {
        match self {
            SimResponse::Depth(d) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_target_hovers() {
        let t = VelocityTarget::default();
        assert_eq!(t.forward, 0.0);
        assert_eq!(t.altitude, 1.5);
    }

    #[test]
    fn response_extractors() {
        let img = Image::black(2, 2);
        assert!(SimResponse::Image(img.clone()).into_image().is_some());
        assert!(SimResponse::Ack.into_image().is_none());
        let d = DepthSample {
            depth: 3.0,
            timestamp: 0.0,
        };
        assert!(SimResponse::Depth(d).as_depth().is_some());
        assert!(SimResponse::Ack.as_depth().is_none());
    }
}
