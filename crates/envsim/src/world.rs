//! Corridor environments and geometric queries.
//!
//! Two environments are modeled after Section 4.2.3 / Figure 9:
//!
//! * `tunnel` — a straight corridor 50 m long and 3.2 m wide (boundaries at
//!   y = ±1.6 m, as in Figure 10).
//! * `s-shape` — an "S" shaped corridor of ~80 m; the mission is completed
//!   upon reaching x = 80 (Figure 11). The map is wider (6 m) but requires
//!   constant correction.
//!
//! Worlds are built from 2-D wall segments extruded to a fixed height, plus
//! a centerline polyline used for ground-truth perception queries (lateral
//! offset and heading error relative to the trail).

use rose_sim_core::math::{clamp, wrap_angle, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 2-D point in the horizontal plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct P2 {
    /// X coordinate (along the corridor).
    pub x: f64,
    /// Y coordinate (lateral).
    pub y: f64,
}

impl P2 {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> P2 {
        P2 { x, y }
    }

    fn sub(self, o: P2) -> P2 {
        P2::new(self.x - o.x, self.y - o.y)
    }

    fn dot(self, o: P2) -> f64 {
        self.x * o.x + self.y * o.y
    }

    fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }
}

/// A wall: a 2-D segment extruded vertically from the floor to `height`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// Segment start.
    pub a: P2,
    /// Segment end.
    pub b: P2,
    /// Wall height in meters.
    pub height: f64,
}

impl Wall {
    /// Creates a wall segment with the given height.
    pub fn new(a: P2, b: P2, height: f64) -> Wall {
        Wall { a, b, height }
    }

    /// Distance from `p` to the closest point of the segment, and that point.
    pub fn closest_point(&self, p: P2) -> (f64, P2) {
        let ab = self.b.sub(self.a);
        let len_sq = ab.dot(ab);
        let t = if len_sq == 0.0 {
            0.0
        } else {
            clamp(p.sub(self.a).dot(ab) / len_sq, 0.0, 1.0)
        };
        let q = P2::new(self.a.x + ab.x * t, self.a.y + ab.y * t);
        (p.sub(q).norm(), q)
    }

    /// Ray–segment intersection: distance along the ray from `origin` in
    /// direction `(dx, dy)` (unit), or `None` if the ray misses.
    pub fn raycast(&self, origin: P2, dx: f64, dy: f64) -> Option<f64> {
        // Solve origin + t*d = a + u*(b-a), t >= 0, u in [0,1].
        let ex = self.b.x - self.a.x;
        let ey = self.b.y - self.a.y;
        let denom = dx * ey - dy * ex;
        if denom.abs() < 1e-12 {
            return None; // parallel
        }
        let ox = self.a.x - origin.x;
        let oy = self.a.y - origin.y;
        let t = (ox * ey - oy * ex) / denom;
        let u = (ox * dy - oy * dx) / denom;
        if t >= 0.0 && (0.0..=1.0).contains(&u) {
            Some(t)
        } else {
            None
        }
    }
}

/// Which built-in environment a [`World`] was generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorldKind {
    /// Straight 50 m × 3.2 m corridor.
    Tunnel,
    /// "S" shaped ~80 m corridor.
    SShape,
    /// Straight 60 m corridor with pillar obstacles forcing a slalom
    /// (extension environment stressing the depth sensor and the
    /// dynamic runtime's deadline switching).
    Slalom,
}

impl WorldKind {
    /// Serializes the world selection as a stable one-byte tag.
    pub fn save_state(&self, w: &mut rose_sim_core::snap::SnapWriter) {
        w.u8(match self {
            WorldKind::Tunnel => 0,
            WorldKind::SShape => 1,
            WorldKind::Slalom => 2,
        });
    }

    /// Restores a world selection from its tag.
    ///
    /// # Errors
    ///
    /// Propagates [`rose_sim_core::snap::SnapError`] on a malformed
    /// snapshot.
    pub fn restore_state(
        r: &mut rose_sim_core::snap::SnapReader<'_>,
    ) -> Result<WorldKind, rose_sim_core::snap::SnapError> {
        match r.u8()? {
            0 => Ok(WorldKind::Tunnel),
            1 => Ok(WorldKind::SShape),
            2 => Ok(WorldKind::Slalom),
            tag => Err(rose_sim_core::snap::SnapError::BadTag {
                context: "WorldKind",
                tag,
            }),
        }
    }
}

impl fmt::Display for WorldKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldKind::Tunnel => write!(f, "tunnel"),
            WorldKind::SShape => write!(f, "s-shape"),
            WorldKind::Slalom => write!(f, "slalom"),
        }
    }
}

/// Ground-truth relation of a pose to the corridor centerline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrailQuery {
    /// Signed lateral offset from the centerline in meters. Positive means
    /// the UAV is to the **left** of the trail (trail appears to its right).
    pub lateral_offset: f64,
    /// Signed heading error in radians relative to the local trail tangent.
    /// Positive means the UAV points **left** of the trail direction.
    pub heading_error: f64,
    /// Arc-length progress along the centerline in meters.
    pub progress: f64,
    /// Local corridor half-width at this progress.
    pub half_width: f64,
}

/// An environment: walls, a centerline, and mission geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct World {
    kind: WorldKind,
    walls: Vec<Wall>,
    /// Centerline polyline (ordered along the corridor).
    centerline: Vec<P2>,
    /// Cumulative arc length at each centerline vertex.
    arclen: Vec<f64>,
    half_width: f64,
    /// Mission is complete when the UAV's x exceeds this.
    goal_x: f64,
    wall_height: f64,
}

impl World {
    /// The `tunnel` environment: straight, 50 m long, 3.2 m wide
    /// (boundaries at y = ±1.6 m), 3 m tall walls.
    pub fn tunnel() -> World {
        let h = 3.0;
        let half = 1.6;
        let len = 50.0;
        // Walls extend behind the start so an angled UAV cannot escape.
        let x0 = -5.0;
        let walls = vec![
            Wall::new(P2::new(x0, half), P2::new(len + 5.0, half), h),
            Wall::new(P2::new(x0, -half), P2::new(len + 5.0, -half), h),
            // Back wall behind the spawn point.
            Wall::new(P2::new(x0, -half), P2::new(x0, half), h),
        ];
        let centerline = vec![P2::new(0.0, 0.0), P2::new(len, 0.0)];
        World::from_parts(WorldKind::Tunnel, walls, centerline, half, len, h)
    }

    /// The `s-shape` environment: an "S" curve roughly 80 m of arc length
    /// laid out along x ∈ [0, 80], 6 m wide. Mission completes at x = 80.
    pub fn s_shape() -> World {
        let h = 3.0;
        let half = 3.0;
        let goal = 80.0;
        let amplitude = 5.0;
        // Centerline y = A * sin(pi * x / 40): a full S over [0, 80].
        let mut centerline = Vec::new();
        let steps = 160;
        for i in 0..=steps {
            let x = goal * i as f64 / steps as f64;
            let y = amplitude * (std::f64::consts::PI * x / 40.0).sin();
            centerline.push(P2::new(x, y));
        }
        // Offset walls: sampled normals of the centerline.
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (i, &c) in centerline.iter().enumerate() {
            let x = goal * i as f64 / steps as f64;
            let dy_dx = amplitude * std::f64::consts::PI / 40.0
                * (std::f64::consts::PI * x / 40.0).cos();
            let norm = (1.0 + dy_dx * dy_dx).sqrt();
            // Unit normal (pointing left of travel).
            let nx = -dy_dx / norm;
            let ny = 1.0 / norm;
            left.push(P2::new(c.x + nx * half, c.y + ny * half));
            right.push(P2::new(c.x - nx * half, c.y - ny * half));
        }
        let mut walls = Vec::new();
        for w in left.windows(2).chain(right.windows(2)) {
            walls.push(Wall::new(w[0], w[1], h));
        }
        // Straight entry section behind the spawn point, capped well clear
        // of the UAV's starting position.
        let entry_l = P2::new(-4.0, half);
        let entry_r = P2::new(-4.0, -half);
        walls.push(Wall::new(entry_l, left[0], h));
        walls.push(Wall::new(entry_r, right[0], h));
        walls.push(Wall::new(entry_l, entry_r, h));
        World::from_parts(WorldKind::SShape, walls, centerline, half, goal, h)
    }

    /// The `slalom` environment: a straight 60 m corridor, 5 m wide, with
    /// square pillars alternating sides every 12 m; the trail weaves
    /// around them.
    pub fn slalom() -> World {
        let h = 3.0;
        let half = 2.5;
        let goal = 60.0;
        let mut walls = vec![
            Wall::new(P2::new(-4.0, half), P2::new(goal + 5.0, half), h),
            Wall::new(P2::new(-4.0, -half), P2::new(goal + 5.0, -half), h),
            Wall::new(P2::new(-4.0, -half), P2::new(-4.0, half), h),
        ];
        // Pillars at x = 12, 24, 36, 48, alternating sides; the trail
        // swings to the opposite side of each pillar.
        let mut centerline = vec![P2::new(0.0, 0.0), P2::new(6.0, 0.0)];
        for (i, px) in [12.0f64, 24.0, 36.0, 48.0].iter().enumerate() {
            let side = if i % 2 == 0 { -1.0 } else { 1.0 };
            let py = side * 0.8;
            let r = 0.4; // pillar half-size
            walls.push(Wall::new(P2::new(px - r, py - r), P2::new(px + r, py - r), h));
            walls.push(Wall::new(P2::new(px + r, py - r), P2::new(px + r, py + r), h));
            walls.push(Wall::new(P2::new(px + r, py + r), P2::new(px - r, py + r), h));
            walls.push(Wall::new(P2::new(px - r, py + r), P2::new(px - r, py - r), h));
            // Trail swings to the free side at the pillar, back to center
            // midway to the next.
            centerline.push(P2::new(*px, -side * 1.1));
            centerline.push(P2::new(px + 6.0, 0.0));
        }
        centerline.push(P2::new(goal, 0.0));
        World::from_parts(WorldKind::Slalom, walls, centerline, half, goal, h)
    }

    /// Builds a world for the given kind.
    pub fn of_kind(kind: WorldKind) -> World {
        match kind {
            WorldKind::Tunnel => World::tunnel(),
            WorldKind::SShape => World::s_shape(),
            WorldKind::Slalom => World::slalom(),
        }
    }

    fn from_parts(
        kind: WorldKind,
        walls: Vec<Wall>,
        centerline: Vec<P2>,
        half_width: f64,
        goal_x: f64,
        wall_height: f64,
    ) -> World {
        assert!(centerline.len() >= 2, "centerline needs >= 2 points");
        let mut arclen = Vec::with_capacity(centerline.len());
        let mut acc = 0.0;
        arclen.push(0.0);
        for w in centerline.windows(2) {
            acc += w[1].sub(w[0]).norm();
            arclen.push(acc);
        }
        World {
            kind,
            walls,
            centerline,
            arclen,
            half_width,
            goal_x,
            wall_height,
        }
    }

    /// Which environment this is.
    pub fn kind(&self) -> WorldKind {
        self.kind
    }

    /// The wall list.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// Corridor half-width in meters.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Wall height in meters.
    pub fn wall_height(&self) -> f64 {
        self.wall_height
    }

    /// X coordinate at which the mission is complete.
    pub fn goal_x(&self) -> f64 {
        self.goal_x
    }

    /// Total centerline arc length.
    pub fn trail_length(&self) -> f64 {
        *self.arclen.last().expect("nonempty centerline")
    }

    /// True once `pos` has passed the goal plane.
    pub fn mission_complete(&self, pos: Vec3) -> bool {
        pos.x >= self.goal_x
    }

    /// Distance from `p` to the nearest wall, and the push-out direction
    /// (unit vector from the wall's closest point towards `p`).
    pub fn nearest_wall(&self, p: P2) -> (f64, P2) {
        let mut best = (f64::INFINITY, P2::default());
        for w in &self.walls {
            let (d, q) = w.closest_point(p);
            if d < best.0 {
                let dir = if d > 1e-9 {
                    P2::new((p.x - q.x) / d, (p.y - q.y) / d)
                } else {
                    P2::new(0.0, 0.0)
                };
                best = (d, dir);
            }
        }
        best
    }

    /// Casts a horizontal ray from `origin` at world `heading` radians and
    /// returns the distance to the first wall, or `None` on a miss.
    pub fn raycast(&self, origin: P2, heading: f64) -> Option<f64> {
        let (dx, dy) = (heading.cos(), heading.sin());
        self.walls
            .iter()
            .filter_map(|w| w.raycast(origin, dx, dy))
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Ground-truth trail query for a pose (position + heading).
    ///
    /// Finds the closest centerline point and reports signed lateral offset,
    /// heading error relative to the local tangent, and arc-length progress.
    pub fn trail_query(&self, pos: Vec3, yaw: f64) -> TrailQuery {
        let p = P2::new(pos.x, pos.y);
        let mut best_d = f64::INFINITY;
        let mut best = (0usize, 0.0f64); // segment index, parameter t
        for (i, w) in self.centerline.windows(2).enumerate() {
            let seg = Wall::new(w[0], w[1], 0.0);
            let (d, q) = seg.closest_point(p);
            if d < best_d {
                best_d = d;
                let seg_len = w[1].sub(w[0]).norm();
                let t = if seg_len > 0.0 {
                    q.sub(w[0]).norm() / seg_len
                } else {
                    0.0
                };
                best = (i, t);
            }
        }
        let (i, t) = best;
        let a = self.centerline[i];
        let b = self.centerline[i + 1];
        let tangent = b.sub(a);
        let tangent_angle = tangent.y.atan2(tangent.x);
        // Signed offset: positive if p is left of the tangent direction.
        let rel = p.sub(a);
        let cross = tangent.x * rel.y - tangent.y * rel.x;
        let lateral = best_d * cross.signum();
        let seg_len = tangent.norm();
        TrailQuery {
            lateral_offset: lateral,
            heading_error: wrap_angle(yaw - tangent_angle),
            progress: self.arclen[i] + t * seg_len,
            half_width: self.half_width,
        }
    }

    /// True if a UAV of `radius` at `pos` is in contact with a wall (only
    /// walls tall enough to reach `pos.z` count).
    pub fn collides(&self, pos: Vec3, radius: f64) -> bool {
        let p = P2::new(pos.x, pos.y);
        self.walls
            .iter()
            .any(|w| pos.z <= w.height && w.closest_point(p).0 < radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tunnel_dimensions() {
        let w = World::tunnel();
        assert_eq!(w.kind(), WorldKind::Tunnel);
        assert_eq!(w.half_width(), 1.6);
        assert_eq!(w.goal_x(), 50.0);
        assert!((w.trail_length() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn s_shape_dimensions() {
        let w = World::s_shape();
        assert_eq!(w.goal_x(), 80.0);
        // Arc length of the S exceeds the straight-line 80 m.
        assert!(w.trail_length() > 80.0);
        assert!(w.trail_length() < 100.0);
    }

    #[test]
    fn tunnel_collision_boundaries() {
        let w = World::tunnel();
        let r = 0.3;
        assert!(!w.collides(Vec3::new(10.0, 0.0, 1.0), r));
        assert!(w.collides(Vec3::new(10.0, 1.5, 1.0), r));
        assert!(w.collides(Vec3::new(10.0, -1.5, 1.0), r));
        // Above the walls there is no collision.
        assert!(!w.collides(Vec3::new(10.0, 1.5, 10.0), r));
    }

    #[test]
    fn raycast_straight_ahead_hits_side_wall() {
        let w = World::tunnel();
        // Looking 90 degrees left from the center: wall at 1.6 m.
        let d = w
            .raycast(P2::new(10.0, 0.0), std::f64::consts::FRAC_PI_2)
            .expect("hit");
        assert!((d - 1.6).abs() < 1e-9, "d = {d}");
        // Looking straight down the tunnel: hits the far cap at x=55.
        let d = w.raycast(P2::new(10.0, 0.0), 0.0);
        // Tunnel side walls are parallel to the ray; no cap at the end, so
        // the ray escapes (None) — the depth sensor clamps to max range.
        assert!(d.is_none());
    }

    #[test]
    fn trail_query_tunnel_signs() {
        let w = World::tunnel();
        // 0.5 m left of center, pointing 0.1 rad left.
        let q = w.trail_query(Vec3::new(5.0, 0.5, 1.0), 0.1);
        assert!((q.lateral_offset - 0.5).abs() < 1e-9);
        assert!((q.heading_error - 0.1).abs() < 1e-9);
        assert!((q.progress - 5.0).abs() < 1e-9);
        // Right of center gives a negative offset.
        let q = w.trail_query(Vec3::new(5.0, -0.7, 1.0), -0.2);
        assert!((q.lateral_offset + 0.7).abs() < 1e-9);
        assert!((q.heading_error + 0.2).abs() < 1e-9);
    }

    #[test]
    fn trail_query_s_shape_follows_curve() {
        let w = World::s_shape();
        // A point exactly on the centerline has ~zero offset.
        let x = 20.0;
        let y = 5.0 * (std::f64::consts::PI * x / 40.0).sin();
        let q = w.trail_query(Vec3::new(x, y, 1.0), 0.0);
        assert!(q.lateral_offset.abs() < 0.05, "offset {}", q.lateral_offset);
        assert!(q.progress > x, "progress {} along arc", q.progress);
    }

    #[test]
    fn s_shape_collision_on_outer_wall() {
        let w = World::s_shape();
        // Far outside the corridor: collides (or is beyond a wall, but at
        // the apex y=5+3=8 the wall is at ~8).
        assert!(w.collides(Vec3::new(20.0, 8.0, 1.0), 0.4));
        // Center of corridor at the apex: free.
        assert!(!w.collides(Vec3::new(20.0, 5.0, 1.0), 0.4));
    }

    #[test]
    fn slalom_geometry() {
        let w = World::slalom();
        assert_eq!(w.kind(), WorldKind::Slalom);
        assert_eq!(w.goal_x(), 60.0);
        // Pillar faces around (12, -0.8) block that spot but not the trail
        // side (collision geometry is the pillar's wall segments).
        assert!(w.collides(Vec3::new(12.0, -1.15, 1.0), 0.3));
        assert!(w.collides(Vec3::new(11.5, -0.8, 1.0), 0.3));
        assert!(!w.collides(Vec3::new(12.0, 1.1, 1.0), 0.3));
        // The trail weaves: at the first pillar the centerline is on the
        // positive-y side.
        let q = w.trail_query(Vec3::new(12.0, 1.1, 1.0), 0.0);
        assert!(q.lateral_offset.abs() < 0.2, "offset {}", q.lateral_offset);
        // The depth sensor sees the pillar when heading straight at it.
        let d = w
            .raycast(P2::new(8.0, -0.8), 0.0)
            .expect("pillar in view");
        assert!((d - 3.6).abs() < 0.1, "distance to pillar face {d}");
    }

    #[test]
    fn mission_complete_at_goal() {
        let w = World::tunnel();
        assert!(!w.mission_complete(Vec3::new(49.9, 0.0, 1.0)));
        assert!(w.mission_complete(Vec3::new(50.0, 0.0, 1.0)));
    }

    #[test]
    fn wall_raycast_geometry() {
        let wall = Wall::new(P2::new(0.0, -1.0), P2::new(0.0, 1.0), 3.0);
        // Ray from (-2, 0) pointing +x hits at distance 2.
        assert_eq!(wall.raycast(P2::new(-2.0, 0.0), 1.0, 0.0), Some(2.0));
        // Pointing away: miss.
        assert_eq!(wall.raycast(P2::new(-2.0, 0.0), -1.0, 0.0), None);
        // Parallel: miss.
        assert_eq!(wall.raycast(P2::new(-2.0, 0.0), 0.0, 1.0), None);
        // Beyond the segment extent: miss.
        assert_eq!(wall.raycast(P2::new(-2.0, 5.0), 1.0, 0.0), None);
    }
}
