//! Sensor models: IMU and forward depth sensor.
//!
//! The evaluation drone has an IMU available to the flight controller and a
//! forward-facing depth sensor used by the dynamic runtime to estimate time
//! until collision (Section 5.3). Sensor readings are derived from the true
//! simulation state with seeded bias and Gaussian noise, mirroring AirSim's
//! inertial sensor models.

use crate::dynamics::QuadrotorBody;
use crate::world::{P2, World};
use rose_sim_core::math::Vec3;
use rose_sim_core::rng::SimRng;
use rose_sim_core::snap::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// One IMU sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ImuSample {
    /// Body-frame specific force (m/s²): what the accelerometer measures.
    pub accel: Vec3,
    /// Body-frame angular rate (rad/s).
    pub gyro: Vec3,
    /// Sample timestamp in simulated seconds.
    pub timestamp: f64,
}

/// IMU noise parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuConfig {
    /// Accelerometer white-noise standard deviation (m/s²).
    pub accel_noise: f64,
    /// Gyroscope white-noise standard deviation (rad/s).
    pub gyro_noise: f64,
    /// Maximum magnitude of the constant per-run accelerometer bias (m/s²).
    pub accel_bias: f64,
    /// Maximum magnitude of the constant per-run gyroscope bias (rad/s).
    pub gyro_bias: f64,
}

impl Default for ImuConfig {
    /// Parameters representative of a consumer MEMS IMU.
    fn default() -> ImuConfig {
        ImuConfig {
            accel_noise: 0.05,
            gyro_noise: 0.005,
            accel_bias: 0.02,
            gyro_bias: 0.002,
        }
    }
}

/// A simulated IMU with per-run constant bias and white noise.
#[derive(Debug, Clone)]
pub struct Imu {
    config: ImuConfig,
    accel_bias: Vec3,
    gyro_bias: Vec3,
    rng: SimRng,
}

impl Imu {
    /// Creates an IMU, drawing its constant bias from `rng`.
    pub fn new(config: ImuConfig, rng: &SimRng) -> Imu {
        let mut bias_rng = rng.split("imu-bias");
        let b = |max: f64, r: &mut SimRng| {
            Vec3::new(
                r.uniform(-max, max),
                r.uniform(-max, max),
                r.uniform(-max, max),
            )
        };
        Imu {
            config,
            accel_bias: b(config.accel_bias, &mut bias_rng),
            gyro_bias: b(config.gyro_bias, &mut bias_rng),
            rng: rng.split("imu-noise"),
        }
    }

    /// Serializes the IMU's dynamic state: the per-run bias draw and the
    /// noise stream position. The bias is serialized (not re-derived)
    /// because it was drawn from the seed at construction and must stay
    /// identical across a resume.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let Imu {
            config: _,
            accel_bias,
            gyro_bias,
            rng,
        } = self;
        accel_bias.save_state(w);
        gyro_bias.save_state(w);
        rng.save_state(w);
    }

    /// Restores the IMU's dynamic state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.accel_bias = Vec3::restore_state(r)?;
        self.gyro_bias = Vec3::restore_state(r)?;
        self.rng.restore_state(r)
    }

    /// Applies a step change to the accelerometer bias, modeling an
    /// in-flight degradation event (thermal drift, a knock). The shift is
    /// part of the dynamic state: it lands in `accel_bias`, which is
    /// serialized, so a snapshot taken after the step resumes with the
    /// degraded bias intact.
    pub fn shift_accel_bias(&mut self, delta: Vec3) {
        self.accel_bias += delta;
    }

    /// The current accelerometer bias (initial draw plus any applied
    /// [`shift_accel_bias`](Imu::shift_accel_bias) steps).
    pub fn accel_bias(&self) -> Vec3 {
        self.accel_bias
    }

    /// Samples the IMU given the true body state.
    pub fn sample(&mut self, body: &QuadrotorBody, timestamp: f64) -> ImuSample {
        let noise = |std_dev: f64, r: &mut SimRng| {
            Vec3::new(
                r.normal(0.0, std_dev),
                r.normal(0.0, std_dev),
                r.normal(0.0, std_dev),
            )
        };
        ImuSample {
            accel: body.specific_force() + self.accel_bias + noise(self.config.accel_noise, &mut self.rng),
            gyro: body.state().angular_velocity
                + self.gyro_bias
                + noise(self.config.gyro_noise, &mut self.rng),
            timestamp,
        }
    }
}

/// One depth sensor reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthSample {
    /// Distance to the closest obstacle along the current heading (m),
    /// clamped to the sensor range.
    pub depth: f64,
    /// Sample timestamp in simulated seconds.
    pub timestamp: f64,
}

/// Forward depth sensor parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthConfig {
    /// Maximum range (m).
    pub max_range: f64,
    /// Multiplicative noise standard deviation (fraction of reading).
    pub noise_frac: f64,
}

impl Default for DepthConfig {
    fn default() -> DepthConfig {
        DepthConfig {
            max_range: 40.0,
            noise_frac: 0.01,
        }
    }
}

/// A simulated forward depth sensor.
#[derive(Debug, Clone)]
pub struct DepthSensor {
    config: DepthConfig,
    rng: SimRng,
}

impl DepthSensor {
    /// Creates a depth sensor.
    pub fn new(config: DepthConfig, rng: &SimRng) -> DepthSensor {
        DepthSensor {
            config,
            rng: rng.split("depth-noise"),
        }
    }

    /// Serializes the sensor's dynamic state (the noise stream position).
    pub fn save_state(&self, w: &mut SnapWriter) {
        let DepthSensor { config: _, rng } = self;
        rng.save_state(w);
    }

    /// Restores the sensor's dynamic state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rng.restore_state(r)
    }

    /// Measures the depth `D_obj` of the closest object in the current
    /// heading of the UAV (Equation 3).
    pub fn sample(&mut self, world: &World, pos: Vec3, yaw: f64, timestamp: f64) -> DepthSample {
        let true_depth = world
            .raycast(P2::new(pos.x, pos.y), yaw)
            .unwrap_or(self.config.max_range)
            .min(self.config.max_range);
        let noisy = true_depth * (1.0 + self.rng.normal(0.0, self.config.noise_frac));
        DepthSample {
            depth: noisy.clamp(0.0, self.config.max_range),
            timestamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{QuadrotorParams, RigidBodyState};
    use crate::world::World;

    #[test]
    fn imu_measures_gravity_at_rest_hover() {
        let params = QuadrotorParams::default();
        let mut body = QuadrotorBody::new(
            params,
            RigidBodyState {
                position: Vec3::new(0.0, 0.0, 2.0),
                ..RigidBodyState::default()
            },
        );
        // Settle motor lag at hover.
        for _ in 0..1000 {
            body.step(
                crate::dynamics::MotorCommand::uniform(params.hover_command()),
                1.0 / 400.0,
            );
        }
        let rng = SimRng::new(1);
        let mut imu = Imu::new(ImuConfig::default(), &rng);
        let mut sum = Vec3::ZERO;
        let n = 500;
        for i in 0..n {
            sum += imu.sample(&body, i as f64 * 0.01).accel;
        }
        let mean = sum / n as f64;
        assert!(
            (mean.z - crate::dynamics::GRAVITY).abs() < 0.3,
            "mean accel z {}",
            mean.z
        );
    }

    #[test]
    fn imu_is_deterministic_per_seed() {
        let params = QuadrotorParams::default();
        let body = QuadrotorBody::new(params, RigidBodyState::default());
        let mk = || {
            let rng = SimRng::new(77);
            let mut imu = Imu::new(ImuConfig::default(), &rng);
            imu.sample(&body, 0.0)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn bias_step_shifts_the_mean_and_survives_a_snapshot() {
        let params = QuadrotorParams::default();
        let body = QuadrotorBody::new(params, RigidBodyState::default());
        let rng = SimRng::new(9);
        let mut imu = Imu::new(ImuConfig::default(), &rng);
        let before = imu.accel_bias();
        imu.shift_accel_bias(Vec3::new(0.5, 0.0, -0.25));
        assert!((imu.accel_bias().x - before.x - 0.5).abs() < 1e-12);
        assert!((imu.accel_bias().z - before.z + 0.25).abs() < 1e-12);

        // The shifted bias rides along in the snapshot.
        let mut w = rose_sim_core::snap::SnapWriter::new();
        imu.save_state(&mut w);
        let buf = w.into_bytes();
        let mut restored = Imu::new(ImuConfig::default(), &SimRng::new(1234));
        let mut r = rose_sim_core::snap::SnapReader::new(&buf);
        restored.restore_state(&mut r).unwrap();
        let mut a = imu.clone();
        assert_eq!(a.sample(&body, 1.0), restored.sample(&body, 1.0));
    }

    #[test]
    fn depth_sensor_sees_wall() {
        let world = World::tunnel();
        let rng = SimRng::new(3);
        let mut depth = DepthSensor::new(
            DepthConfig {
                noise_frac: 0.0,
                ..DepthConfig::default()
            },
            &rng,
        );
        // Looking 90° left from center: wall at 1.6 m.
        let s = depth.sample(
            &world,
            Vec3::new(10.0, 0.0, 1.0),
            std::f64::consts::FRAC_PI_2,
            0.0,
        );
        assert!((s.depth - 1.6).abs() < 1e-9, "depth {}", s.depth);
        // Looking down the open tunnel: clamped to max range.
        let s = depth.sample(&world, Vec3::new(10.0, 0.0, 1.0), 0.0, 0.0);
        assert_eq!(s.depth, DepthConfig::default().max_range);
    }
}
