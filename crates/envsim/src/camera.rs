//! First-person-view camera: a software column raycaster.
//!
//! The evaluation drone carries an FPV camera with a 90° field of view
//! (Section 4.1). Unreal's GPU renderer is replaced by a column raycaster:
//! for each image column a horizontal ray is cast into the wall geometry;
//! the hit distance determines the projected wall height and shading, giving
//! the DNN controller the same distance/offset cues the paper's rendered
//! corridors provide (near walls are tall and bright, the open corridor is
//! dark at the vanishing point).

use crate::world::{P2, World};
use rose_sim_core::math::Vec3;
use serde::{Deserialize, Serialize};

/// Camera intrinsics and image geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraConfig {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Horizontal field of view in radians.
    pub fov: f64,
    /// Maximum render distance in meters.
    pub max_depth: f64,
}

impl Default for CameraConfig {
    /// 64×64 grayscale with the paper's 90° FOV.
    fn default() -> CameraConfig {
        CameraConfig {
            width: 64,
            height: 64,
            fov: std::f64::consts::FRAC_PI_2,
            max_depth: 60.0,
        }
    }
}

/// A grayscale image (row-major, `height * width` bytes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Image {
    /// Creates a black image.
    pub fn black(width: usize, height: usize) -> Image {
        Image {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at (row, col).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> u8 {
        assert!(row < self.height && col < self.width, "pixel out of bounds");
        self.pixels[row * self.width + col]
    }

    /// Sets the pixel at (row, col).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, v: u8) {
        assert!(row < self.height && col < self.width, "pixel out of bounds");
        self.pixels[row * self.width + col] = v;
    }

    /// Raw pixel bytes, row-major.
    pub fn bytes(&self) -> &[u8] {
        &self.pixels
    }

    /// Consumes the image, returning the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.pixels
    }

    /// Rebuilds an image from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != width * height`.
    pub fn from_bytes(width: usize, height: usize, bytes: Vec<u8>) -> Image {
        assert_eq!(bytes.len(), width * height, "image byte length mismatch");
        Image {
            width,
            height,
            pixels: bytes,
        }
    }

    /// Mean brightness of the image in `[0, 255]`.
    pub fn mean_brightness(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }
}

/// Renders the view from `pos` at heading `yaw` into an [`Image`].
///
/// The camera is assumed level (stabilized gimbal); each column casts one
/// horizontal ray over the FOV, and the column is filled doom-style: sky
/// above the projected wall top, shaded wall, floor below.
pub fn render(world: &World, pos: Vec3, yaw: f64, cfg: &CameraConfig) -> Image {
    let mut img = Image::black(cfg.width, cfg.height);
    let origin = P2::new(pos.x, pos.y);
    let eye_height = pos.z.max(0.2);
    let half_fov = cfg.fov * 0.5;
    // Vertical FOV matches horizontal scaled by aspect (square here).
    let v_half_fov = half_fov * cfg.height as f64 / cfg.width as f64;

    for col in 0..cfg.width {
        // Column angle across the FOV, left edge = +half_fov (left of view).
        let frac = (col as f64 + 0.5) / cfg.width as f64; // 0..1 left->right
        let angle = yaw + half_fov - frac * cfg.fov;
        let dist = world
            .raycast(origin, angle)
            .unwrap_or(cfg.max_depth)
            .min(cfg.max_depth);
        // Correct fisheye: perpendicular distance.
        let perp = (dist * (angle - yaw).cos()).max(0.05);

        // Projected rows of wall top and bottom.
        let wall_top_angle = ((world.wall_height() - eye_height) / perp).atan();
        let wall_bot_angle = (-eye_height / perp).atan();
        let row_of = |a: f64| -> f64 {
            // +v_half_fov (up) maps to row 0.
            (v_half_fov - a) / (2.0 * v_half_fov) * cfg.height as f64
        };
        let top_row = row_of(wall_top_angle).max(0.0) as usize;
        let bot_row = row_of(wall_bot_angle).clamp(0.0, cfg.height as f64) as usize;

        // Wall shading decays with distance; sky light, floor mid-dark with
        // distance-based gradient for depth cues.
        let wall_shade = (220.0 * (1.0 - (dist / cfg.max_depth)).powf(1.2)).max(16.0) as u8;
        for row in 0..cfg.height {
            let v = if row < top_row {
                235 // sky
            } else if row < bot_row.min(cfg.height) {
                wall_shade
            } else {
                // Floor: nearer rows (lower on screen) brighter.
                let t = (row as f64 - bot_row as f64 + 1.0)
                    / (cfg.height as f64 - bot_row as f64 + 1.0);
                (40.0 + 50.0 * t) as u8
            };
            img.set(row, col, v);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn image_accessors() {
        let mut img = Image::black(4, 3);
        img.set(2, 1, 99);
        assert_eq!(img.get(2, 1), 99);
        assert_eq!(img.bytes().len(), 12);
        let bytes = img.clone().into_bytes();
        let back = Image::from_bytes(4, 3, bytes);
        assert_eq!(back, img);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        Image::black(2, 2).get(2, 0);
    }

    #[test]
    fn render_centered_view_is_symmetric() {
        let world = World::tunnel();
        let cfg = CameraConfig::default();
        let img = render(&world, Vec3::new(5.0, 0.0, 1.0), 0.0, &cfg);
        // A centered, axis-aligned view of a symmetric tunnel renders
        // left/right mirror-symmetric columns.
        for row in 0..cfg.height {
            for col in 0..cfg.width / 2 {
                let l = img.get(row, col);
                let r = img.get(row, cfg.width - 1 - col);
                assert!(
                    (l as i16 - r as i16).abs() <= 1,
                    "asymmetry at ({row},{col}): {l} vs {r}"
                );
            }
        }
    }

    #[test]
    fn render_offset_view_is_asymmetric() {
        let world = World::tunnel();
        let cfg = CameraConfig::default();
        // Near the left wall: the left half of the view is much closer
        // (brighter walls, taller columns) than the right half.
        let img = render(&world, Vec3::new(5.0, 1.0, 1.0), 0.0, &cfg);
        let mid = cfg.height / 2;
        let left_mean: f64 = (0..cfg.width / 4)
            .map(|c| img.get(mid, c) as f64)
            .sum::<f64>()
            / (cfg.width / 4) as f64;
        let right_mean: f64 = (3 * cfg.width / 4..cfg.width)
            .map(|c| img.get(mid, c) as f64)
            .sum::<f64>()
            / (cfg.width / 4) as f64;
        assert!(
            left_mean > right_mean + 10.0,
            "left {left_mean} vs right {right_mean}"
        );
    }

    #[test]
    fn closer_walls_render_brighter() {
        let world = World::tunnel();
        let cfg = CameraConfig::default();
        let mid_row = cfg.height / 2;
        // Looking directly at the left wall from two distances.
        let near = render(
            &world,
            Vec3::new(5.0, 1.0, 1.0),
            std::f64::consts::FRAC_PI_2,
            &cfg,
        );
        let far = render(
            &world,
            Vec3::new(5.0, -1.0, 1.0),
            std::f64::consts::FRAC_PI_2,
            &cfg,
        );
        let c = cfg.width / 2;
        assert!(near.get(mid_row, c) > far.get(mid_row, c));
    }
}
