//! 6-DoF quadrotor rigid-body dynamics.
//!
//! The body is an "X"-configuration quadrotor: four rotors at the ends of
//! two crossed arms. Motor angular velocity is commanded by the flight
//! controller through normalized thrust commands (the ESC/mixed-signal layer
//! of Figure 7 is abstracted as a first-order thrust lag). Integration is
//! semi-implicit Euler at a configurable substep rate, stepped in
//! frame-sized chunks by the environment simulator.

use rose_sim_core::math::{Quat, Vec3};
use rose_sim_core::snap::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// Gravitational acceleration (m/s²).
pub const GRAVITY: f64 = 9.80665;

/// Physical parameters of the simulated quadrotor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadrotorParams {
    /// Vehicle mass in kg.
    pub mass: f64,
    /// Diagonal body inertia (kg·m²) about x, y, z.
    pub inertia: Vec3,
    /// Arm length from center to each rotor (m).
    pub arm_length: f64,
    /// Maximum thrust per rotor (N).
    pub max_thrust_per_motor: f64,
    /// Rotor torque-to-thrust ratio (m) for yaw authority.
    pub torque_coeff: f64,
    /// Linear drag coefficient (N per m/s).
    pub linear_drag: f64,
    /// Angular drag coefficient (N·m per rad/s).
    pub angular_drag: f64,
    /// Motor first-order time constant (s).
    pub motor_tau: f64,
    /// Collision radius of the body (m).
    pub radius: f64,
}

impl Default for QuadrotorParams {
    /// A ~1 kg research quadrotor, comparable to the AirSim default drone.
    fn default() -> QuadrotorParams {
        QuadrotorParams {
            mass: 1.0,
            inertia: Vec3::new(0.01, 0.01, 0.018),
            arm_length: 0.18,
            max_thrust_per_motor: 5.0,
            torque_coeff: 0.016,
            linear_drag: 0.3,
            angular_drag: 0.003,
            motor_tau: 0.02,
            radius: 0.3,
        }
    }
}

impl QuadrotorParams {
    /// The total hover thrust (N).
    pub fn hover_thrust(&self) -> f64 {
        self.mass * GRAVITY
    }

    /// Normalized per-motor command that produces hover.
    pub fn hover_command(&self) -> f64 {
        self.hover_thrust() / (4.0 * self.max_thrust_per_motor)
    }
}

/// The full rigid-body state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RigidBodyState {
    /// World-frame position (m). Z is up; the floor is z = 0.
    pub position: Vec3,
    /// World-frame linear velocity (m/s).
    pub velocity: Vec3,
    /// Body-to-world attitude.
    pub attitude: Quat,
    /// Body-frame angular velocity (rad/s).
    pub angular_velocity: Vec3,
}

impl Default for RigidBodyState {
    fn default() -> RigidBodyState {
        RigidBodyState {
            position: Vec3::ZERO,
            velocity: Vec3::ZERO,
            attitude: Quat::IDENTITY,
            angular_velocity: Vec3::ZERO,
        }
    }
}

impl RigidBodyState {
    /// Serializes the state bit-exactly.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let RigidBodyState {
            position,
            velocity,
            attitude,
            angular_velocity,
        } = self;
        position.save_state(w);
        velocity.save_state(w);
        attitude.save_state(w);
        angular_velocity.save_state(w);
    }

    /// Deserializes a state written by [`RigidBodyState::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a truncated snapshot.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<RigidBodyState, SnapError> {
        Ok(RigidBodyState {
            position: Vec3::restore_state(r)?,
            velocity: Vec3::restore_state(r)?,
            attitude: Quat::restore_state(r)?,
            angular_velocity: Vec3::restore_state(r)?,
        })
    }

    /// State at rest on the ground at `position` with the given heading.
    pub fn grounded_at(position: Vec3, yaw: f64) -> RigidBodyState {
        RigidBodyState {
            position,
            attitude: Quat::from_euler(0.0, 0.0, yaw),
            ..RigidBodyState::default()
        }
    }

    /// Current yaw (heading) angle.
    pub fn yaw(&self) -> f64 {
        self.attitude.yaw()
    }
}

/// Normalized motor commands in `[0, 1]`, X configuration.
///
/// Motor order: front-left, front-right, rear-left, rear-right.
/// Front-left and rear-right spin counterclockwise.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MotorCommand(pub [f64; 4]);

impl MotorCommand {
    /// Uniform command to all motors.
    pub fn uniform(u: f64) -> MotorCommand {
        MotorCommand([u; 4])
    }

    /// Clamps each channel into `[0, 1]`.
    pub fn clamped(self) -> MotorCommand {
        MotorCommand(self.0.map(|u| u.clamp(0.0, 1.0)))
    }
}

/// The quadrotor body: parameters plus integrable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuadrotorBody {
    params: QuadrotorParams,
    state: RigidBodyState,
    /// Per-motor thrust after the first-order ESC lag (N).
    motor_thrust: [f64; 4],
}

impl QuadrotorBody {
    /// Creates a body at the given initial state.
    pub fn new(params: QuadrotorParams, state: RigidBodyState) -> QuadrotorBody {
        QuadrotorBody {
            params,
            state,
            motor_thrust: [params.hover_thrust() / 4.0; 4],
        }
    }

    /// Serializes the body's dynamic state (params are structural).
    pub fn save_state(&self, w: &mut SnapWriter) {
        let QuadrotorBody {
            params: _,
            state,
            motor_thrust,
        } = self;
        state.save_state(w);
        for thrust in motor_thrust {
            w.f64(*thrust);
        }
    }

    /// Restores the body's dynamic state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.state = RigidBodyState::restore_state(r)?;
        for thrust in &mut self.motor_thrust {
            *thrust = r.f64()?;
        }
        Ok(())
    }

    /// Physical parameters.
    pub fn params(&self) -> &QuadrotorParams {
        &self.params
    }

    /// Current state.
    pub fn state(&self) -> &RigidBodyState {
        &self.state
    }

    /// Mutable state access (used for collision response).
    pub fn state_mut(&mut self) -> &mut RigidBodyState {
        &mut self.state
    }

    /// Advances the body by `dt` seconds under `cmd`.
    ///
    /// Ground contact is modeled as a hard floor at z = 0: downward motion
    /// stops and attitude levels out to yaw-only while grounded.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn step(&mut self, cmd: MotorCommand, dt: f64) {
        assert!(dt > 0.0, "dynamics dt must be positive");
        let p = self.params;
        let cmd = cmd.clamped();

        // First-order motor lag towards the commanded thrust.
        let alpha = dt / (p.motor_tau + dt);
        for (thrust, &u) in self.motor_thrust.iter_mut().zip(cmd.0.iter()) {
            let target = u * p.max_thrust_per_motor;
            *thrust += alpha * (target - *thrust);
        }

        let [fl, fr, rl, rr] = self.motor_thrust;
        let total_thrust = fl + fr + rl + rr;

        // Body torques from differential thrust (X configuration):
        // roll (+x body, right-wing-down): left motors up, right down.
        let l = p.arm_length * std::f64::consts::FRAC_1_SQRT_2;
        let tau_x = l * ((fl + rl) - (fr + rr));
        // pitch (+y body, nose-up): rear motors up, front down.
        let tau_y = l * ((rl + rr) - (fl + fr));
        // yaw from rotor drag torque: CCW motors (fl, rr) push -z torque.
        let tau_z = p.torque_coeff * ((fr + rl) - (fl + rr));
        let torque = Vec3::new(tau_x, tau_y, tau_z)
            - self.state.angular_velocity * p.angular_drag;

        // Angular dynamics (diagonal inertia, gyroscopic term included).
        let i = p.inertia;
        let w = self.state.angular_velocity;
        let i_w = Vec3::new(i.x * w.x, i.y * w.y, i.z * w.z);
        let w_dot = Vec3::new(
            (torque.x - (w.cross(i_w)).x) / i.x,
            (torque.y - (w.cross(i_w)).y) / i.y,
            (torque.z - (w.cross(i_w)).z) / i.z,
        );
        self.state.angular_velocity += w_dot * dt;
        self.state.attitude = self.state.attitude.integrate(self.state.angular_velocity, dt);

        // Linear dynamics: thrust along body +z, gravity, drag.
        let thrust_world = self.state.attitude.rotate(Vec3::Z) * total_thrust;
        let drag = -self.state.velocity * p.linear_drag;
        let accel = (thrust_world + drag) / p.mass - Vec3::Z * GRAVITY;
        self.state.velocity += accel * dt;
        self.state.position += self.state.velocity * dt;

        // Hard floor.
        if self.state.position.z < 0.0 {
            self.state.position.z = 0.0;
            if self.state.velocity.z < 0.0 {
                self.state.velocity.z = 0.0;
            }
            // Landing gear keeps the body level on the ground.
            let yaw = self.state.yaw();
            self.state.attitude = Quat::from_euler(0.0, 0.0, yaw);
            self.state.angular_velocity.x = 0.0;
            self.state.angular_velocity.y = 0.0;
        }
    }

    /// Body-frame specific force (what an ideal accelerometer measures).
    pub fn specific_force(&self) -> Vec3 {
        let total: f64 = self.motor_thrust.iter().sum();
        let drag_world = -self.state.velocity * self.params.linear_drag;
        let f_world = self.state.attitude.rotate(Vec3::Z) * total + drag_world;
        self.state.attitude.conjugate().rotate(f_world / self.params.mass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hover_cmd(p: &QuadrotorParams) -> MotorCommand {
        MotorCommand::uniform(p.hover_command())
    }

    #[test]
    fn hover_is_near_equilibrium() {
        let p = QuadrotorParams::default();
        let start = RigidBodyState {
            position: Vec3::new(0.0, 0.0, 2.0),
            ..RigidBodyState::default()
        };
        let mut body = QuadrotorBody::new(p, start);
        let dt = 1.0 / 400.0;
        for _ in 0..4000 {
            body.step(hover_cmd(&p), dt);
        }
        let s = body.state();
        assert!((s.position.z - 2.0).abs() < 0.05, "z drifted to {}", s.position.z);
        assert!(s.velocity.norm() < 0.02, "residual velocity {}", s.velocity.norm());
    }

    #[test]
    fn gravity_pulls_down_with_motors_off() {
        let p = QuadrotorParams::default();
        let start = RigidBodyState {
            position: Vec3::new(0.0, 0.0, 10.0),
            ..RigidBodyState::default()
        };
        let mut body = QuadrotorBody::new(p, start);
        // Start thrusts at hover level, but command zero: the lag decays.
        let dt = 1.0 / 400.0;
        for _ in 0..400 {
            body.step(MotorCommand::uniform(0.0), dt);
        }
        assert!(body.state().velocity.z < -1.0, "should be falling");
        assert!(body.state().position.z < 10.0);
    }

    #[test]
    fn floor_stops_descent_and_levels() {
        let p = QuadrotorParams::default();
        let mut body = QuadrotorBody::new(p, RigidBodyState::default());
        let dt = 1.0 / 400.0;
        for _ in 0..800 {
            body.step(MotorCommand::uniform(0.0), dt);
        }
        let s = body.state();
        assert_eq!(s.position.z, 0.0);
        assert_eq!(s.velocity.z, 0.0);
        let (roll, pitch, _) = s.attitude.to_euler();
        assert!(roll.abs() < 1e-9 && pitch.abs() < 1e-9);
    }

    #[test]
    fn differential_thrust_rolls() {
        let p = QuadrotorParams::default();
        let start = RigidBodyState {
            position: Vec3::new(0.0, 0.0, 5.0),
            ..RigidBodyState::default()
        };
        let mut body = QuadrotorBody::new(p, start);
        let h = p.hover_command();
        // Left motors stronger -> positive roll torque -> rolls right wing
        // down... sign check: tau_x > 0 rotates about +x (right-hand rule),
        // tipping the +y side up: the body accelerates towards -y? We assert
        // the roll angle grows positive.
        let cmd = MotorCommand([h + 0.05, h - 0.05, h + 0.05, h - 0.05]);
        let dt = 1.0 / 400.0;
        for _ in 0..100 {
            body.step(cmd, dt);
        }
        let (roll, _, _) = body.state().attitude.to_euler();
        assert!(roll > 0.01, "roll {roll} should be positive");
    }

    #[test]
    fn yaw_torque_spins() {
        let p = QuadrotorParams::default();
        let start = RigidBodyState {
            position: Vec3::new(0.0, 0.0, 5.0),
            ..RigidBodyState::default()
        };
        let mut body = QuadrotorBody::new(p, start);
        let h = p.hover_command();
        // CW motors (fr, rl) stronger -> positive yaw torque.
        let cmd = MotorCommand([h - 0.05, h + 0.05, h + 0.05, h - 0.05]);
        let dt = 1.0 / 400.0;
        for _ in 0..200 {
            body.step(cmd, dt);
        }
        assert!(body.state().yaw() > 0.01, "yaw {}", body.state().yaw());
    }

    #[test]
    fn specific_force_at_hover_is_one_g_up() {
        let p = QuadrotorParams::default();
        let start = RigidBodyState {
            position: Vec3::new(0.0, 0.0, 2.0),
            ..RigidBodyState::default()
        };
        let mut body = QuadrotorBody::new(p, start);
        let dt = 1.0 / 400.0;
        for _ in 0..2000 {
            body.step(MotorCommand::uniform(p.hover_command()), dt);
        }
        let f = body.specific_force();
        assert!((f.z - GRAVITY).abs() < 0.3, "specific force z {}", f.z);
        assert!(f.x.abs() < 0.1 && f.y.abs() < 0.1);
    }
}
