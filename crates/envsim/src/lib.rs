//! Environment simulator for the RoSÉ reproduction — the AirSim substitute.
//!
//! The paper integrates AirSim (an Unreal Engine plugin) to simulate the
//! UAV's environment: rigid-body physics, camera rendering, inertial sensor
//! models, and an RPC API for sensor readings, actuation, and simulator
//! commands (Section 3.1). This crate reproduces that surface in pure Rust:
//!
//! * [`world`] — corridor environments (the paper's `tunnel` and `s-shape`
//!   maps), collision geometry, raycasting, and ground-truth centerline
//!   queries.
//! * [`dynamics`] — 6-DoF quadrotor rigid-body dynamics with a motor model.
//! * [`camera`] — a software column raycaster producing grayscale
//!   first-person-view frames (90° FOV, as in Section 4.1).
//! * [`sensors`] — IMU (accelerometer + gyroscope with bias and noise) and a
//!   forward depth sensor.
//! * [`uav`] — [`uav::UavSim`], the frame-stepped UAV simulation combining
//!   world, body, autopilot, and sensors.
//! * [`api`] — the RPC-style request/response surface consumed by the RoSÉ
//!   synchronizer ([`api::SimRequest`] / [`api::SimResponse`]).
//!
//! The simulation advances in discrete **frames** (one physics + render
//! step, typically 60–120 Hz) so it can be integrated with the hardware RTL
//! simulation flow in lockstep (Section 3.4.1).

#![deny(missing_docs)]

pub mod api;
pub mod camera;
pub mod dynamics;
pub mod sensors;
pub mod uav;
pub mod world;

pub use api::{SimRequest, SimResponse, VelocityTarget};
pub use camera::{CameraConfig, Image};
pub use dynamics::{QuadrotorBody, QuadrotorParams, RigidBodyState};
pub use uav::{Autopilot, UavSim, UavSimConfig};
pub use world::{World, WorldKind};
