//! Property-based tests of the environment simulator's physical
//! invariants.

use proptest::prelude::*;
use rose_envsim::api::VelocityTarget;
use rose_envsim::dynamics::{MotorCommand, QuadrotorBody, QuadrotorParams, RigidBodyState};
use rose_envsim::uav::{Autopilot, UavSim, UavSimConfig};
use rose_envsim::world::{World, P2};
use rose_flightctl::SimpleFlight;
use rose_sim_core::math::Vec3;
use rose_sim_core::rng::SimRng;

proptest! {
    /// The rigid body never produces NaNs or leaves the ground plane
    /// downward, for arbitrary (clamped) motor commands.
    #[test]
    fn dynamics_stay_finite(cmds in proptest::collection::vec(
        (0.0f64..1.5, 0.0f64..1.5, 0.0f64..1.5, 0.0f64..1.5), 1..200)) {
        let p = QuadrotorParams::default();
        let mut body = QuadrotorBody::new(
            p,
            RigidBodyState {
                position: Vec3::new(0.0, 0.0, 2.0),
                ..RigidBodyState::default()
            },
        );
        for (a, b, c, d) in cmds {
            body.step(MotorCommand([a, b, c, d]), 1.0 / 400.0);
            let s = body.state();
            prop_assert!(s.position.is_finite());
            prop_assert!(s.velocity.is_finite());
            prop_assert!(s.position.z >= 0.0, "below the floor: {}", s.position.z);
            prop_assert!((s.attitude.norm() - 1.0).abs() < 1e-6);
        }
    }

    /// Raycasts never report a hit beyond another hit: the minimum over
    /// walls is consistent with each individual wall distance.
    #[test]
    fn raycast_returns_nearest(x in 1.0f64..49.0, y in -1.4f64..1.4, heading in -3.1f64..3.1) {
        let world = World::tunnel();
        let origin = P2::new(x, y);
        if let Some(d) = world.raycast(origin, heading) {
            prop_assert!(d > 0.0);
            for wall in world.walls() {
                if let Some(dw) = wall.raycast(origin, heading.cos(), heading.sin()) {
                    prop_assert!(d <= dw + 1e-9, "min violated: {d} > {dw}");
                }
            }
        }
    }

    /// Trail queries are bounded: the lateral offset can never exceed the
    /// distance to the farthest point of the corridor cross-section.
    #[test]
    fn trail_offset_is_bounded(x in 0.0f64..79.0, y in -2.9f64..2.9, yaw in -3.1f64..3.1) {
        let world = World::s_shape();
        let q = world.trail_query(Vec3::new(x, y, 1.0), yaw);
        prop_assert!(q.lateral_offset.abs() < 12.0);
        prop_assert!(q.heading_error.abs() <= std::f64::consts::PI + 1e-9);
        prop_assert!(q.progress >= 0.0);
        prop_assert!(q.progress <= world.trail_length() + 1e-9);
    }
}

/// A closed-loop flight under the real flight controller keeps the state
/// inside the physical envelope for a spread of velocity targets.
#[test]
fn closed_loop_envelope() {
    for (forward, lateral, yaw_rate) in [
        (3.0, 0.0, 0.0),
        (9.0, 1.0, 0.5),
        (12.0, -2.0, -1.0),
        (0.0, 0.0, 2.0),
    ] {
        let config = UavSimConfig::default();
        let fc = SimpleFlight::default_for(config.quad);
        let mut sim = UavSim::new(config, World::s_shape(), Box::new(fc), &SimRng::new(9));
        sim.handle(rose_envsim::api::SimRequest::SetVelocityTarget(
            VelocityTarget {
                forward,
                lateral,
                yaw_rate,
                altitude: 1.5,
            },
        ));
        sim.step_frames(240);
        let pose = sim.pose();
        assert!(pose.position.is_finite());
        assert!(pose.velocity.norm() < 20.0, "runaway velocity");
        assert!(pose.position.z >= 0.0 && pose.position.z < 10.0);
    }
}

/// A trivially passive autopilot drops the UAV to the floor — the
/// Autopilot trait's contract is honored by the sim loop.
#[test]
fn passive_autopilot_lands() {
    struct NoThrust;
    impl Autopilot for NoThrust {
        fn command(
            &mut self,
            _s: &RigidBodyState,
            _t: &VelocityTarget,
            _dt: f64,
        ) -> MotorCommand {
            MotorCommand::uniform(0.0)
        }
        fn reset(&mut self) {}
    }
    let mut sim = UavSim::new(
        UavSimConfig::default(),
        World::tunnel(),
        Box::new(NoThrust),
        &SimRng::new(4),
    );
    sim.step_frames(180);
    assert_eq!(sim.pose().position.z, 0.0, "should be on the floor");
}
