//! Host wall-clock self-profiler: scoped, phase-keyed time attribution.
//!
//! ROADMAP item 3 ("make the SoC cycle loop an order of magnitude
//! faster") needs a target list before it can be attacked: where does
//! *host* time actually go — environment stepping, the RTL grant loop,
//! transport, the snapshot codec, or the tracing layer itself? This
//! module answers that with a fixed-size per-phase accumulator that is
//! cheap enough to leave always on.
//!
//! # The digest-exclusion contract
//!
//! Wall-clock readings are host-dependent and **never** enter the
//! determinism digest or a mission snapshot (DESIGN.md §4d/§4f) — the
//! same contract the sync-quantum span args already follow. To keep that
//! auditable, the `PROF001` lint flags every direct `std::time::Instant`
//! / `SystemTime` read outside this module and the synchronizer's
//! whitelisted wall-time stats: all other wall-clock sampling funnels
//! through [`Stopwatch`] / [`Profiler::time`], which are digest-excluded
//! by construction.

use std::fmt;
use std::time::{Duration, Instant};

/// A host-time attribution phase. One bucket per major co-simulation
/// cost center; everything unattributed lands in [`Phase::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Environment simulator frame stepping (dynamics, sensors, render).
    EnvStep,
    /// The RTL grant: running the SoC for one quantum's worth of cycles.
    RtlGrant,
    /// Token/packet exchange between the endpoints (queue drains, IPC).
    Transport,
    /// Mission snapshot serialization and resume deserialization.
    SnapshotCodec,
    /// Trace recording and quantum bookkeeping overhead.
    TraceOverhead,
    /// Transport-fault recovery: retries, reconnects, and resync
    /// handshakes absorbed by the synchronizer's recovery policy (carved
    /// out of the RTL grant it interrupted).
    Recovery,
    /// Timing-model evaluation inside the SoC: kernel expansion,
    /// closed-form accelerator costing, and timing-cache lookups (carved
    /// out of the RTL grant that triggered it, so `rtl-grant` is left
    /// measuring pure cycle-loop work).
    CostModel,
    /// Anything not covered by a dedicated phase.
    Other,
}

/// Number of phases (array backing size).
const PHASES: usize = 8;

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; PHASES] = [
        Phase::EnvStep,
        Phase::RtlGrant,
        Phase::Transport,
        Phase::SnapshotCodec,
        Phase::TraceOverhead,
        Phase::Recovery,
        Phase::CostModel,
        Phase::Other,
    ];

    /// The phase's stable display name (also the bench-JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::EnvStep => "env-step",
            Phase::RtlGrant => "rtl-grant",
            Phase::Transport => "transport",
            Phase::SnapshotCodec => "snapshot-codec",
            Phase::TraceOverhead => "trace-overhead",
            Phase::Recovery => "recovery",
            Phase::CostModel => "cost-model",
            Phase::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::EnvStep => 0,
            Phase::RtlGrant => 1,
            Phase::Transport => 2,
            Phase::SnapshotCodec => 3,
            Phase::TraceOverhead => 4,
            Phase::Recovery => 5,
            Phase::CostModel => 6,
            Phase::Other => 7,
        }
    }
}

/// A started wall-clock measurement. The **only** sanctioned way (along
/// with [`Profiler::time`]) to read host time outside the synchronizer's
/// whitelisted stats — see the module docs and the `PROF001` lint.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Wall time elapsed since [`start`](Stopwatch::start).
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// Per-phase host wall-time totals and call counts.
///
/// Plain data, deliberately *not* scope-guard based: the co-simulation's
/// phases interleave across closures and threads, so call sites measure
/// a [`Stopwatch`] (or let [`Profiler::time`] do it) and attribute the
/// `Duration` explicitly with [`add`](Profiler::add). The accumulator
/// itself is telemetry: excluded from snapshots and the determinism
/// digest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profiler {
    totals: [Duration; PHASES],
    counts: [u64; PHASES],
}

impl Profiler {
    /// An empty profile.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Attributes `wall` to `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, wall: Duration) {
        let i = phase.index();
        self.totals[i] += wall;
        self.counts[i] += 1;
    }

    /// Runs `f`, attributing its wall time to `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let sw = Stopwatch::start();
        let out = f();
        self.add(phase, sw.elapsed());
        out
    }

    /// Total wall time attributed to `phase`.
    pub fn total(&self, phase: Phase) -> Duration {
        self.totals[phase.index()]
    }

    /// Number of attributions made to `phase`.
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Wall time summed over every phase.
    pub fn total_wall(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// True when nothing has been attributed.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Adds every attribution of `other` into `self` (combining the
    /// profiles of forked branches or of sequential mission segments).
    pub fn merge(&mut self, other: &Profiler) {
        for phase in Phase::ALL {
            let i = phase.index();
            self.totals[i] += other.totals[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// Renders the per-phase attribution table shown by
    /// `profile_mission --profile`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let total = self.total_wall().as_secs_f64();
        out.push_str("phase           total-ms      calls     avg-us    share\n");
        for phase in Phase::ALL {
            let t = self.total(phase).as_secs_f64();
            let n = self.count(phase);
            let avg_us = if n == 0 { 0.0 } else { t * 1e6 / n as f64 };
            let share = if total > 0.0 { t / total * 100.0 } else { 0.0 };
            out.push_str(&format!(
                "{:<15} {:>8.3} {:>10} {:>10.1} {:>7.1}%\n",
                phase.name(),
                t * 1e3,
                n,
                avg_us,
                share
            ));
        }
        out.push_str(&format!("{:<15} {:>8.3}\n", "total", total * 1e3));
        out
    }
}

impl fmt::Display for Profiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

impl crate::metrics::MetricSource for Profiler {
    fn record_metrics(&self, registry: &mut crate::metrics::MetricRegistry) {
        for phase in Phase::ALL {
            let name = phase.name();
            registry.gauge(
                &format!("profile.{name}.total_us"),
                self.total(phase).as_secs_f64() * 1e6,
            );
            registry.set_counter(&format!("profile.{name}.calls"), self.count(phase));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_independently() {
        let mut p = Profiler::new();
        assert!(p.is_empty());
        p.add(Phase::EnvStep, Duration::from_micros(100));
        p.add(Phase::EnvStep, Duration::from_micros(50));
        p.add(Phase::Transport, Duration::from_micros(25));
        assert_eq!(p.total(Phase::EnvStep), Duration::from_micros(150));
        assert_eq!(p.count(Phase::EnvStep), 2);
        assert_eq!(p.total(Phase::Transport), Duration::from_micros(25));
        assert_eq!(p.total(Phase::RtlGrant), Duration::ZERO);
        assert_eq!(p.total_wall(), Duration::from_micros(175));
        assert!(!p.is_empty());
    }

    #[test]
    fn time_attributes_the_closure_and_returns_its_value() {
        let mut p = Profiler::new();
        let out = p.time(Phase::SnapshotCodec, || 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(p.count(Phase::SnapshotCodec), 1);
    }

    #[test]
    fn merge_sums_phase_wise() {
        let mut a = Profiler::new();
        a.add(Phase::RtlGrant, Duration::from_micros(10));
        let mut b = Profiler::new();
        b.add(Phase::RtlGrant, Duration::from_micros(30));
        b.add(Phase::Other, Duration::from_micros(5));
        a.merge(&b);
        assert_eq!(a.total(Phase::RtlGrant), Duration::from_micros(40));
        assert_eq!(a.count(Phase::RtlGrant), 2);
        assert_eq!(a.total(Phase::Other), Duration::from_micros(5));
    }

    #[test]
    fn table_lists_every_phase_with_shares() {
        let mut p = Profiler::new();
        p.add(Phase::EnvStep, Duration::from_millis(3));
        p.add(Phase::RtlGrant, Duration::from_millis(1));
        let table = p.render_table();
        for phase in Phase::ALL {
            assert!(table.contains(phase.name()), "missing {}", phase.name());
        }
        assert!(table.contains("75.0%"));
        assert!(table.contains("25.0%"));
        // Display goes through the same renderer.
        assert_eq!(p.to_string(), table);
    }
}
