//! Log-bucketed latency histogram with quantile estimation.
//!
//! [`Summary`](rose_sim_core::stats::Summary) gives exact count/mean/min/
//! max in O(1) memory but no quantiles; [`Samples`](rose_sim_core::stats)
//! gives exact quantiles but unbounded memory. `LogHistogram` sits in
//! between: fixed memory (one `u64` per bucket), bounded relative error,
//! and mergeable/subtractable buckets — the shape needed for always-on
//! telemetry (p50/p90/p99/p99.9 of quantum wall time, grant latency,
//! queue depth, kernel cycles, control-loop slack) and for combining
//! forked-mission branches without double-counting a shared warm-start
//! prefix (merge a prefix-subtracted delta per branch).
//!
//! # Bucketing
//!
//! Log-linear (HDR-style): values below 1.0 land in a single underflow
//! bucket; above that, each power-of-two octave is split into
//! [`SUB_BUCKETS`] linear sub-buckets, so the relative quantile error is
//! at most `1 / SUB_BUCKETS` (12.5%). Callers pick the unit (µs, cycles,
//! frames) so that interesting values sit well above 1.0.
//!
//! Bucket contents are plain counts, so `merge` is bucket-wise addition
//! and `delta_since` is bucket-wise (saturating) subtraction — both exact
//! at the bucket resolution. Quantiles are reported as the geometric
//! placement inside the selected bucket, clamped to the observed
//! min..max range.
//!
//! The histogram is **telemetry, not simulation state**: it never feeds
//! the determinism digest and is excluded from mission snapshots (like
//! the sync-quantum wall-time span args, DESIGN.md §4d/§4f).

/// Linear sub-buckets per power-of-two octave. 8 bounds the relative
/// quantile error at 12.5%.
pub const SUB_BUCKETS: usize = 8;

/// Octaves covered above the underflow bucket: values up to `2^40`
/// (≈ 10^12 — enough for cycles-per-mission) resolve; larger values
/// clamp into the final bucket.
const OCTAVES: usize = 40;

/// Total bucket count: underflow + octaves × sub-buckets.
const BUCKETS: usize = 1 + OCTAVES * SUB_BUCKETS;

/// A fixed-memory log-bucketed histogram over non-negative `f64` values.
///
/// Negative and non-finite observations clamp into the underflow bucket
/// (they still count, so `count` matches the number of `record` calls).
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        let idx = bucket_index(x);
        self.buckets[idx] += 1;
        self.count += 1;
        if x.is_finite() {
            self.sum += x;
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
    }

    /// Records an integer observation (cycle counts, queue depths).
    pub fn record_u64(&mut self, x: u64) {
        self.record(x as f64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all finite observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest finite observation, if any.
    pub fn min(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Largest finite observation, if any.
    pub fn max(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`), or `None` when
    /// empty. The estimate is the geometric midpoint of the bucket
    /// holding the target rank, clamped to the observed min..max, so the
    /// relative error is bounded by the bucket width (≤ 12.5%).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let (lo, hi) = bucket_bounds(idx);
                let mid = (lo * hi).sqrt();
                let mid = if mid.is_finite() { mid } else { lo };
                return Some(mid.clamp(self.min.min(self.max), self.max.max(self.min)));
            }
        }
        // Unreachable: `count` equals the bucket total by construction.
        self.max()
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Adds every observation of `other` into `self` (bucket-wise — exact
    /// at bucket resolution).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The observations recorded since `prefix` was captured, assuming
    /// `prefix` is an earlier snapshot of this same histogram (bucket-wise
    /// saturating subtraction). Used to de-duplicate the shared
    /// warm-start prefix when combining forked-mission branches.
    ///
    /// `min`/`max` are not recoverable by subtraction; the delta keeps
    /// this histogram's observed range (a conservative superset).
    pub fn delta_since(&self, prefix: &LogHistogram) -> LogHistogram {
        let mut out = LogHistogram::new();
        for (o, (a, b)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&prefix.buckets))
        {
            *o = a.saturating_sub(*b);
        }
        out.count = self.count.saturating_sub(prefix.count);
        out.sum = if out.count == 0 {
            0.0
        } else {
            self.sum - prefix.sum
        };
        out.min = self.min;
        out.max = self.max;
        if out.count == 0 {
            out.min = f64::INFINITY;
            out.max = f64::NEG_INFINITY;
        }
        out
    }
}

/// The bucket holding value `x`.
fn bucket_index(x: f64) -> usize {
    if x.is_nan() || x < 1.0 {
        return 0;
    }
    if x.is_infinite() {
        return BUCKETS - 1;
    }
    let octave = x.log2().floor();
    if octave >= OCTAVES as f64 {
        return BUCKETS - 1;
    }
    let o = octave as usize;
    let frac = (x / octave.exp2() - 1.0).max(0.0);
    let sub = ((frac * SUB_BUCKETS as f64) as usize).min(SUB_BUCKETS - 1);
    1 + o * SUB_BUCKETS + sub
}

/// The `[lo, hi)` value range of bucket `idx`.
fn bucket_bounds(idx: usize) -> (f64, f64) {
    if idx == 0 {
        return (0.0, 1.0);
    }
    let i = idx - 1;
    let o = (i / SUB_BUCKETS) as f64;
    let s = (i % SUB_BUCKETS) as f64;
    let base = o.exp2();
    let lo = base * (1.0 + s / SUB_BUCKETS as f64);
    let hi = base * (1.0 + (s + 1.0) / SUB_BUCKETS as f64);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v = 0.5;
        while v < 1e13 {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index must be monotone at {v}");
            assert!(idx < BUCKETS);
            let (lo, hi) = bucket_bounds(idx);
            if idx > 0 && idx < BUCKETS - 1 {
                assert!(lo <= v && v < hi, "{v} outside [{lo},{hi}) at {idx}");
            }
            last = idx;
            v *= 1.07;
        }
    }

    #[test]
    fn extremes_clamp_into_terminal_buckets() {
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
        assert_eq!(bucket_index(1e300), BUCKETS - 1);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i as f64);
        }
        for (q, exact) in [(0.50, 5_000.0), (0.90, 9_000.0), (0.99, 9_900.0)] {
            let est = h.quantile(q).unwrap();
            let err = (est - exact).abs() / exact;
            assert!(err < 0.13, "q={q}: est {est} vs exact {exact} (err {err})");
        }
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(10_000.0));
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn single_value_quantiles_collapse_to_it() {
        let mut h = LogHistogram::new();
        h.record(42.0);
        assert_eq!(h.p50(), Some(42.0));
        assert_eq!(h.p999(), Some(42.0));
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mut all = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..500u64 {
            let x = (i as f64) * 3.7 + 0.5;
            all.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn delta_since_removes_the_prefix() {
        let mut h = LogHistogram::new();
        for i in 1..=100u64 {
            h.record(i as f64);
        }
        let prefix = h.clone();
        for i in 1000..=1100u64 {
            h.record(i as f64);
        }
        let delta = h.delta_since(&prefix);
        assert_eq!(delta.count(), 101);
        // All delta mass sits in the 1000..=1100 region.
        assert!(delta.quantile(0.0).unwrap() >= 900.0);
        // Re-merging the prefix reproduces the full histogram's buckets.
        let mut rebuilt = prefix.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.buckets, h.buckets);
    }

    #[test]
    fn delta_of_identical_snapshots_is_empty() {
        let mut h = LogHistogram::new();
        h.record(5.0);
        h.record(9.0);
        let delta = h.delta_since(&h.clone());
        assert!(delta.is_empty());
        assert_eq!(delta.min(), None);
        assert_eq!(delta.sum(), 0.0);
    }

    #[test]
    fn negative_observations_count_but_keep_min_exact() {
        let mut h = LogHistogram::new();
        h.record(-3.0);
        h.record(8.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(-3.0));
        assert_eq!(h.max(), Some(8.0));
    }
}
