//! The named-metric registry.
//!
//! `SocStats`, `SyncStats`, energy reports, and application counters each
//! accumulate in their own struct; this registry flattens them behind one
//! `name → value` interface so any run can be snapshotted to CSV without
//! bespoke glue per experiment. Subsystems implement [`MetricSource`] for
//! their stats types; the registry stays ignorant of their layouts (and
//! this crate stays below every simulator crate in the dependency graph).

use rose_sim_core::csv::{CsvCell, CsvLog};
use rose_sim_core::stats::Summary;
use std::collections::BTreeMap;

/// A scalar metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotonically accumulated count.
    Counter(u64),
    /// A point-in-time real value.
    Gauge(f64),
}

/// Anything that can dump its counters into a [`MetricRegistry`].
///
/// Implementations should use a stable dotted prefix per subsystem
/// (`soc.*`, `sync.*`, `energy.*`, `app.*`) so snapshots from different
/// runs line up row-for-row.
pub trait MetricSource {
    /// Records every metric this source owns into `registry`.
    fn record_metrics(&self, registry: &mut MetricRegistry);
}

/// A named counter/gauge/summary store with CSV snapshot export.
///
/// Names sort lexicographically in the snapshot (a `BTreeMap` underneath),
/// so output order is deterministic across runs and platforms.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    values: BTreeMap<String, MetricValue>,
    summaries: BTreeMap<String, Summary>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Adds `delta` to counter `name` (created at zero).
    pub fn counter(&mut self, name: &str, delta: u64) {
        match self.values.get_mut(name) {
            Some(MetricValue::Counter(v)) => *v += delta,
            _ => {
                self.values
                    .insert(name.to_string(), MetricValue::Counter(delta));
            }
        }
    }

    /// Sets counter `name` to an absolute total (for sources that already
    /// accumulate internally).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.values
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Sets gauge `name`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.values
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Records one observation into the distribution `name` (Welford-backed
    /// count/mean/min/max, the histogram-style interface).
    pub fn observe(&mut self, name: &str, x: f64) {
        self.summaries.entry(name.to_string()).or_default().record(x);
    }

    /// The value of a scalar metric.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.values.get(name).copied()
    }

    /// The value of counter `name`, if it exists as a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of gauge `name`, if it exists as a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The observation summary `name`, if any observation was recorded.
    pub fn summary(&self, name: &str) -> Option<&Summary> {
        self.summaries.get(name)
    }

    /// Number of scalar metrics plus distributions.
    pub fn len(&self) -> usize {
        self.values.len() + self.summaries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty() && self.summaries.is_empty()
    }

    /// Pulls every metric out of `source`.
    pub fn record<S: MetricSource + ?Sized>(&mut self, source: &S) {
        source.record_metrics(self);
    }

    /// Snapshots the registry as a `metric,kind,value` CSV table. Each
    /// distribution expands to `.count` / `.mean` / `.min` / `.max` rows.
    pub fn to_csv(&self) -> CsvLog {
        let mut log = CsvLog::new(&["metric", "kind", "value"]);
        for (name, value) in &self.values {
            let (kind, cell) = match value {
                MetricValue::Counter(v) => ("counter", CsvCell::from(*v)),
                MetricValue::Gauge(v) => ("gauge", CsvCell::Float(*v)),
            };
            log.push_row(vec![CsvCell::from(name.as_str()), CsvCell::from(kind), cell]);
        }
        for (name, summary) in &self.summaries {
            let rows: [(&str, CsvCell); 4] = [
                ("count", CsvCell::from(summary.count())),
                ("mean", CsvCell::Float(summary.mean())),
                ("min", CsvCell::Float(summary.min().unwrap_or(f64::NAN))),
                ("max", CsvCell::Float(summary.max().unwrap_or(f64::NAN))),
            ];
            for (stat, cell) in rows {
                log.push_row(vec![
                    CsvCell::Str(format!("{name}.{stat}")),
                    CsvCell::from("summary"),
                    cell,
                ]);
            }
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeStats {
        hits: u64,
        ratio: f64,
    }

    impl MetricSource for FakeStats {
        fn record_metrics(&self, registry: &mut MetricRegistry) {
            registry.set_counter("fake.hits", self.hits);
            registry.gauge("fake.ratio", self.ratio);
        }
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricRegistry::new();
        reg.counter("a", 2);
        reg.counter("a", 3);
        reg.gauge("g", 1.0);
        reg.gauge("g", 2.5);
        assert_eq!(reg.counter_value("a"), Some(5));
        assert_eq!(reg.gauge_value("g"), Some(2.5));
        assert_eq!(reg.counter_value("g"), None);
        assert_eq!(reg.get("missing"), None);
    }

    #[test]
    fn sources_record_through_the_trait() {
        let mut reg = MetricRegistry::new();
        reg.record(&FakeStats {
            hits: 41,
            ratio: 0.9,
        });
        assert_eq!(reg.counter_value("fake.hits"), Some(41));
        assert_eq!(reg.gauge_value("fake.ratio"), Some(0.9));
    }

    #[test]
    fn csv_snapshot_is_sorted_and_typed() {
        let mut reg = MetricRegistry::new();
        reg.gauge("z.last", 0.5);
        reg.set_counter("a.first", 7);
        reg.observe("lat", 10.0);
        reg.observe("lat", 30.0);
        let csv = reg.to_csv();
        let text = csv.to_csv_string();
        assert_eq!(
            text,
            "metric,kind,value\n\
             a.first,counter,7\n\
             z.last,gauge,0.5\n\
             lat.count,summary,2\n\
             lat.mean,summary,20\n\
             lat.min,summary,10\n\
             lat.max,summary,30\n"
        );
    }
}
