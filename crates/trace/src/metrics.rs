//! The named-metric registry.
//!
//! `SocStats`, `SyncStats`, energy reports, and application counters each
//! accumulate in their own struct; this registry flattens them behind one
//! `name → value` interface so any run can be snapshotted to CSV without
//! bespoke glue per experiment. Subsystems implement [`MetricSource`] for
//! their stats types; the registry stays ignorant of their layouts (and
//! this crate stays below every simulator crate in the dependency graph).

use crate::hist::LogHistogram;
use rose_sim_core::csv::{CsvCell, CsvLog};
use rose_sim_core::stats::Summary;
use std::collections::BTreeMap;

/// A scalar metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotonically accumulated count.
    Counter(u64),
    /// A point-in-time real value.
    Gauge(f64),
}

/// Anything that can dump its counters into a [`MetricRegistry`].
///
/// Implementations should use a stable dotted prefix per subsystem
/// (`soc.*`, `sync.*`, `energy.*`, `app.*`) so snapshots from different
/// runs line up row-for-row.
pub trait MetricSource {
    /// Records every metric this source owns into `registry`.
    fn record_metrics(&self, registry: &mut MetricRegistry);
}

/// A named counter/gauge/summary store with CSV snapshot export.
///
/// Names sort lexicographically in the snapshot (a `BTreeMap` underneath),
/// so output order is deterministic across runs and platforms.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    values: BTreeMap<String, MetricValue>,
    summaries: BTreeMap<String, Summary>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Adds `delta` to counter `name` (created at zero).
    pub fn counter(&mut self, name: &str, delta: u64) {
        match self.values.get_mut(name) {
            Some(MetricValue::Counter(v)) => *v += delta,
            _ => {
                self.values
                    .insert(name.to_string(), MetricValue::Counter(delta));
            }
        }
    }

    /// Sets counter `name` to an absolute total (for sources that already
    /// accumulate internally).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.values
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Sets gauge `name`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.values
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Records one observation into the distribution `name` (Welford-backed
    /// count/mean/min/max, the histogram-style interface).
    pub fn observe(&mut self, name: &str, x: f64) {
        self.summaries.entry(name.to_string()).or_default().record(x);
    }

    /// The value of a scalar metric.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.values.get(name).copied()
    }

    /// The value of counter `name`, if it exists as a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of gauge `name`, if it exists as a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The observation summary `name`, if any observation was recorded.
    pub fn summary(&self, name: &str) -> Option<&Summary> {
        self.summaries.get(name)
    }

    /// Records one observation into the log-bucketed histogram `name`
    /// (p50/p90/p99/p99.9 in the CSV snapshot; see
    /// [`LogHistogram`] for the bucketing contract).
    pub fn observe_hist(&mut self, name: &str, x: f64) {
        self.histograms.entry(name.to_string()).or_default().record(x);
    }

    /// Merges a pre-built histogram into `name` (for subsystems that
    /// accumulate their own [`LogHistogram`] on the hot path).
    pub fn record_histogram(&mut self, name: &str, hist: &LogHistogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(hist);
    }

    /// The histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Number of scalar metrics plus distributions.
    pub fn len(&self) -> usize {
        self.values.len() + self.summaries.len() + self.histograms.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty() && self.summaries.is_empty() && self.histograms.is_empty()
    }

    /// Merges every metric of `other` into `self`: counters add, gauges
    /// take `other`'s value, summaries and histograms merge
    /// distribution-wise. Combining forked-mission branches is
    /// `merge(prefix, Σ branchᵢ.delta_since(prefix))` so the shared
    /// warm-start prefix counts exactly once.
    pub fn merge(&mut self, other: &MetricRegistry) {
        for (name, value) in &other.values {
            match value {
                MetricValue::Counter(v) => self.counter(name, *v),
                MetricValue::Gauge(v) => self.gauge(name, *v),
            }
        }
        for (name, summary) in &other.summaries {
            self.summaries
                .entry(name.clone())
                .or_default()
                .merge(summary);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// The metrics recorded since `prefix` was captured, assuming
    /// `prefix` is an earlier snapshot of this same registry: counters
    /// subtract, summaries and histograms subtract distribution-wise
    /// (bucket-exact for histograms, moment-exact for summaries; min/max
    /// keep the conservative full-stream range), and gauges keep this
    /// registry's point-in-time value. Metrics absent from `prefix` pass
    /// through unchanged.
    pub fn delta_since(&self, prefix: &MetricRegistry) -> MetricRegistry {
        let mut out = MetricRegistry::new();
        for (name, value) in &self.values {
            let delta = match (value, prefix.values.get(name)) {
                (MetricValue::Counter(v), Some(MetricValue::Counter(p))) => {
                    MetricValue::Counter(v.saturating_sub(*p))
                }
                (v, _) => *v,
            };
            out.values.insert(name.clone(), delta);
        }
        for (name, summary) in &self.summaries {
            let delta = match prefix.summaries.get(name) {
                Some(p) => summary.unmerge(p),
                None => summary.clone(),
            };
            out.summaries.insert(name.clone(), delta);
        }
        for (name, hist) in &self.histograms {
            let delta = match prefix.histograms.get(name) {
                Some(p) => hist.delta_since(p),
                None => hist.clone(),
            };
            out.histograms.insert(name.clone(), delta);
        }
        out
    }

    /// Pulls every metric out of `source`.
    pub fn record<S: MetricSource + ?Sized>(&mut self, source: &S) {
        source.record_metrics(self);
    }

    /// Snapshots the registry as a `metric,kind,value` CSV table. Each
    /// summary expands to `.count` / `.mean` / `.min` / `.max` rows, each
    /// histogram to `.count` / `.p50` / `.p90` / `.p99` / `.p999` rows.
    pub fn to_csv(&self) -> CsvLog {
        let mut log = CsvLog::new(&["metric", "kind", "value"]);
        for (name, value) in &self.values {
            let (kind, cell) = match value {
                MetricValue::Counter(v) => ("counter", CsvCell::from(*v)),
                MetricValue::Gauge(v) => ("gauge", CsvCell::Float(*v)),
            };
            log.push_row(vec![CsvCell::from(name.as_str()), CsvCell::from(kind), cell]);
        }
        for (name, summary) in &self.summaries {
            let rows: [(&str, CsvCell); 4] = [
                ("count", CsvCell::from(summary.count())),
                ("mean", CsvCell::Float(summary.mean())),
                ("min", CsvCell::Float(summary.min().unwrap_or(f64::NAN))),
                ("max", CsvCell::Float(summary.max().unwrap_or(f64::NAN))),
            ];
            for (stat, cell) in rows {
                log.push_row(vec![
                    CsvCell::Str(format!("{name}.{stat}")),
                    CsvCell::from("summary"),
                    cell,
                ]);
            }
        }
        for (name, hist) in &self.histograms {
            let rows: [(&str, CsvCell); 5] = [
                ("count", CsvCell::from(hist.count())),
                ("p50", CsvCell::Float(hist.p50().unwrap_or(f64::NAN))),
                ("p90", CsvCell::Float(hist.p90().unwrap_or(f64::NAN))),
                ("p99", CsvCell::Float(hist.p99().unwrap_or(f64::NAN))),
                ("p999", CsvCell::Float(hist.p999().unwrap_or(f64::NAN))),
            ];
            for (stat, cell) in rows {
                log.push_row(vec![
                    CsvCell::Str(format!("{name}.{stat}")),
                    CsvCell::from("histogram"),
                    cell,
                ]);
            }
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeStats {
        hits: u64,
        ratio: f64,
    }

    impl MetricSource for FakeStats {
        fn record_metrics(&self, registry: &mut MetricRegistry) {
            registry.set_counter("fake.hits", self.hits);
            registry.gauge("fake.ratio", self.ratio);
        }
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricRegistry::new();
        reg.counter("a", 2);
        reg.counter("a", 3);
        reg.gauge("g", 1.0);
        reg.gauge("g", 2.5);
        assert_eq!(reg.counter_value("a"), Some(5));
        assert_eq!(reg.gauge_value("g"), Some(2.5));
        assert_eq!(reg.counter_value("g"), None);
        assert_eq!(reg.get("missing"), None);
    }

    #[test]
    fn sources_record_through_the_trait() {
        let mut reg = MetricRegistry::new();
        reg.record(&FakeStats {
            hits: 41,
            ratio: 0.9,
        });
        assert_eq!(reg.counter_value("fake.hits"), Some(41));
        assert_eq!(reg.gauge_value("fake.ratio"), Some(0.9));
    }

    #[test]
    fn csv_snapshot_is_sorted_and_typed() {
        let mut reg = MetricRegistry::new();
        reg.gauge("z.last", 0.5);
        reg.set_counter("a.first", 7);
        reg.observe("lat", 10.0);
        reg.observe("lat", 30.0);
        let csv = reg.to_csv();
        let text = csv.to_csv_string();
        assert_eq!(
            text,
            "metric,kind,value\n\
             a.first,counter,7\n\
             z.last,gauge,0.5\n\
             lat.count,summary,2\n\
             lat.mean,summary,20\n\
             lat.min,summary,10\n\
             lat.max,summary,30\n"
        );
    }

    #[test]
    fn histogram_rows_follow_summaries_in_csv() {
        let mut reg = MetricRegistry::new();
        reg.observe("lat", 10.0);
        for _ in 0..10 {
            reg.observe_hist("wall", 64.0);
        }
        let text = reg.to_csv().to_csv_string();
        assert_eq!(
            text,
            "metric,kind,value\n\
             lat.count,summary,1\n\
             lat.mean,summary,10\n\
             lat.min,summary,10\n\
             lat.max,summary,10\n\
             wall.count,histogram,10\n\
             wall.p50,histogram,64\n\
             wall.p90,histogram,64\n\
             wall.p99,histogram,64\n\
             wall.p999,histogram,64\n"
        );
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert_eq!(reg.histogram("wall").unwrap().count(), 10);
        assert_eq!(reg.histogram("missing"), None);
    }

    #[test]
    fn merge_combines_every_metric_kind() {
        let mut a = MetricRegistry::new();
        a.counter("hits", 2);
        a.gauge("ratio", 0.25);
        a.observe("lat", 10.0);
        a.observe_hist("wall", 4.0);
        let mut b = MetricRegistry::new();
        b.counter("hits", 3);
        b.gauge("ratio", 0.75);
        b.observe("lat", 30.0);
        b.observe_hist("wall", 16.0);
        b.counter("only_b", 1);
        a.merge(&b);
        assert_eq!(a.counter_value("hits"), Some(5));
        assert_eq!(a.gauge_value("ratio"), Some(0.75));
        assert_eq!(a.summary("lat").unwrap().count(), 2);
        assert!((a.summary("lat").unwrap().mean() - 20.0).abs() < 1e-12);
        assert_eq!(a.histogram("wall").unwrap().count(), 2);
        assert_eq!(a.counter_value("only_b"), Some(1));
    }

    #[test]
    fn delta_since_strips_a_shared_prefix() {
        let mut prefix = MetricRegistry::new();
        prefix.counter("hits", 10);
        prefix.observe("lat", 5.0);
        prefix.observe_hist("wall", 8.0);

        // Two "branches" each extend a copy of the prefix.
        let mut branch1 = prefix.clone();
        branch1.counter("hits", 4);
        branch1.observe("lat", 9.0);
        branch1.observe_hist("wall", 32.0);
        let mut branch2 = prefix.clone();
        branch2.counter("hits", 6);
        branch2.observe_hist("wall", 64.0);

        // prefix + Σ deltas counts the prefix exactly once.
        let mut merged = prefix.clone();
        merged.merge(&branch1.delta_since(&prefix));
        merged.merge(&branch2.delta_since(&prefix));
        assert_eq!(merged.counter_value("hits"), Some(20));
        assert_eq!(merged.summary("lat").unwrap().count(), 2);
        assert_eq!(merged.histogram("wall").unwrap().count(), 3);

        // Naive merging would triple-count the prefix (10 + 14 + 16).
        let mut naive = prefix.clone();
        naive.merge(&branch1);
        naive.merge(&branch2);
        assert_eq!(naive.counter_value("hits"), Some(40));
    }
}
