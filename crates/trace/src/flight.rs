//! The flight recorder: a bounded postmortem ring buffer.
//!
//! An aircraft flight recorder is cheap, always on, and only read after
//! something went wrong. This is the co-simulation's equivalent: a
//! fixed-capacity ring of per-quantum [`FlightSample`]s (metric deltas —
//! collisions, deadline misses, queue depth, wall-time split) plus, when
//! tracing is enabled, a tail of recent trace events. On a trigger — a
//! collision, a deadline miss, a latched transport fault, or a panic —
//! it dumps a **self-contained postmortem JSON** with the ring, the
//! recent events, and a deadline-miss **attribution** that walks the
//! recorded spans to name the dominant time sink (compute vs
//! `stall:rx-empty` vs bridge traffic).
//!
//! The recorder is telemetry: fixed memory, never part of a mission
//! snapshot, never an input to the determinism digest (DESIGN.md §4f).

use crate::chrome::{escape_into, write_f64};
use crate::event::{EventKind, TraceEvent};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Schema tag stamped into every postmortem dump.
pub const POSTMORTEM_SCHEMA: &str = "rose-postmortem-v1";

/// Default ring capacity (samples retained before the trigger).
pub const DEFAULT_CAPACITY: usize = 256;

/// How many recent trace events are retained for attribution.
const EVENT_TAIL: usize = 64;

/// One per-quantum observation: absolute counters the recorder diffs to
/// detect rising edges, plus the quantum's wall-time split.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlightSample {
    /// Synchronization periods executed so far.
    pub sync: u64,
    /// Simulated mission time, seconds.
    pub sim_time_s: f64,
    /// Cumulative collision count.
    pub collisions: u64,
    /// Cumulative control-deadline misses.
    pub deadline_misses: u64,
    /// Bridge receive-queue depth at the boundary.
    pub queue_depth: u64,
    /// Host wall time of the environment half of this quantum, µs.
    pub env_wall_us: f64,
    /// Host wall time of the RTL half of this quantum, µs.
    pub rtl_wall_us: f64,
    /// True once a transport fault has latched.
    pub fault: bool,
    /// Cumulative transport-recovery retries (grant re-attempts absorbed
    /// by the synchronizer's recovery policy).
    pub recovery_retries: u64,
    /// Host wall time spent in fault recovery this quantum, µs.
    pub recovery_us: f64,
}

/// A per-trigger span-time attribution: where simulated time went in the
/// recent event window, by cost category.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// The category with the largest share, or `"unknown"` when the
    /// window holds no attributable spans (e.g. tracing disabled).
    pub dominant: &'static str,
    /// Simulated-µs totals per category.
    pub breakdown_us: BTreeMap<&'static str, f64>,
}

/// Buckets a span name into an attribution category, or `None` for
/// enclosing spans that would double-count their contents.
fn categorize(name: &str) -> Option<&'static str> {
    if name.starts_with("kernel:") || name == "gemmini-tile" {
        Some("compute")
    } else if name == "stall:rx-empty" {
        Some("stall:rx-empty")
    } else if name.starts_with("mmio-") || name == "bridge-packet" {
        Some("bridge")
    } else if name == "sleep" {
        Some("sleep")
    } else {
        // Enclosing spans (sync-quantum / sync-grant / soc-grant) would
        // double-count their contents; unknown names stay unattributed.
        None
    }
}

/// Attributes the `Complete`-span time in `events` across categories.
pub fn attribute(events: &[TraceEvent]) -> Attribution {
    let mut breakdown_us: BTreeMap<&'static str, f64> = BTreeMap::new();
    for event in events {
        if let EventKind::Complete { dur_us } = event.kind {
            if let Some(cat) = categorize(event.name) {
                *breakdown_us.entry(cat).or_insert(0.0) += dur_us;
            }
        }
    }
    let dominant = breakdown_us
        .iter()
        // BTreeMap order makes the max deterministic under ties.
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(cat, _)| *cat)
        .unwrap_or("unknown");
    Attribution {
        dominant,
        breakdown_us,
    }
}

/// The bounded always-on recorder; see the [module docs](self).
///
/// If the owning thread panics while a dump path is configured (see
/// [`set_panic_dump_path`](FlightRecorder::set_panic_dump_path)), the
/// recorder's `Drop` writes a `"panic"`-reason postmortem there, so even
/// an aborting run leaves evidence behind.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: VecDeque<FlightSample>,
    capacity: usize,
    last: Option<FlightSample>,
    recent_events: Vec<TraceEvent>,
    panic_dump_path: Option<PathBuf>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` samples (at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            last: None,
            recent_events: Vec::new(),
            panic_dump_path: None,
        }
    }

    /// Arms the panic dump: on a panic unwinding through the recorder's
    /// owner, a `"panic"` postmortem is written to `path`.
    pub fn set_panic_dump_path(&mut self, path: impl Into<PathBuf>) {
        self.panic_dump_path = Some(path.into());
    }

    /// Samples currently retained.
    pub fn occupancy(&self) -> usize {
        self.ring.len()
    }

    /// Maximum samples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &FlightSample> {
        self.ring.iter()
    }

    /// Records one quantum's sample plus the recent trace-event tail, and
    /// returns a postmortem JSON if the sample crossed a trigger: a
    /// collision-count rise, a deadline-miss rise, or a transport fault
    /// latching. Multiple simultaneous triggers produce one postmortem
    /// whose `detail` lists them all.
    pub fn observe(&mut self, sample: FlightSample, recent: &[TraceEvent]) -> Option<String> {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(sample);
        let tail_start = recent.len().saturating_sub(EVENT_TAIL);
        self.recent_events.clear();
        self.recent_events.extend_from_slice(&recent[tail_start..]);

        let prev = self.last.replace(sample).unwrap_or_default();
        let mut triggers: Vec<&'static str> = Vec::new();
        if sample.collisions > prev.collisions {
            triggers.push("collision");
        }
        if sample.deadline_misses > prev.deadline_misses {
            triggers.push("deadline-miss");
        }
        if sample.fault && !prev.fault {
            triggers.push("transport-fault");
        }
        if triggers.is_empty() {
            return None;
        }
        let detail = triggers.join(", ");
        Some(self.postmortem(triggers[0], &detail))
    }

    /// Renders a self-contained postmortem JSON from the current ring and
    /// recent-event tail. `reason` is the primary trigger; `detail` is
    /// free-form context (all simultaneous triggers, a fault message, …).
    pub fn postmortem(&self, reason: &str, detail: &str) -> String {
        let at = self.ring.back().copied().unwrap_or_default();
        let attribution = attribute(&self.recent_events);
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"");
        escape_into(&mut out, POSTMORTEM_SCHEMA);
        out.push_str("\",\"reason\":\"");
        escape_into(&mut out, reason);
        out.push_str("\",\"detail\":\"");
        escape_into(&mut out, detail);
        let _ = write!(out, "\",\"sync\":{},\"sim_time_s\":", at.sync);
        write_f64(&mut out, at.sim_time_s);
        out.push_str(",\"attribution\":{\"dominant\":\"");
        escape_into(&mut out, attribution.dominant);
        out.push_str("\",\"breakdown_us\":{");
        for (i, (cat, us)) in attribution.breakdown_us.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, cat);
            out.push_str("\":");
            write_f64(&mut out, *us);
        }
        out.push_str("}},\"ring\":[");
        for (i, s) in self.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"sync\":{},\"collisions\":{},\"deadline_misses\":{},\"queue_depth\":{},\"fault\":{},\"recovery_retries\":{},",
                s.sync, s.collisions, s.deadline_misses, s.queue_depth, s.fault, s.recovery_retries
            );
            out.push_str("\"sim_time_s\":");
            write_f64(&mut out, s.sim_time_s);
            out.push_str(",\"env_wall_us\":");
            write_f64(&mut out, s.env_wall_us);
            out.push_str(",\"rtl_wall_us\":");
            write_f64(&mut out, s.rtl_wall_us);
            out.push_str(",\"recovery_us\":");
            write_f64(&mut out, s.recovery_us);
            out.push('}');
        }
        out.push_str("],\"recent_events\":[");
        for (i, e) in self.recent_events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"track\":\"");
            escape_into(&mut out, e.track.name());
            out.push_str("\",\"name\":\"");
            escape_into(&mut out, e.name);
            out.push_str("\",\"ts_us\":");
            write_f64(&mut out, e.ts_us);
            match e.kind {
                EventKind::Complete { dur_us } => {
                    out.push_str(",\"kind\":\"complete\",\"dur_us\":");
                    write_f64(&mut out, dur_us);
                }
                EventKind::Begin => out.push_str(",\"kind\":\"begin\""),
                EventKind::End => out.push_str(",\"kind\":\"end\""),
                EventKind::Instant => out.push_str(",\"kind\":\"instant\""),
                EventKind::Counter { value } => {
                    out.push_str(",\"kind\":\"counter\",\"value\":");
                    write_f64(&mut out, value);
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        if let Some(path) = self.panic_dump_path.take() {
            // Best effort: a failed dump must not double-panic.
            let dump = self.postmortem("panic", "panic unwound through the mission runner");
            let _ = std::fs::write(path, dump);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Track;
    use crate::json;

    fn sample(sync: u64) -> FlightSample {
        FlightSample {
            sync,
            sim_time_s: sync as f64 / 60.0,
            ..FlightSample::default()
        }
    }

    fn span(name: &'static str, dur_us: f64) -> TraceEvent {
        TraceEvent {
            track: Track::SocCpu,
            name,
            ts_us: 0.0,
            kind: EventKind::Complete { dur_us },
            args: Vec::new(),
        }
    }

    #[test]
    fn ring_is_bounded_and_oldest_first() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..10 {
            assert_eq!(fr.observe(sample(i), &[]), None);
        }
        assert_eq!(fr.occupancy(), 4);
        assert_eq!(fr.capacity(), 4);
        let syncs: Vec<u64> = fr.samples().map(|s| s.sync).collect();
        assert_eq!(syncs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn rising_edges_trigger_once() {
        let mut fr = FlightRecorder::new(8);
        let mut s = sample(0);
        assert!(fr.observe(s, &[]).is_none());
        s.sync = 1;
        s.collisions = 1;
        let pm = fr.observe(s, &[]).expect("collision must trigger");
        let parsed = json::parse(&pm).expect("postmortem is valid JSON");
        assert_eq!(
            parsed.get("reason").and_then(|r| r.as_str()),
            Some("collision")
        );
        // Same count again: no re-trigger.
        s.sync = 2;
        assert!(fr.observe(s, &[]).is_none());
    }

    #[test]
    fn simultaneous_triggers_merge_into_detail() {
        let mut fr = FlightRecorder::new(8);
        fr.observe(sample(0), &[]);
        let s = FlightSample {
            sync: 1,
            collisions: 1,
            deadline_misses: 2,
            fault: true,
            ..sample(1)
        };
        let pm = fr.observe(s, &[]).expect("triggers");
        let parsed = json::parse(&pm).unwrap();
        assert_eq!(
            parsed.get("detail").and_then(|d| d.as_str()),
            Some("collision, deadline-miss, transport-fault")
        );
        // fault already latched: no new trigger on the next sample.
        let s2 = FlightSample { sync: 2, ..s };
        assert!(fr.observe(s2, &[]).is_none());
    }

    #[test]
    fn attribution_names_the_dominant_category() {
        let events = vec![
            span("kernel:matmul", 100.0),
            span("stall:rx-empty", 900.0),
            span("mmio-send", 50.0),
            span("sync-quantum", 5000.0), // enclosing: excluded
        ];
        let a = attribute(&events);
        assert_eq!(a.dominant, "stall:rx-empty");
        assert_eq!(a.breakdown_us["compute"], 100.0);
        assert_eq!(a.breakdown_us["bridge"], 50.0);
        assert!(!a.breakdown_us.contains_key("sync-quantum"));
    }

    #[test]
    fn attribution_without_spans_is_unknown() {
        assert_eq!(attribute(&[]).dominant, "unknown");
    }

    #[test]
    fn postmortem_embeds_ring_events_and_attribution() {
        let mut fr = FlightRecorder::new(8);
        let events = vec![span("kernel:conv", 300.0), span("sleep", 10.0)];
        fr.observe(sample(0), &events);
        let mut s = sample(1);
        s.deadline_misses = 1;
        let pm = fr.observe(s, &events).expect("miss triggers");
        let parsed = json::parse(&pm).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some(POSTMORTEM_SCHEMA)
        );
        assert_eq!(
            parsed.get("reason").and_then(|v| v.as_str()),
            Some("deadline-miss")
        );
        let ring = parsed.get("ring").and_then(|r| r.as_array()).unwrap();
        assert_eq!(ring.len(), 2);
        assert!(
            ring[0].get("recovery_retries").is_some() && ring[0].get("recovery_us").is_some(),
            "ring entries carry the recovery split"
        );
        let recent = parsed
            .get("recent_events")
            .and_then(|r| r.as_array())
            .unwrap();
        assert_eq!(recent.len(), 2);
        assert_eq!(
            parsed
                .get("attribution")
                .and_then(|a| a.get("dominant"))
                .and_then(|d| d.as_str()),
            Some("compute")
        );
    }

    #[test]
    fn event_tail_is_capped() {
        let mut fr = FlightRecorder::new(2);
        let events: Vec<TraceEvent> = (0..200).map(|_| span("kernel:fill", 1.0)).collect();
        let mut s = sample(1);
        s.collisions = 1;
        let pm = fr.observe(s, &events).expect("trigger");
        let parsed = json::parse(&pm).unwrap();
        let recent = parsed
            .get("recent_events")
            .and_then(|r| r.as_array())
            .unwrap();
        assert_eq!(recent.len(), EVENT_TAIL);
    }

    #[test]
    fn panic_dump_writes_a_postmortem() {
        let path = std::env::temp_dir().join("rose-flight-panic-test.json");
        let _ = std::fs::remove_file(&path);
        let path_clone = path.clone();
        let result = std::panic::catch_unwind(move || {
            let mut fr = FlightRecorder::new(4);
            fr.set_panic_dump_path(&path_clone);
            fr.observe(sample(0), &[]);
            panic!("injected");
        });
        assert!(result.is_err());
        let dump = std::fs::read_to_string(&path).expect("panic postmortem written");
        let parsed = json::parse(&dump).expect("valid JSON");
        assert_eq!(parsed.get("reason").and_then(|r| r.as_str()), Some("panic"));
        let _ = std::fs::remove_file(&path);
    }
}
