//! Trace events and the fixed track layout.
//!
//! Tracks mirror the co-simulation's components: each maps to one Chrome
//! trace-event thread inside a single `rose-cosim` process, so Perfetto
//! renders env, synchronizer, bridge, and per-SoC-unit activity as
//! parallel swimlanes sharing the simulated-time axis.

use rose_sim_core::snap::{SnapError, SnapReader, SnapWriter};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Interns a string, returning a `'static` reference.
///
/// Event names and argument keys are `&'static str` so recording never
/// allocates; restoring a snapshot has to reconstruct those references
/// from serialized bytes. Interning leaks each *distinct* string once —
/// trace vocabularies are small and fixed (a few dozen literals across
/// the stack), so the leak is bounded and deduplicated across restores.
pub fn intern(s: &str) -> &'static str {
    static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    // rose-lint: allow(PANIC002, lock poisoning implies a prior panic; propagating adds no new failure)
    let mut set = INTERNED.lock().expect("intern table poisoned");
    if let Some(&existing) = set.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// A display track (one Perfetto swimlane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// Environment simulator frame steps and collision events.
    Env,
    /// Synchronizer quantum boundaries and grants.
    Sync,
    /// Bridge packet crossings and queue-depth counters.
    Bridge,
    /// SoC CPU activity: kernels, MMIO, stalls, sleeps.
    SocCpu,
    /// Gemmini accelerator tile executions.
    SocAccel,
    /// Memory-hierarchy counters (cache misses, idle cycles).
    SocMem,
}

impl Track {
    /// Every track, in display order.
    pub const ALL: [Track; 6] = [
        Track::Env,
        Track::Sync,
        Track::Bridge,
        Track::SocCpu,
        Track::SocAccel,
        Track::SocMem,
    ];

    /// The track's display name (the Perfetto thread name).
    pub fn name(self) -> &'static str {
        match self {
            Track::Env => "env",
            Track::Sync => "sync",
            Track::Bridge => "bridge",
            Track::SocCpu => "soc.cpu",
            Track::SocAccel => "soc.gemmini",
            Track::SocMem => "soc.mem",
        }
    }

    /// The trace-event thread id (stable, also the sort index).
    pub fn tid(self) -> u32 {
        match self {
            Track::Env => 1,
            Track::Sync => 2,
            Track::Bridge => 3,
            Track::SocCpu => 4,
            Track::SocAccel => 5,
            Track::SocMem => 6,
        }
    }

    /// The track with the given [`Track::tid`], if any (snapshot decode).
    pub fn from_tid(tid: u32) -> Option<Track> {
        Track::ALL.iter().copied().find(|t| t.tid() == tid)
    }
}

/// An event argument value (rendered into the `args` object).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// An unsigned count.
    U64(u64),
    /// A real value.
    F64(f64),
    /// A static label (e.g. a direction tag).
    Str(&'static str),
}

/// The shape of a trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A span with a duration (`ph: "X"`).
    Complete {
        /// Span length in simulated microseconds.
        dur_us: f64,
    },
    /// The opening edge of a paired span (`ph: "B"`). Every `Begin` must
    /// be closed by an [`EventKind::End`] of the same name on the same
    /// track — the invariant `TraceLog::unpaired_spans` checks and the
    /// TRACE001 lint enforces at call sites.
    Begin,
    /// The closing edge of a paired span (`ph: "E"`).
    End,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`).
    Counter {
        /// The counter's value at this timestamp.
        value: f64,
    },
}

/// One recorded trace event, timestamped in simulated microseconds.
///
/// Names are static so recording never allocates for the common case; the
/// only allocation is the (usually tiny) argument vector.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Display track.
    pub track: Track,
    /// Event name (Perfetto slice title).
    pub name: &'static str,
    /// Start timestamp in simulated microseconds.
    pub ts_us: f64,
    /// Span / instant / counter.
    pub kind: EventKind,
    /// Key-value details shown in the Perfetto side panel.
    pub args: Vec<(&'static str, ArgValue)>,
}

const KIND_COMPLETE: u8 = 0;
const KIND_BEGIN: u8 = 1;
const KIND_END: u8 = 2;
const KIND_INSTANT: u8 = 3;
const KIND_COUNTER: u8 = 4;

const ARG_U64: u8 = 0;
const ARG_F64: u8 = 1;
const ARG_STR: u8 = 2;

impl TraceEvent {
    /// Serializes the event (snapshot prefix-trace support).
    pub fn save_state(&self, w: &mut SnapWriter) {
        let TraceEvent {
            track,
            name,
            ts_us,
            kind,
            args,
        } = self;
        w.u32(track.tid());
        w.str(name);
        w.f64(*ts_us);
        match kind {
            EventKind::Complete { dur_us } => {
                w.u8(KIND_COMPLETE);
                w.f64(*dur_us);
            }
            EventKind::Begin => w.u8(KIND_BEGIN),
            EventKind::End => w.u8(KIND_END),
            EventKind::Instant => w.u8(KIND_INSTANT),
            EventKind::Counter { value } => {
                w.u8(KIND_COUNTER);
                w.f64(*value);
            }
        }
        w.usize(args.len());
        for (key, value) in args {
            w.str(key);
            match value {
                ArgValue::U64(v) => {
                    w.u8(ARG_U64);
                    w.u64(*v);
                }
                ArgValue::F64(v) => {
                    w.u8(ARG_F64);
                    w.f64(*v);
                }
                ArgValue::Str(s) => {
                    w.u8(ARG_STR);
                    w.str(s);
                }
            }
        }
    }

    /// Deserializes one event, interning names and string values.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on malformed input (unknown track tid or
    /// kind/arg tags included).
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<TraceEvent, SnapError> {
        let tid = r.u32()?;
        let track = Track::from_tid(tid).ok_or(SnapError::BadTag {
            context: "trace event track",
            tag: tid as u8,
        })?;
        let name = intern(&r.string()?);
        let ts_us = r.f64()?;
        let kind = match r.u8()? {
            KIND_COMPLETE => EventKind::Complete { dur_us: r.f64()? },
            KIND_BEGIN => EventKind::Begin,
            KIND_END => EventKind::End,
            KIND_INSTANT => EventKind::Instant,
            KIND_COUNTER => EventKind::Counter { value: r.f64()? },
            tag => {
                return Err(SnapError::BadTag {
                    context: "trace event kind",
                    tag,
                })
            }
        };
        let count = r.usize()?;
        let mut args = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            let key = intern(&r.string()?);
            let value = match r.u8()? {
                ARG_U64 => ArgValue::U64(r.u64()?),
                ARG_F64 => ArgValue::F64(r.f64()?),
                ARG_STR => ArgValue::Str(intern(&r.string()?)),
                tag => {
                    return Err(SnapError::BadTag {
                        context: "trace arg value",
                        tag,
                    })
                }
            };
            args.push((key, value));
        }
        Ok(TraceEvent {
            track,
            name,
            ts_us,
            kind,
            args,
        })
    }
}
