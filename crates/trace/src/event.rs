//! Trace events and the fixed track layout.
//!
//! Tracks mirror the co-simulation's components: each maps to one Chrome
//! trace-event thread inside a single `rose-cosim` process, so Perfetto
//! renders env, synchronizer, bridge, and per-SoC-unit activity as
//! parallel swimlanes sharing the simulated-time axis.

/// A display track (one Perfetto swimlane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// Environment simulator frame steps and collision events.
    Env,
    /// Synchronizer quantum boundaries and grants.
    Sync,
    /// Bridge packet crossings and queue-depth counters.
    Bridge,
    /// SoC CPU activity: kernels, MMIO, stalls, sleeps.
    SocCpu,
    /// Gemmini accelerator tile executions.
    SocAccel,
    /// Memory-hierarchy counters (cache misses, idle cycles).
    SocMem,
}

impl Track {
    /// Every track, in display order.
    pub const ALL: [Track; 6] = [
        Track::Env,
        Track::Sync,
        Track::Bridge,
        Track::SocCpu,
        Track::SocAccel,
        Track::SocMem,
    ];

    /// The track's display name (the Perfetto thread name).
    pub fn name(self) -> &'static str {
        match self {
            Track::Env => "env",
            Track::Sync => "sync",
            Track::Bridge => "bridge",
            Track::SocCpu => "soc.cpu",
            Track::SocAccel => "soc.gemmini",
            Track::SocMem => "soc.mem",
        }
    }

    /// The trace-event thread id (stable, also the sort index).
    pub fn tid(self) -> u32 {
        match self {
            Track::Env => 1,
            Track::Sync => 2,
            Track::Bridge => 3,
            Track::SocCpu => 4,
            Track::SocAccel => 5,
            Track::SocMem => 6,
        }
    }
}

/// An event argument value (rendered into the `args` object).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// An unsigned count.
    U64(u64),
    /// A real value.
    F64(f64),
    /// A static label (e.g. a direction tag).
    Str(&'static str),
}

/// The shape of a trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A span with a duration (`ph: "X"`).
    Complete {
        /// Span length in simulated microseconds.
        dur_us: f64,
    },
    /// The opening edge of a paired span (`ph: "B"`). Every `Begin` must
    /// be closed by an [`EventKind::End`] of the same name on the same
    /// track — the invariant `TraceLog::unpaired_spans` checks and the
    /// TRACE001 lint enforces at call sites.
    Begin,
    /// The closing edge of a paired span (`ph: "E"`).
    End,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`).
    Counter {
        /// The counter's value at this timestamp.
        value: f64,
    },
}

/// One recorded trace event, timestamped in simulated microseconds.
///
/// Names are static so recording never allocates for the common case; the
/// only allocation is the (usually tiny) argument vector.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Display track.
    pub track: Track,
    /// Event name (Perfetto slice title).
    pub name: &'static str,
    /// Start timestamp in simulated microseconds.
    pub ts_us: f64,
    /// Span / instant / counter.
    pub kind: EventKind,
    /// Key-value details shown in the Perfetto side panel.
    pub args: Vec<(&'static str, ArgValue)>,
}
