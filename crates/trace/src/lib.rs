//! Simulated-time tracing and metrics for the RoSÉ co-simulation.
//!
//! The paper's evaluation is built from *visibility* into the HW/SW stack:
//! latency breakdowns, queue behaviour, and utilization curves recovered
//! from FireSim counters and synchronizer logs (§5–6). This crate is the
//! reproduction's equivalent instrumentation spine:
//!
//! - [`tracer::Tracer`] — a zero-cost-when-disabled event recorder keyed to
//!   **simulated time** (SoC cycles / environment frames, mapped onto one
//!   shared microsecond axis by [`clock::TraceClock`]), with an owned
//!   per-component buffer so the hot loop never takes a lock.
//! - [`chrome::TraceLog`] — merged events exported as Chrome
//!   trace-event JSON, loadable in Perfetto (`ui.perfetto.dev`) or
//!   `chrome://tracing`, with env / sync / bridge / SoC-unit activity on
//!   parallel tracks.
//! - [`metrics::MetricRegistry`] — a named counter/gauge/summary/histogram
//!   registry unifying the scattered per-subsystem stats structs behind one
//!   interface with CSV snapshot export; subsystems opt in by implementing
//!   [`metrics::MetricSource`].
//! - [`hist::LogHistogram`] — a fixed-memory log-bucketed histogram with
//!   p50/p90/p99/p99.9 estimation, mergeable across forked branches.
//! - [`profiler::Profiler`] — host wall-clock self-attribution per
//!   co-simulation phase, the one sanctioned wall-time API (PROF001).
//! - [`flight::FlightRecorder`] — an always-on bounded postmortem ring
//!   that dumps self-contained JSON on collision / deadline miss /
//!   transport fault / panic, with span-walk attribution.
//! - [`json`] — a dependency-free JSON parser used to validate emitted
//!   traces in tests and CI (the workspace builds offline; serde here is a
//!   no-op stub).
//!
//! Only `rose-sim-core` sits below this crate, so every simulator crate
//! (envsim, socsim, rose-bridge, rose) can depend on it without cycles.

#![deny(missing_docs)]

pub mod chrome;
pub mod clock;
pub mod event;
pub mod flight;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profiler;
pub mod tracer;

pub use chrome::TraceLog;
pub use clock::TraceClock;
pub use event::{intern, ArgValue, EventKind, Track, TraceEvent};
pub use flight::{FlightRecorder, FlightSample};
pub use hist::LogHistogram;
pub use metrics::{MetricRegistry, MetricSource, MetricValue};
pub use profiler::{Phase, Profiler, Stopwatch};
pub use tracer::Tracer;
