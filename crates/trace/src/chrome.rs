//! Merged trace storage and the Chrome trace-event exporter.
//!
//! The export follows the Trace Event Format's JSON-object form:
//! `{"displayTimeUnit": ..., "traceEvents": [...]}` with `"X"` (complete),
//! `"i"` (instant), `"C"` (counter), and `"M"` (metadata) phases. One
//! `pid` represents the co-simulation; each [`Track`] is a named thread,
//! so Perfetto (`ui.perfetto.dev`) and `chrome://tracing` render the
//! components as parallel swimlanes over simulated time.

use crate::event::{ArgValue, EventKind, Track, TraceEvent};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// An ordered collection of trace events from every component.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Appends a component's drained events.
    pub fn extend(&mut self, events: Vec<TraceEvent>) {
        self.events.extend(events);
    }

    /// All events, in current order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sorts events by timestamp (then track) so merged per-component
    /// buffers interleave chronologically.
    pub fn sort_by_time(&mut self) {
        self.events.sort_by(|a, b| {
            a.ts_us
                .total_cmp(&b.ts_us)
                .then_with(|| a.track.tid().cmp(&b.track.tid()))
        });
    }

    /// The distinct track names present, in display order.
    pub fn track_names(&self) -> Vec<&'static str> {
        Track::ALL
            .iter()
            .filter(|t| self.events.iter().any(|e| e.track == **t))
            .map(|t| t.name())
            .collect()
    }

    /// How many events carry `name`.
    pub fn count_named(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }

    /// Validates `Begin`/`End` span pairing per track, in the log's
    /// current order (call after [`sort_by_time`](TraceLog::sort_by_time)
    /// for merged logs).
    ///
    /// Chrome trace-event semantics: an `E` closes the most recently
    /// opened `B` on its track, so the check runs one stack per track —
    /// an `End` whose name differs from the innermost open `Begin`, an
    /// `End` with no open span, or a `Begin` still open when the log ends
    /// are all reported. Returns one description per defect; an empty
    /// vector means every span is balanced.
    pub fn unpaired_spans(&self) -> Vec<String> {
        let mut defects = Vec::new();
        let mut open: Vec<Vec<(&'static str, f64)>> =
            Track::ALL.iter().map(|_| Vec::new()).collect();
        let slot = |t: Track| Track::ALL.iter().position(|x| *x == t).unwrap_or(0);
        for event in &self.events {
            match event.kind {
                EventKind::Begin => open[slot(event.track)].push((event.name, event.ts_us)),
                EventKind::End => match open[slot(event.track)].pop() {
                    Some((name, _)) if name == event.name => {}
                    Some((name, ts)) => defects.push(format!(
                        "track {}: span_end({:?}) at {} us closes span_begin({:?}) opened at {} us",
                        event.track.name(),
                        event.name,
                        event.ts_us,
                        name,
                        ts,
                    )),
                    None => defects.push(format!(
                        "track {}: span_end({:?}) at {} us without a span_begin",
                        event.track.name(),
                        event.name,
                        event.ts_us,
                    )),
                },
                _ => {}
            }
        }
        for (track, stack) in Track::ALL.iter().zip(&open) {
            for (name, ts) in stack {
                defects.push(format!(
                    "track {}: span_begin({name:?}) at {ts} us never closed",
                    track.name(),
                ));
            }
        }
        defects
    }

    /// Serializes the log as Chrome trace-event JSON.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"rose-cosim\"}}");
        for track in Track::ALL {
            let _ = write!(
                out,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}\
                 ,\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"sort_index\":{tid}}}}}",
                tid = track.tid(),
                name = track.name(),
            );
        }
        for event in &self.events {
            out.push_str(",\n{\"name\":\"");
            escape_into(&mut out, event.name);
            let _ = write!(
                out,
                "\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":",
                event.track.name(),
                event.track.tid()
            );
            write_f64(&mut out, event.ts_us);
            match event.kind {
                EventKind::Complete { dur_us } => {
                    out.push_str(",\"ph\":\"X\",\"dur\":");
                    write_f64(&mut out, dur_us);
                }
                EventKind::Begin => out.push_str(",\"ph\":\"B\""),
                EventKind::End => out.push_str(",\"ph\":\"E\""),
                EventKind::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
                EventKind::Counter { value } => {
                    out.push_str(",\"ph\":\"C\"");
                    // Counter events carry their value as the only arg.
                    out.push_str(",\"args\":{\"value\":");
                    write_f64(&mut out, value);
                    out.push_str("}}");
                    continue;
                }
            }
            if !event.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (key, value)) in event.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(&mut out, key);
                    out.push_str("\":");
                    match value {
                        ArgValue::U64(v) => {
                            let _ = write!(out, "{v}");
                        }
                        ArgValue::F64(v) => write_f64(&mut out, *v),
                        ArgValue::Str(s) => {
                            out.push('"');
                            escape_into(&mut out, s);
                            out.push('"');
                        }
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the Chrome trace-event JSON to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn write_chrome_json<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(self.to_chrome_json().as_bytes())
    }
}

/// Writes an f64 as a JSON number (non-finite values clamp to 0 — JSON has
/// no NaN/Infinity and a poisoned timestamp must not corrupt the file).
pub(crate) fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

/// Appends `s` with JSON string escaping.
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TraceClock;
    use crate::json;
    use crate::tracer::Tracer;

    fn sample_log() -> TraceLog {
        let mut t = Tracer::enabled(TraceClock::default());
        t.complete_frames(Track::Env, "env-frame", 0, 1, Vec::new());
        t.instant_cycles(
            Track::Bridge,
            "bridge-packet",
            0,
            vec![("dir", ArgValue::Str("to-env")), ("bytes", ArgValue::U64(12))],
        );
        t.counter_cycles(Track::SocMem, "l2-misses", 500, 3.0);
        t.complete_cycles(
            Track::SocAccel,
            "gemmini-tile",
            100,
            400,
            vec![("macs", ArgValue::U64(4096))],
        );
        let mut log = TraceLog::new();
        log.extend(t.take_events());
        log.sort_by_time();
        log
    }

    #[test]
    fn export_parses_as_json_with_expected_tracks() {
        let log = sample_log();
        let parsed = json::parse(&log.to_chrome_json()).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 1 process_name + 6 thread_name + 6 sort_index + 4 events.
        assert_eq!(events.len(), 17);
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        for expected in ["env", "sync", "bridge", "soc.cpu", "soc.gemmini", "soc.mem"] {
            assert!(thread_names.contains(&expected), "missing track {expected}");
        }
    }

    #[test]
    fn events_sort_chronologically() {
        let log = sample_log();
        let times: Vec<f64> = log.events().iter().map(|e| e.ts_us).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        assert_eq!(log.count_named("bridge-packet"), 1);
        assert_eq!(log.track_names(), vec!["env", "bridge", "soc.gemmini", "soc.mem"]);
    }

    /// Replays the trace shape of a mission — per-grant `soc-grant`
    /// begin/end pairs interleaved with kernel spans and counters across
    /// several quanta — and asserts every `span_begin` is closed by a
    /// matching `span_end` on its track, surviving the merge + sort.
    #[test]
    fn replayed_mission_spans_pair_per_track() {
        let clock = TraceClock::default();
        let mut soc = Tracer::enabled(clock);
        let mut env = Tracer::enabled(clock);
        let cycles_per_grant = 16_666_666u64;
        for grant in 0..5u64 {
            let start = grant * cycles_per_grant;
            let end = start + cycles_per_grant;
            soc.span_begin_cycles(
                Track::SocCpu,
                "soc-grant",
                start,
                vec![("budget", ArgValue::U64(cycles_per_grant))],
            );
            soc.complete_cycles(Track::SocCpu, "kernel:matmul", start, start + 1000, Vec::new());
            soc.counter_cycles(Track::SocMem, "l2-misses", end, grant as f64);
            soc.span_end_cycles(Track::SocCpu, "soc-grant", end);
            env.complete_frames(Track::Env, "env-frame", grant, grant + 1, Vec::new());
        }
        let mut log = TraceLog::new();
        log.extend(env.take_events());
        log.extend(soc.take_events());
        log.sort_by_time();
        assert_eq!(log.unpaired_spans(), Vec::<String>::new());
        assert_eq!(log.count_named("soc-grant"), 10); // 5 begins + 5 ends

        // The export round-trips as JSON with B/E phases present.
        let parsed = json::parse(&log.to_chrome_json()).expect("valid JSON");
        let phases: Vec<&str> = parsed
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents")
            .iter()
            .filter_map(|e| e.get("ph")?.as_str())
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "B").count(), 5);
        assert_eq!(phases.iter().filter(|p| **p == "E").count(), 5);
    }

    #[test]
    fn unpaired_spans_are_reported() {
        // A begin that never closes.
        let mut t = Tracer::enabled(TraceClock::default());
        t.span_begin_cycles(Track::Sync, "sync-quantum", 0, Vec::new());
        let mut log = TraceLog::new();
        log.extend(t.take_events());
        let defects = log.unpaired_spans();
        assert_eq!(defects.len(), 1);
        assert!(defects[0].contains("never closed"), "{defects:?}");

        // An end with no begin.
        let mut t = Tracer::enabled(TraceClock::default());
        t.span_end_cycles(Track::Sync, "sync-quantum", 10);
        let mut log = TraceLog::new();
        log.extend(t.take_events());
        let defects = log.unpaired_spans();
        assert_eq!(defects.len(), 1);
        assert!(defects[0].contains("without a span_begin"), "{defects:?}");

        // A mismatched close (wrong innermost name).
        let mut t = Tracer::enabled(TraceClock::default());
        t.span_begin_cycles(Track::SocCpu, "outer", 0, Vec::new());
        t.span_begin_cycles(Track::SocCpu, "inner", 5, Vec::new());
        t.span_end_cycles(Track::SocCpu, "outer", 10);
        t.span_end_cycles(Track::SocCpu, "inner", 20);
        let mut log = TraceLog::new();
        log.extend(t.take_events());
        assert_eq!(log.unpaired_spans().len(), 2, "both crossed edges flagged");

        // Same names on *different* tracks do not pair with each other.
        let mut t = Tracer::enabled(TraceClock::default());
        t.span_begin_cycles(Track::SocCpu, "grant", 0, Vec::new());
        t.span_end_cycles(Track::Sync, "grant", 10);
        let mut log = TraceLog::new();
        log.extend(t.take_events());
        assert_eq!(log.unpaired_spans().len(), 2);
    }

    /// Span names and string args containing quotes, backslashes, and
    /// control characters must survive export → parse byte-for-byte (the
    /// exporter JSON-escapes them; the parser unescapes them back).
    #[test]
    fn hostile_names_and_args_round_trip_through_the_parser() {
        use crate::event::intern;
        let hostile_name = intern("kernel:\"ev\\il\"\n\t\u{1}<&>");
        let hostile_arg = intern("payload \\ \"quoted\" \r\n \u{7f} λ");
        let hostile_key = intern("key\"with\\escapes");
        let mut log = TraceLog::new();
        log.extend(vec![TraceEvent {
            track: Track::SocCpu,
            name: hostile_name,
            ts_us: 10.0,
            kind: EventKind::Complete { dur_us: 5.0 },
            args: vec![(hostile_key, ArgValue::Str(hostile_arg))],
        }]);
        let text = log.to_chrome_json();
        let parsed = json::parse(&text).expect("hostile names must still be valid JSON");
        let event = parsed
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents")
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("the complete event");
        assert_eq!(event.get("name").and_then(|n| n.as_str()), Some(hostile_name));
        assert_eq!(
            event
                .get("args")
                .and_then(|a| a.get(hostile_key))
                .and_then(|v| v.as_str()),
            Some(hostile_arg),
            "arg key and string value must round-trip exactly"
        );
    }

    #[test]
    fn non_finite_values_stay_valid_json() {
        let mut log = TraceLog::new();
        log.extend(vec![TraceEvent {
            track: Track::Sync,
            name: "sync-quantum",
            ts_us: f64::NAN,
            kind: EventKind::Complete { dur_us: f64::INFINITY },
            args: vec![("x", ArgValue::F64(f64::NEG_INFINITY))],
        }]);
        json::parse(&log.to_chrome_json()).expect("non-finite values must not corrupt the JSON");
    }
}
