//! Merged trace storage and the Chrome trace-event exporter.
//!
//! The export follows the Trace Event Format's JSON-object form:
//! `{"displayTimeUnit": ..., "traceEvents": [...]}` with `"X"` (complete),
//! `"i"` (instant), `"C"` (counter), and `"M"` (metadata) phases. One
//! `pid` represents the co-simulation; each [`Track`] is a named thread,
//! so Perfetto (`ui.perfetto.dev`) and `chrome://tracing` render the
//! components as parallel swimlanes over simulated time.

use crate::event::{ArgValue, EventKind, Track, TraceEvent};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// An ordered collection of trace events from every component.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Appends a component's drained events.
    pub fn extend(&mut self, events: Vec<TraceEvent>) {
        self.events.extend(events);
    }

    /// All events, in current order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sorts events by timestamp (then track) so merged per-component
    /// buffers interleave chronologically.
    pub fn sort_by_time(&mut self) {
        self.events.sort_by(|a, b| {
            a.ts_us
                .total_cmp(&b.ts_us)
                .then_with(|| a.track.tid().cmp(&b.track.tid()))
        });
    }

    /// The distinct track names present, in display order.
    pub fn track_names(&self) -> Vec<&'static str> {
        Track::ALL
            .iter()
            .filter(|t| self.events.iter().any(|e| e.track == **t))
            .map(|t| t.name())
            .collect()
    }

    /// How many events carry `name`.
    pub fn count_named(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }

    /// Serializes the log as Chrome trace-event JSON.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"rose-cosim\"}}");
        for track in Track::ALL {
            let _ = write!(
                out,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}\
                 ,\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"sort_index\":{tid}}}}}",
                tid = track.tid(),
                name = track.name(),
            );
        }
        for event in &self.events {
            out.push_str(",\n{\"name\":\"");
            escape_into(&mut out, event.name);
            let _ = write!(
                out,
                "\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":",
                event.track.name(),
                event.track.tid()
            );
            write_f64(&mut out, event.ts_us);
            match event.kind {
                EventKind::Complete { dur_us } => {
                    out.push_str(",\"ph\":\"X\",\"dur\":");
                    write_f64(&mut out, dur_us);
                }
                EventKind::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
                EventKind::Counter { value } => {
                    out.push_str(",\"ph\":\"C\"");
                    // Counter events carry their value as the only arg.
                    out.push_str(",\"args\":{\"value\":");
                    write_f64(&mut out, value);
                    out.push_str("}}");
                    continue;
                }
            }
            if !event.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (key, value)) in event.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(&mut out, key);
                    out.push_str("\":");
                    match value {
                        ArgValue::U64(v) => {
                            let _ = write!(out, "{v}");
                        }
                        ArgValue::F64(v) => write_f64(&mut out, *v),
                        ArgValue::Str(s) => {
                            out.push('"');
                            escape_into(&mut out, s);
                            out.push('"');
                        }
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the Chrome trace-event JSON to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn write_chrome_json<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(self.to_chrome_json().as_bytes())
    }
}

/// Writes an f64 as a JSON number (non-finite values clamp to 0 — JSON has
/// no NaN/Infinity and a poisoned timestamp must not corrupt the file).
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

/// Appends `s` with JSON string escaping.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TraceClock;
    use crate::json;
    use crate::tracer::Tracer;

    fn sample_log() -> TraceLog {
        let mut t = Tracer::enabled(TraceClock::default());
        t.complete_frames(Track::Env, "env-frame", 0, 1, Vec::new());
        t.instant_cycles(
            Track::Bridge,
            "bridge-packet",
            0,
            vec![("dir", ArgValue::Str("to-env")), ("bytes", ArgValue::U64(12))],
        );
        t.counter_cycles(Track::SocMem, "l2-misses", 500, 3.0);
        t.complete_cycles(
            Track::SocAccel,
            "gemmini-tile",
            100,
            400,
            vec![("macs", ArgValue::U64(4096))],
        );
        let mut log = TraceLog::new();
        log.extend(t.take_events());
        log.sort_by_time();
        log
    }

    #[test]
    fn export_parses_as_json_with_expected_tracks() {
        let log = sample_log();
        let parsed = json::parse(&log.to_chrome_json()).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 1 process_name + 6 thread_name + 6 sort_index + 4 events.
        assert_eq!(events.len(), 17);
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        for expected in ["env", "sync", "bridge", "soc.cpu", "soc.gemmini", "soc.mem"] {
            assert!(thread_names.contains(&expected), "missing track {expected}");
        }
    }

    #[test]
    fn events_sort_chronologically() {
        let log = sample_log();
        let times: Vec<f64> = log.events().iter().map(|e| e.ts_us).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        assert_eq!(log.count_named("bridge-packet"), 1);
        assert_eq!(log.track_names(), vec!["env", "bridge", "soc.gemmini", "soc.mem"]);
    }

    #[test]
    fn non_finite_values_stay_valid_json() {
        let mut log = TraceLog::new();
        log.extend(vec![TraceEvent {
            track: Track::Sync,
            name: "sync-quantum",
            ts_us: f64::NAN,
            kind: EventKind::Complete { dur_us: f64::INFINITY },
            args: vec![("x", ArgValue::F64(f64::NEG_INFINITY))],
        }]);
        json::parse(&log.to_chrome_json()).expect("non-finite values must not corrupt the JSON");
    }
}
