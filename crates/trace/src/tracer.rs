//! The per-component event recorder.
//!
//! Every instrumented component (the synchronizer, the SoC, the UAV sim)
//! owns its own [`Tracer`]. A tracer is either **disabled** — the default,
//! a single null-pointer check on the hot path, no buffer, no allocation —
//! or **enabled**, appending to an owned, component-confined `Vec` (the
//! lock-free-per-thread buffer: no component shares its buffer, so no
//! synchronization exists to pay for). Buffers are collected and merged
//! into a [`TraceLog`](crate::chrome::TraceLog) at mission teardown.

use crate::clock::TraceClock;
use crate::event::{ArgValue, EventKind, Track, TraceEvent};
use rose_sim_core::snap::{SnapError, SnapReader, SnapWriter};

/// Buffer plus clock for one enabled tracer.
#[derive(Debug, Clone)]
struct TraceBuf {
    clock: TraceClock,
    events: Vec<TraceEvent>,
}

/// A simulated-time event recorder; see the [module docs](self).
///
/// The disabled state is the `TraceSink::Disabled` path: `Option<Box<_>>`
/// is one word, so every recording call starts with a single branch and
/// the instrumented hot loops pay nothing else when tracing is off.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Box<TraceBuf>>,
}

impl Tracer {
    /// A tracer that drops everything (the default).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A recording tracer stamping events with `clock`.
    pub fn enabled(clock: TraceClock) -> Tracer {
        Tracer {
            inner: Some(Box::new(TraceBuf {
                clock,
                events: Vec::new(),
            })),
        }
    }

    /// True when events are being recorded. Instrumentation sites should
    /// check this before building argument vectors.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |b| b.events.len())
    }

    /// True if nothing has been recorded (or the tracer is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The clock of an enabled tracer.
    pub fn clock(&self) -> Option<TraceClock> {
        self.inner.as_ref().map(|b| b.clock)
    }

    /// Drains the recorded events, leaving the tracer enabled.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        self.inner
            .as_mut()
            .map_or_else(Vec::new, |b| std::mem::take(&mut b.events))
    }

    /// The recorded events, without draining (snapshot capture).
    pub fn events(&self) -> &[TraceEvent] {
        self.inner.as_ref().map_or(&[], |b| b.events.as_slice())
    }

    /// Serializes the buffered events. A mission snapshot carries each
    /// component's trace prefix so a resumed run's merged log — and its
    /// determinism digest — matches a straight run event for event.
    pub fn save_state(&self, w: &mut SnapWriter) {
        // The clock and enabled/disabled mode are structural: both are
        // re-derived from `MissionConfig` when the tracer is rebuilt.
        let events = self.events();
        w.usize(events.len());
        for event in events {
            event.save_state(w);
        }
    }

    /// Restores buffered events into this tracer.
    ///
    /// The events are *read* unconditionally (keeping the reader aligned)
    /// but only retained if the tracer is enabled, mirroring how a
    /// disabled tracer drops events at record time.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on malformed input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let count = r.usize()?;
        match &mut self.inner {
            Some(buf) => {
                buf.events.clear();
                buf.events.reserve(count.min(1 << 20));
                for _ in 0..count {
                    buf.events.push(TraceEvent::restore_state(r)?);
                }
            }
            None => {
                for _ in 0..count {
                    TraceEvent::restore_state(r)?;
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn push(&mut self, track: Track, name: &'static str, ts_us: f64, kind: EventKind, args: Vec<(&'static str, ArgValue)>) {
        if let Some(buf) = &mut self.inner {
            buf.events.push(TraceEvent {
                track,
                name,
                ts_us,
                kind,
                args,
            });
        }
    }

    /// Records a span covering SoC cycles `[start, end)`.
    #[inline]
    pub fn complete_cycles(
        &mut self,
        track: Track,
        name: &'static str,
        start_cycle: u64,
        end_cycle: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(buf) = &self.inner {
            let ts = buf.clock.cycles_to_us(start_cycle);
            let dur = buf.clock.cycles_to_us(end_cycle) - ts;
            self.push(track, name, ts, EventKind::Complete { dur_us: dur }, args);
        }
    }

    /// Records a span covering environment frames `[start, end)`.
    #[inline]
    pub fn complete_frames(
        &mut self,
        track: Track,
        name: &'static str,
        start_frame: u64,
        end_frame: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(buf) = &self.inner {
            let ts = buf.clock.frames_to_us(start_frame);
            let dur = buf.clock.frames_to_us(end_frame) - ts;
            self.push(track, name, ts, EventKind::Complete { dur_us: dur }, args);
        }
    }

    /// Opens a paired span at SoC cycle `cycle`. Must be closed by a
    /// [`span_end_cycles`](Tracer::span_end_cycles) (or the frame-domain
    /// twin) with the same name on the same track; the TRACE001 lint
    /// checks call sites stay balanced and
    /// [`TraceLog::unpaired_spans`](crate::chrome::TraceLog::unpaired_spans)
    /// validates recorded logs.
    #[inline]
    pub fn span_begin_cycles(
        &mut self,
        track: Track,
        name: &'static str,
        cycle: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(buf) = &self.inner {
            let ts = buf.clock.cycles_to_us(cycle);
            self.push(track, name, ts, EventKind::Begin, args);
        }
    }

    /// Closes the paired span most recently opened under `name` on `track`,
    /// at SoC cycle `cycle`.
    #[inline]
    pub fn span_end_cycles(&mut self, track: Track, name: &'static str, cycle: u64) {
        if let Some(buf) = &self.inner {
            let ts = buf.clock.cycles_to_us(cycle);
            self.push(track, name, ts, EventKind::End, Vec::new());
        }
    }

    /// Opens a paired span at environment frame `frame`; see
    /// [`span_begin_cycles`](Tracer::span_begin_cycles).
    #[inline]
    pub fn span_begin_frames(
        &mut self,
        track: Track,
        name: &'static str,
        frame: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(buf) = &self.inner {
            let ts = buf.clock.frames_to_us(frame);
            self.push(track, name, ts, EventKind::Begin, args);
        }
    }

    /// Closes a paired span at environment frame `frame`; see
    /// [`span_end_cycles`](Tracer::span_end_cycles).
    #[inline]
    pub fn span_end_frames(&mut self, track: Track, name: &'static str, frame: u64) {
        if let Some(buf) = &self.inner {
            let ts = buf.clock.frames_to_us(frame);
            self.push(track, name, ts, EventKind::End, Vec::new());
        }
    }

    /// Records an instant at SoC cycle `cycle`.
    #[inline]
    pub fn instant_cycles(
        &mut self,
        track: Track,
        name: &'static str,
        cycle: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(buf) = &self.inner {
            let ts = buf.clock.cycles_to_us(cycle);
            self.push(track, name, ts, EventKind::Instant, args);
        }
    }

    /// Records an instant at environment frame `frame`.
    #[inline]
    pub fn instant_frames(
        &mut self,
        track: Track,
        name: &'static str,
        frame: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(buf) = &self.inner {
            let ts = buf.clock.frames_to_us(frame);
            self.push(track, name, ts, EventKind::Instant, args);
        }
    }

    /// Samples a counter value at SoC cycle `cycle`.
    #[inline]
    pub fn counter_cycles(&mut self, track: Track, name: &'static str, cycle: u64, value: f64) {
        if let Some(buf) = &self.inner {
            let ts = buf.clock.cycles_to_us(cycle);
            self.push(track, name, ts, EventKind::Counter { value }, Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.complete_cycles(Track::SocCpu, "kernel:matmul", 0, 100, Vec::new());
        t.instant_frames(Track::Env, "collision", 3, Vec::new());
        t.counter_cycles(Track::SocMem, "l2-misses", 5, 1.0);
        assert!(t.is_empty());
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn enabled_tracer_stamps_simulated_time() {
        let mut t = Tracer::enabled(TraceClock::default());
        t.complete_cycles(Track::SocCpu, "kernel:matmul", 1_000_000_000, 2_000_000_000, Vec::new());
        t.instant_frames(Track::Env, "collision", 60, Vec::new());
        let events = t.take_events();
        assert_eq!(events.len(), 2);
        // Cycle 1e9 at 1 GHz and frame 60 at 60 fps are both 1 s = 1e6 µs.
        assert_eq!(events[0].ts_us, 1e6);
        assert_eq!(events[0].kind, EventKind::Complete { dur_us: 1e6 });
        assert_eq!(events[1].ts_us, 1e6);
        // Draining keeps the tracer live.
        assert!(t.is_enabled());
        assert!(t.is_empty());
    }
}
