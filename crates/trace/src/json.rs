//! A minimal JSON parser for trace validation.
//!
//! The workspace builds with no registry access (serde resolves to a no-op
//! stub), so validating an exported trace — in unit tests, the bench
//! harness, and the CI smoke job — needs a real parser here. It is a
//! straightforward recursive-descent implementation of RFC 8259, built for
//! correctness on trace-sized inputs rather than speed.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (key order not preserved).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// A [`JsonError`] locating the first malformed byte.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control character in string")),
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is a &str, so
                    // the encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    // rose-lint: allow(PANIC002, bytes came from a &str; a non-empty UTF-8 suffix is valid)
                    let text = std::str::from_utf8(rest).expect("input was a &str");
                    // rose-lint: allow(PANIC002, peek() returned Some so the suffix is non-empty)
                    let c = text.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Decode surrogate pairs (Perfetto never needs them, but a
        // validator should not reject legal JSON).
        if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let combined =
                        0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(combined).ok_or_else(|| self.error("bad surrogate"));
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.error("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = self.peek().ok_or_else(|| self.error("truncated \\u"))?;
            let nibble = match digit {
                b'0'..=b'9' => digit - b'0',
                b'a'..=b'f' => digit - b'a' + 10,
                b'A'..=b'F' => digit - b'A' + 10,
                _ => return Err(self.error("non-hex digit in \\u")),
            };
            value = value * 16 + nibble as u32;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII span");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"traceEvents":[{"name":"a","ts":1.5e3,"ok":true},{"args":{"n":null}}],"x":-2}"#;
        let v = parse(doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1500.0));
        assert_eq!(events[1].get("args").unwrap().get("n"), Some(&Json::Null));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(-2.0));
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\n\"A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\"A😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
