//! Simulated-time clock domains.
//!
//! Trace timestamps are **simulated** microseconds, never wall-clock: an
//! event at SoC cycle `c` lands at `c / clock_hz` seconds, an event at
//! environment frame `f` at `f / frame_hz` seconds. Both domains map onto
//! the same axis, which is exactly the relation [`SyncRatio`] maintains
//! between grants (Equation 1) — so env-frame spans and sync-quantum spans
//! line up in the exported trace by construction.
//!
//! [`SyncRatio`]: rose_sim_core::cycles::SyncRatio

use rose_sim_core::cycles::{ClockSpec, FrameSpec};

/// Converts cycle and frame counts to simulated microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceClock {
    clock_hz: u64,
    frame_hz: u32,
}

impl TraceClock {
    /// A clock over the given SoC clock and environment frame rate (the
    /// same pair that defines the synchronizer's `SyncRatio`).
    pub fn new(clock: ClockSpec, frames: FrameSpec) -> TraceClock {
        TraceClock {
            clock_hz: clock.hz(),
            frame_hz: frames.hz(),
        }
    }

    /// SoC clock frequency in Hz.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Environment frame rate in Hz.
    pub fn frame_hz(&self) -> u32 {
        self.frame_hz
    }

    /// Simulated microseconds at SoC cycle `cycle`.
    pub fn cycles_to_us(&self, cycle: u64) -> f64 {
        cycle as f64 * 1e6 / self.clock_hz as f64
    }

    /// Simulated microseconds at environment frame `frame`.
    pub fn frames_to_us(&self, frame: u64) -> f64 {
        frame as f64 * 1e6 / self.frame_hz as f64
    }
}

impl Default for TraceClock {
    /// 1 GHz SoC / 60 fps environment, the workspace defaults.
    fn default() -> TraceClock {
        TraceClock::new(ClockSpec::default(), FrameSpec::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rose_sim_core::cycles::SyncRatio;

    #[test]
    fn both_domains_share_one_axis() {
        let clock = TraceClock::new(ClockSpec::from_hz(1_000_000_000), FrameSpec::from_hz(60));
        // Frame 60 and cycle 1e9 are both exactly 1 simulated second.
        assert_eq!(clock.frames_to_us(60), 1e6);
        assert_eq!(clock.cycles_to_us(1_000_000_000), 1e6);
    }

    #[test]
    fn consistent_with_sync_ratio_grants() {
        let clock_spec = ClockSpec::from_hz(1_000_000_000);
        let frame_spec = FrameSpec::from_hz(60);
        let clock = TraceClock::new(clock_spec, frame_spec);
        let ratio = SyncRatio::new(clock_spec, frame_spec);
        for frames in [1u64, 7, 40, 600] {
            let cycles = ratio.cycles_for_frames(frames);
            let frame_us = clock.frames_to_us(frames);
            let cycle_us = clock.cycles_to_us(cycles);
            // The grant truncates to whole cycles, so the two stamps agree
            // to within one cycle's worth of microseconds.
            let one_cycle_us = 1e6 / clock_spec.hz() as f64;
            assert!(
                (frame_us - cycle_us).abs() <= one_cycle_us + 1e-9,
                "frames={frames}: {frame_us} vs {cycle_us}"
            );
        }
    }
}
