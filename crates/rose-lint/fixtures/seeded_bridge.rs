//! Companion fixture for `rose-lint --self-test`, linted under the
//! virtual path `crates/rose-bridge/src/seeded_bridge.rs` so the
//! interprocedural fault-path rule (PANIC002) has a genuine root file.
//!
//! This file itself stays panic-free — that is the point: PANIC001 sees
//! nothing here, yet the call into `seeded_decode_helper` (defined in
//! `seeded.rs`, outside the fault path) reaches an `unwrap()`. The
//! PANIC002 finding lands at that helper's unwrap, with the call chain
//! `seeded_transport_recv → seeded_decode_helper` in the message.

pub fn seeded_transport_recv(frame: &[u8]) -> u8 {
    seeded_decode_helper(frame)
}

// Seeded FAULT001 violation: both statements drop the send's Result on
// the floor, so a transport error here would bypass retry/resync and
// fault latching entirely.
pub fn seeded_fire_and_forget(t: &mut SeededTransport, p: &Packet) {
    t.send(p);
    let _ = t.send(p);
}
