//! Seeded-violation fixture for `rose-lint --self-test`.
//!
//! This file is **not compiled** — it lives outside `src/` and exists
//! only to be linted. It seeds at least one violation of every rule, plus
//! the negative cases that must NOT fire, so the self-test proves both
//! halves: the linter catches what it claims to catch, and suppression
//! works as documented.

use std::collections::HashMap; // DET002: seeded violation
use std::time::SystemTime; // DET001: seeded violation

fn seeded_wall_clock() -> u64 {
    let started = Instant::now(); // DET001 + PROF001: seeded violation
    started.elapsed().as_micros() as u64 // CAST001: seeded violation
}

fn seeded_system_clock() -> u64 {
    // SystemTime::now() is both nondeterministic (DET001) and a bypass of
    // the profiler's sanctioned Stopwatch API (PROF001).
    SystemTime::now().elapsed().as_secs()
}

fn seeded_panics(rx: Receiver<Packet>) {
    let packet = rx.recv().unwrap(); // PANIC001: seeded violation
    match packet {
        Packet::Shutdown => {}
        _ => panic!("unexpected"), // PANIC001: seeded violation
    }
}

// TRACE001: seeded violation — opens a span it never closes.
fn seeded_unbalanced_span(tracer: &mut Tracer, now: u64) {
    tracer.span_begin_cycles(Track::SocCpu, "leaky", now, vec![]);
    work();
}

// ANN001: seeded violation — allow without the mandatory reason, which
// also means the unwrap below still fires PANIC001.
// rose-lint: allow(PANIC001)
fn seeded_reasonless_allow(x: Option<u8>) -> u8 {
    x.unwrap()
}

// SNAP001: seeded violation — a rest pattern lets a future field slip
// past the snapshot without breaking the build.
fn save_state(&self, w: &mut SnapWriter) {
    let Self { ticks, .. } = self;
    w.u64(*ticks);
}

// DET003: seeded violation — the entry point looks clean; the wall clock
// hides two calls down. The diagnostic must print the chain
// `Soc::step → seeded_tick_helper → seeded_wall_clock`.
impl Soc {
    pub fn step(&mut self) -> u64 {
        seeded_tick_helper()
    }
}

fn seeded_tick_helper() -> u64 {
    seeded_wall_clock()
}

// PANIC002: seeded violation — this helper looks harmless here, but
// `seeded_bridge.rs` (linted under a virtual crates/rose-bridge/src path)
// calls it from the fault path, where its unwrap can deadlock the
// lockstep peer.
fn seeded_decode_helper(frame: &[u8]) -> u8 {
    *frame.first().unwrap()
}

// SNAP002: seeded violation — `dropped_frames` appears in neither codec
// body, so snapshots silently lose it on every fork/resume.
struct SeededRecorder {
    ticks: u64,
    dropped_frames: u64,
}

impl SeededRecorder {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.ticks);
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.ticks = r.u64()?;
        Ok(())
    }
}

// ANN002: seeded violation — the unordered map this allow once excused is
// long gone, so the annotation suppresses nothing and must be deleted.
// rose-lint: allow(DET002, historical: the frontier map used to be a HashMap)
fn seeded_stale_allow(frontier: &BTreeMap<u64, u64>) -> bool {
    frontier.is_empty()
}

// ---------------------------------------------------------------------
// Negative half: everything below here must lint clean.
// ---------------------------------------------------------------------

fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
    // Ranges share the `..` spelling but follow an expression, not a
    // `{`/`,` — the codec's queue loops must stay clean.
    for _ in 0..r.usize()? {
        self.q.push_back(r.bytes()?);
    }
    Ok(())
}

use std::collections::BTreeMap; // ordered: fine

fn clean_exact_cycle_math(frames: u64, hz_num: u64, hz_den: u64) -> u64 {
    // Widening through u128 is the sanctioned pattern, not a violation.
    let wide = frames as u128 * hz_num as u128 / hz_den as u128;
    // rose-lint: allow(CAST001, quotient bounded by the grant window, proven above)
    let narrow = wide as u64;
    narrow
}

fn clean_annotated_fault(map: &BTreeMap<u64, u64>) -> u64 {
    // rose-lint: allow(PANIC001, key inserted unconditionally three lines up)
    *map.get(&0).expect("key zero present")
}

fn clean_balanced_span(tracer: &mut Tracer, now: u64) {
    tracer.span_begin_cycles(Track::SocCpu, "tidy", now, vec![]);
    work();
    tracer.span_end_cycles(Track::SocCpu, "tidy", now);
}

fn clean_string_lookalikes() -> &'static str {
    // Rule tokens inside literals and comments are invisible to the lexer:
    // unwrap(), panic!, Instant::now(), HashMap.
    "unwrap() panic! Instant::now() HashMap SystemTime"
}

#[cfg(test)]
mod tests {
    // Test code is exempt from the contract wholesale.
    #[test]
    fn tests_may_do_anything() {
        let t = Instant::now();
        let m: HashMap<u8, u8> = HashMap::new();
        m.get(&0).unwrap();
        let _ = (t.elapsed().as_nanos() as u64, m);
    }
}
