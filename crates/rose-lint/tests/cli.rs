//! Pins the rose-lint exit-code contract end to end, through the real
//! binary:
//!
//! | code | meaning                                         |
//! |------|-------------------------------------------------|
//! | 0    | clean                                           |
//! | 1    | findings                                        |
//! | 2    | usage / IO / config error, or broken self-test  |
//!
//! CI relies on 1 vs 2 to tell "the lint found a bug" apart from "the
//! lint could not run".

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_rose-lint")
}

fn run(args: &[&str], cwd: &Path) -> Output {
    Command::new(bin())
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn rose-lint")
}

/// A scratch workspace root with one source file; removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn with_source(tag: &str, source: &str) -> Scratch {
        let root = std::env::temp_dir().join(format!(
            "rose-lint-cli-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let src = root.join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("lib.rs"), source).unwrap();
        Scratch { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        std::fs::write(self.root.join(rel), contents).unwrap();
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

#[test]
fn exit_0_on_a_clean_tree() {
    let ws = Scratch::with_source("clean", "pub fn tidy() -> u8 { 0 }\n");
    let out = run(&["--root", "."], &ws.root);
    assert_eq!(out.status.code(), Some(0), "stderr: {:?}", out.stderr);
}

#[test]
fn exit_1_on_findings() {
    let ws = Scratch::with_source("dirty", "pub fn t() -> Instant { Instant::now() }\n");
    let out = run(&["--root", "."], &ws.root);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DET001"), "stdout: {stdout}");
}

#[test]
fn exit_2_on_bad_usage() {
    let ws = Scratch::with_source("usage", "pub fn tidy() {}\n");
    assert_eq!(run(&["--bogus-flag"], &ws.root).status.code(), Some(2));
    assert_eq!(
        run(&["--format", "yaml"], &ws.root).status.code(),
        Some(2),
        "unknown format is a usage error"
    );
    assert_eq!(
        run(&["--format"], &ws.root).status.code(),
        Some(2),
        "missing format value is a usage error"
    );
}

#[test]
fn exit_2_on_a_malformed_config() {
    let ws = Scratch::with_source("badconfig", "pub fn tidy() {}\n");
    ws.write("rose-lint.toml", "[allow\nDET001 = nope\n");
    let out = run(&["--root", "."], &ws.root);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rose-lint.toml"), "stderr: {stderr}");
}

#[test]
fn self_test_exits_1_with_every_rule_firing() {
    let ws = Scratch::with_source("selftest", "pub fn tidy() {}\n");
    let out = run(&["--self-test"], &ws.root);
    // 1, not 2: every registered rule fired on the seeded fixtures (a 2
    // would mean the linter itself is broken).
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    for rule in [
        "DET001", "DET002", "DET003", "PANIC001", "PANIC002", "TRACE001", "CAST001", "SNAP001",
        "SNAP002", "ANN001", "ANN002", "PROF001",
    ] {
        assert!(
            stderr.contains(&format!("self-test: {rule} fired")),
            "{rule} missing from self-test report: {stderr}"
        );
    }
}

#[test]
fn json_format_emits_parseable_output_with_findings() {
    let ws = Scratch::with_source("json", "pub fn t() -> Instant { Instant::now() }\n");
    let out = run(&["--root", ".", "--format", "json"], &ws.root);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = rose_trace::json::parse(&stdout).expect("stdout must be one JSON document");
    let count = doc.get("count").and_then(|c| c.as_f64()).unwrap() as usize;
    let findings = doc.get("findings").and_then(|f| f.as_array()).unwrap();
    assert_eq!(findings.len(), count);
    assert!(count >= 1);

    // Clean tree: still valid JSON, count 0, exit 0.
    let clean = Scratch::with_source("jsonclean", "pub fn tidy() {}\n");
    let out = run(&["--root", ".", "--format", "json"], &clean.root);
    assert_eq!(out.status.code(), Some(0));
    let doc = rose_trace::json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(doc.get("count").and_then(|c| c.as_f64()), Some(0.0));
}

#[test]
fn github_format_emits_error_annotations() {
    let ws = Scratch::with_source("github", "pub fn t() -> Instant { Instant::now() }\n");
    let out = run(&["--root", ".", "--format", "github"], &ws.root);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.lines().all(|l| l.starts_with("::error file=")),
        "every finding line is a workflow command: {stdout}"
    );
    assert!(stdout.contains("file=src/lib.rs,line=1,title=rose-lint DET001::"));
}
