//! Diagnostic rendering: `text` (human), `json` (machines), `github`
//! (GitHub Actions workflow commands, so findings annotate PR diffs).
//!
//! The JSON emitter is hand-rolled like everything else in this crate —
//! the shape is pinned by a round-trip test against `rose_trace::json`
//! (a dev-dependency only; the linter itself stays dependency-free):
//!
//! ```json
//! {
//!   "count": 2,
//!   "findings": [
//!     {"file": "crates/socsim/src/soc.rs", "line": 41, "rule": "DET003",
//!      "message": "..."}
//!   ]
//! }
//! ```

use crate::Diagnostic;
use std::fmt::Write as _;

/// An output format for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// `file:line: RULE message` — one diagnostic per line.
    #[default]
    Text,
    /// One JSON document with `count` and `findings`.
    Json,
    /// GitHub Actions `::error` workflow commands.
    Github,
}

impl Format {
    /// Parses a `--format` argument value.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "github" => Some(Format::Github),
            _ => None,
        }
    }
}

/// Renders diagnostics in `format`. Always ends with a newline unless the
/// rendering is empty (text/github with no findings).
pub fn render(diagnostics: &[Diagnostic], format: Format) -> String {
    match format {
        Format::Text => {
            let mut out = String::new();
            for d in diagnostics {
                let _ = writeln!(out, "{d}");
            }
            out
        }
        Format::Json => {
            let mut out = String::from("{\n");
            let _ = writeln!(out, "  \"count\": {},", diagnostics.len());
            out.push_str("  \"findings\": [");
            for (i, d) in diagnostics.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(
                    out,
                    "{sep}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                    json_string(&d.file),
                    d.finding.line,
                    json_string(d.finding.rule),
                    json_string(&d.finding.message),
                );
            }
            if !diagnostics.is_empty() {
                out.push_str("\n  ");
            }
            out.push_str("]\n}\n");
            out
        }
        Format::Github => {
            let mut out = String::new();
            for d in diagnostics {
                let _ = writeln!(
                    out,
                    "::error file={file},line={line},title=rose-lint {rule}::{message}",
                    file = gh_property(&d.file),
                    line = d.finding.line,
                    rule = gh_property(d.finding.rule),
                    message = gh_data(&d.finding.message),
                );
            }
            out
        }
    }
}

/// Encodes a JSON string literal (RFC 8259 escapes; UTF-8 passthrough).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escapes a workflow-command *property* value (`file=`, `title=`):
/// `%`, newlines, and the property delimiters `,`/`:` must be encoded.
fn gh_property(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
        .replace(',', "%2C")
        .replace(':', "%3A")
}

/// Escapes workflow-command *data* (the message after `::`): only `%`
/// and newlines are special there.
fn gh_data(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                file: "crates/socsim/src/soc.rs".into(),
                finding: Finding {
                    rule: "DET003",
                    line: 41,
                    message: "call chain: Soc::step → helper → Instant::now(); \
                              quoted \"text\" survives"
                        .into(),
                },
            },
            Diagnostic {
                file: "crates/rose-bridge/src/packet.rs".into(),
                finding: Finding {
                    rule: "PANIC001",
                    line: 7,
                    message: ".unwrap() on the fault path".into(),
                },
            },
        ]
    }

    #[test]
    fn json_round_trips_through_a_real_parser() {
        let diagnostics = sample();
        let text = render(&diagnostics, Format::Json);
        let doc = rose_trace::json::parse(&text).expect("emitted JSON must parse");
        assert_eq!(doc.get("count").and_then(|c| c.as_f64()), Some(2.0));
        let findings = doc
            .get("findings")
            .and_then(|f| f.as_array())
            .expect("findings array");
        assert_eq!(findings.len(), 2);
        assert_eq!(
            findings[0].get("file").and_then(|f| f.as_str()),
            Some("crates/socsim/src/soc.rs")
        );
        assert_eq!(findings[0].get("line").and_then(|l| l.as_f64()), Some(41.0));
        assert_eq!(
            findings[0].get("rule").and_then(|r| r.as_str()),
            Some("DET003")
        );
        // The Unicode arrows and embedded quotes survive the round trip.
        let msg = findings[0].get("message").and_then(|m| m.as_str()).unwrap();
        assert!(msg.contains("Soc::step → helper"));
        assert!(msg.contains("quoted \"text\" survives"));
        assert_eq!(
            findings[1].get("rule").and_then(|r| r.as_str()),
            Some("PANIC001")
        );
    }

    #[test]
    fn json_empty_set_is_valid_and_zero_count() {
        let text = render(&[], Format::Json);
        let doc = rose_trace::json::parse(&text).expect("empty JSON must parse");
        assert_eq!(doc.get("count").and_then(|c| c.as_f64()), Some(0.0));
        assert_eq!(
            doc.get("findings").and_then(|f| f.as_array()).map(<[_]>::len),
            Some(0)
        );
    }

    #[test]
    fn github_format_emits_error_commands() {
        let lines = render(&sample(), Format::Github);
        let first = lines.lines().next().unwrap();
        assert!(first.starts_with("::error file=crates/socsim/src/soc.rs,line=41,"));
        assert!(first.contains("title=rose-lint DET003::"));
        // The `::` in the message body must not be property-escaped, but a
        // colon inside a *property* must be.
        let weird = vec![Diagnostic {
            file: "a,b:c.rs".into(),
            finding: Finding {
                rule: "DET001",
                line: 1,
                message: "50% done\nnext line".into(),
            },
        }];
        let line = render(&weird, Format::Github);
        assert!(line.starts_with("::error file=a%2Cb%3Ac.rs,line=1,"));
        assert!(line.contains("50%25 done%0Anext line"));
    }

    #[test]
    fn text_format_matches_display() {
        let diagnostics = sample();
        let text = render(&diagnostics, Format::Text);
        assert_eq!(
            text,
            format!("{}\n{}\n", diagnostics[0], diagnostics[1])
        );
        assert_eq!(render(&[], Format::Text), "");
    }

    #[test]
    fn format_parses_cli_values() {
        assert_eq!(Format::parse("text"), Some(Format::Text));
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("github"), Some(Format::Github));
        assert_eq!(Format::parse("yaml"), None);
    }
}
