//! The determinism & fault-safety rules.
//!
//! Each rule is a pure function over a lexed token stream plus a test-code
//! mask; rules know their own file scope (`applies_to`). The full contract
//! with rationale lives in `DESIGN.md` § "Determinism contract".

use crate::lexer::{Lexed, Tok, Token};

/// One lint finding, before allow-annotation filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`DET001`, ...).
    pub rule: &'static str,
    /// 1-based line of the violation.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Crates whose `src/` trees model simulated state — any data-dependent
/// iteration there must be deterministically ordered (DET002 scope).
pub const SIM_CRATES: &[&str] = &[
    "crates/sim-core/src",
    "crates/envsim/src",
    "crates/socsim/src",
    "crates/dnn/src",
    "crates/flightctl/src",
    "crates/rose/src",
    "crates/rose-bridge/src",
];

/// Files doing cycle/frame arithmetic, where a truncating `as` cast can
/// silently corrupt simulated time (CAST001 scope).
const CYCLE_ARITH_FILES: &[&str] = &[
    "crates/sim-core/src/cycles.rs",
    "crates/trace/src/clock.rs",
    "crates/rose-bridge/src/sync.rs",
    "crates/rose-bridge/src/packet.rs",
    "crates/rose-bridge/src/faults.rs",
    // The closed-form timing fast paths: all-cycle arithmetic with no
    // instruction stream to cross-check against, so a truncating cast
    // corrupts simulated time invisibly.
    "crates/socsim/src/gemmini.rs",
    "crates/socsim/src/kernel.rs",
    "crates/socsim/src/timing_cache.rs",
];

/// Paths where a panic is a protocol hole, not a programming aid: the
/// transport/bridge/synchronizer hot paths must latch faults instead
/// (PANIC001 scope).
pub const FAULT_PATH_PREFIXES: &[&str] =
    &["crates/rose-bridge/src", "crates/socsim/src/bridge.rs"];

/// Integer types an `as` cast can truncate or wrap into. `u128`/`i128`
/// (the sanctioned exact path) and float targets are exempt.
const TRUNCATING_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize",
];

/// All rule identifiers, in report order. Tier L rules run per file over
/// the token stream; tier W rules ([`crate::wrules`]) run over the
/// workspace call graph; ANN001/ANN002 run in the [`crate::lint_files`]
/// pipeline itself.
pub const ALL_RULES: &[&str] = &[
    "DET001", "DET002", "DET003", "PANIC001", "PANIC002", "FAULT001", "TRACE001", "CAST001",
    "SNAP001", "SNAP002", "ANN001", "ANN002", "PROF001",
];

/// The one module allowed to read host clocks directly: everything else
/// funnels wall time through its `Stopwatch`/`Profiler` API (PROF001).
const PROFILER_MODULE: &str = "crates/trace/src/profiler.rs";

/// True when `rel_path` equals a prefix or sits below it (path-component
/// boundary: `crates/rose/src` does not match `crates/rose/srcfoo.rs`).
pub fn path_in(rel_path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| {
        rel_path == *p
            || rel_path
                .strip_prefix(p)
                .is_some_and(|rest| rest.starts_with('/'))
    })
}

/// True when `rule` applies to `rel_path` at all (before config
/// allowlisting). `all_rules` forces every rule in scope (self-test).
pub fn applies_to(rule: &str, rel_path: &str, all_rules: bool) -> bool {
    if all_rules {
        return true;
    }
    match rule {
        "DET001" | "TRACE001" | "ANN001" => true,
        "PROF001" => rel_path != PROFILER_MODULE,
        "DET002" => path_in(rel_path, SIM_CRATES),
        "PANIC001" | "FAULT001" => path_in(rel_path, FAULT_PATH_PREFIXES),
        "CAST001" => CYCLE_ARITH_FILES.contains(&rel_path),
        "SNAP001" => path_in(rel_path, SIM_CRATES) || path_in(rel_path, &["crates/trace/src"]),
        _ => false,
    }
}

/// Computes, per token index, whether the token sits inside test-only
/// code: a `#[cfg(test)]` module body or a `#[test]` function body.
/// The determinism contract governs simulation logic; tests may use
/// wall-clock timeouts and `unwrap()` freely.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = match_test_attr(tokens, i) {
            // Find the body's opening brace (skipping the item header),
            // then mark the whole brace-balanced region.
            let mut j = attr_end;
            while j < tokens.len() && tokens[j].tok != Tok::Punct("{") {
                j += 1;
            }
            if j < tokens.len() {
                let mut depth = 0usize;
                let start = i;
                while j < tokens.len() {
                    match &tokens[j].tok {
                        Tok::Punct("{") => depth += 1,
                        Tok::Punct("}") => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                for m in mask.iter_mut().take(j.min(tokens.len() - 1) + 1).skip(start) {
                    *m = true;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Matches `#[cfg(test)]` or `#[test]` starting at `i`; returns the index
/// just past the closing `]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.tok != Tok::Punct("#") || tokens.get(i + 1)?.tok != Tok::Punct("[") {
        return None;
    }
    match &tokens.get(i + 2)?.tok {
        Tok::Ident(s) if s == "test" => {
            (tokens.get(i + 3)?.tok == Tok::Punct("]")).then_some(i + 4)
        }
        Tok::Ident(s) if s == "cfg" => {
            let seq = [
                Tok::Punct("("),
                Tok::Ident("test".into()),
                Tok::Punct(")"),
                Tok::Punct("]"),
            ];
            for (k, want) in seq.iter().enumerate() {
                if &tokens.get(i + 3 + k)?.tok != want {
                    return None;
                }
            }
            Some(i + 7)
        }
        _ => None,
    }
}

fn ident(tok: &Token) -> Option<&str> {
    match &tok.tok {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Runs every in-scope rule over one lexed file.
pub fn run_rules(rel_path: &str, lexed: &Lexed, all_rules: bool) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mask = test_mask(tokens);
    let mut findings = Vec::new();

    let live = |i: usize| !mask[i];

    if applies_to("DET001", rel_path, all_rules) {
        findings.extend(det001(tokens, &live));
    }
    if applies_to("DET002", rel_path, all_rules) {
        findings.extend(det002(tokens, &live));
    }
    if applies_to("PANIC001", rel_path, all_rules) {
        findings.extend(panic001(tokens, &live));
    }
    if applies_to("FAULT001", rel_path, all_rules) {
        findings.extend(fault001(tokens, &live));
    }
    if applies_to("TRACE001", rel_path, all_rules) {
        findings.extend(trace001(tokens, &live));
    }
    if applies_to("CAST001", rel_path, all_rules) {
        findings.extend(cast001(tokens, &live));
    }
    if applies_to("SNAP001", rel_path, all_rules) {
        findings.extend(snap001(tokens, &live));
    }
    if applies_to("PROF001", rel_path, all_rules) {
        findings.extend(prof001(tokens, &live));
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// DET001 — no wall-clock reads in simulation logic. `Instant::now()` and
/// any use of `SystemTime` make behavior depend on host scheduling; the
/// whitelist (rose-lint.toml) covers the synchronizer's throughput stats,
/// which measure the *host*, by design.
fn det001(tokens: &[Token], live: &dyn Fn(usize) -> bool) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !live(i) {
            continue;
        }
        if ident(&tokens[i]) == Some("Instant")
            && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct("::"))
            && tokens.get(i + 2).and_then(ident) == Some("now")
        {
            out.push(Finding {
                rule: "DET001",
                line: tokens[i].line,
                message: "wall-clock read (Instant::now) in simulation logic; \
                          derive time from cycles/frames, or whitelist the file \
                          in rose-lint.toml if it measures the host on purpose"
                    .into(),
            });
        }
        if ident(&tokens[i]) == Some("SystemTime") {
            out.push(Finding {
                rule: "DET001",
                line: tokens[i].line,
                message: "SystemTime in simulation logic; wall time is \
                          nondeterministic across runs"
                    .into(),
            });
        }
    }
    out
}

/// PROF001 — wall-clock reads funnel through the profiler. A direct
/// `Instant::now()` / `SystemTime::now()` call anywhere but
/// `crates/trace/src/profiler.rs` bypasses the one sanctioned wall-time
/// API (`rose_trace::Stopwatch` / `Profiler::time`) whose readings are
/// digest-excluded by construction (DESIGN.md §4f). Where DET001 guards
/// *determinism* of simulated state, PROF001 guards *attribution*: ad-hoc
/// timing never shows up in `--profile` and can leak into reports. The
/// synchronizer's whitelisted wall-time stats (rose-lint.toml) are the
/// deliberate exception.
fn prof001(tokens: &[Token], live: &dyn Fn(usize) -> bool) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !live(i) {
            continue;
        }
        if let Some(clock @ ("Instant" | "SystemTime")) = ident(&tokens[i]) {
            if tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct("::"))
                && tokens.get(i + 2).and_then(ident) == Some("now")
            {
                out.push(Finding {
                    rule: "PROF001",
                    line: tokens[i].line,
                    message: format!(
                        "direct {clock}::now() outside the profiler module; route \
                         host timing through rose_trace::Stopwatch / Profiler::time \
                         so it stays digest-excluded, or whitelist the file in \
                         rose-lint.toml"
                    ),
                });
            }
        }
    }
    out
}

/// DET002 — no unordered maps in simulation state. `HashMap`/`HashSet`
/// iteration order varies with hasher seeding and insertion history;
/// draining one into stats, traces, or packets perturbs downstream bits.
/// `BTreeMap`/`BTreeSet` give the same ordering on every run.
fn det002(tokens: &[Token], live: &dyn Fn(usize) -> bool) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if !live(i) {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = ident(token) {
            let replacement = if name == "HashMap" { "BTreeMap" } else { "BTreeSet" };
            out.push(Finding {
                rule: "DET002",
                line: token.line,
                message: format!(
                    "{name} in a simulation crate: iteration order is \
                     nondeterministic; use {replacement}"
                ),
            });
        }
    }
    out
}

/// PANIC001 — no panics on the transport/bridge/synchronizer hot paths.
/// A panic mid-quantum poisons the lockstep (the peer blocks forever on a
/// reply that never comes); faults must latch via `TransportError` /
/// `RtlSide::take_fault` so the mission winds down and reports.
fn panic001(tokens: &[Token], live: &dyn Fn(usize) -> bool) -> Vec<Finding> {
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !live(i) {
            continue;
        }
        // `.unwrap()` / `.expect(` method calls.
        if tokens[i].tok == Tok::Punct(".")
            && matches!(tokens.get(i + 1).and_then(ident), Some("unwrap") | Some("expect"))
            && tokens.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct("("))
        {
            let which = ident(&tokens[i + 1]).unwrap_or("unwrap");
            out.push(Finding {
                rule: "PANIC001",
                line: tokens[i + 1].line,
                message: format!(
                    ".{which}() on the fault path: a panic here deadlocks the \
                     lockstep peer; latch a TransportError instead, or annotate \
                     with // rose-lint: allow(PANIC001, reason)"
                ),
            });
        }
        // `panic!(` and friends.
        if let Some(name) = ident(&tokens[i]) {
            if MACROS.contains(&name)
                && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct("!"))
            {
                out.push(Finding {
                    rule: "PANIC001",
                    line: tokens[i].line,
                    message: format!(
                        "{name}! on the fault path: latch a TransportError \
                         instead, or annotate with // rose-lint: allow(PANIC001, reason)"
                    ),
                });
            }
        }
    }
    out
}

/// TRACE001 — paired spans stay paired. Within each function body the
/// number of `span_begin*` calls must equal the number of `span_end*`
/// calls; an unmatched begin corrupts the trace's span nesting for every
/// event that follows (and `TraceLog::unpaired_spans` will flag the run).
fn trace001(tokens: &[Token], live: &dyn Fn(usize) -> bool) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if ident(&tokens[i]) != Some("fn") {
            i += 1;
            continue;
        }
        let fn_line = tokens[i].line;
        let fn_name = tokens.get(i + 1).and_then(ident).unwrap_or("?").to_string();
        // Scan the signature for the body `{` or a bodiless `;`, tracking
        // bracket depth so `[u8; 4]` defaults don't end the signature.
        let mut j = i + 1;
        let mut depth = 0i32;
        let body_start = loop {
            match tokens.get(j).map(|t| &t.tok) {
                None => break None,
                Some(Tok::Punct("(")) | Some(Tok::Punct("[")) => depth += 1,
                Some(Tok::Punct(")")) | Some(Tok::Punct("]")) => depth -= 1,
                Some(Tok::Punct(";")) if depth == 0 => break None,
                Some(Tok::Punct("{")) if depth == 0 => break Some(j),
                _ => {}
            }
            j += 1;
        };
        let Some(body_start) = body_start else {
            i = j + 1;
            continue;
        };
        // Walk the brace-balanced body, counting span call sites.
        let mut begins = 0usize;
        let mut ends = 0usize;
        let mut brace = 0i32;
        let mut k = body_start;
        while k < tokens.len() {
            match &tokens[k].tok {
                Tok::Punct("{") => brace += 1,
                Tok::Punct("}") => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                Tok::Ident(name)
                    if live(k)
                        && tokens.get(k + 1).map(|t| &t.tok) == Some(&Tok::Punct("("))
                        && ident(&tokens[k - 1]) != Some("fn") =>
                {
                    if name.starts_with("span_begin") {
                        begins += 1;
                    } else if name.starts_with("span_end") {
                        ends += 1;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if begins != ends && live(i) {
            out.push(Finding {
                rule: "TRACE001",
                line: fn_line,
                message: format!(
                    "fn {fn_name} opens {begins} trace span(s) but closes {ends}; \
                     every span_begin* needs a matching span_end* on every path"
                ),
            });
        }
        i = k + 1;
    }
    out
}

/// CAST001 — no truncating `as` casts in cycle arithmetic. Simulated time
/// is u64 cycles; products like `frames * hz` overflow u64 at plausible
/// configs, so the sanctioned pattern widens through u128 and only
/// narrows after a bounds-checked divide (see `Clocks::cycles_for_frames`).
/// Casts to u128/i128 or floats are exempt; anything else needs an
/// annotation naming the invariant that makes it lossless.
fn cast001(tokens: &[Token], live: &dyn Fn(usize) -> bool) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !live(i) {
            continue;
        }
        if ident(&tokens[i]) == Some("as") {
            if let Some(target) = tokens.get(i + 1).and_then(ident) {
                if TRUNCATING_TARGETS.contains(&target) {
                    out.push(Finding {
                        rule: "CAST001",
                        line: tokens[i].line,
                        message: format!(
                            "`as {target}` in cycle arithmetic can truncate; widen \
                             through u128 (see Clocks::cycles_for_frames) or annotate \
                             with // rose-lint: allow(CAST001, reason)"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// SNAP001 — no `..` rest patterns inside `save_state`/`restore_state`
/// bodies. The snapshot codec's "no hidden state" contract (DESIGN.md
/// §4e) requires every such function to destructure its struct
/// exhaustively, so that adding a field breaks the build until the author
/// decides whether it is dynamic state (serialize it) or structural
/// configuration (bind it to `_`). A `..` rest pattern — in a
/// destructuring `let Self { a, .. } = self;` or a functional update
/// `Config { a, ..Default::default() }` — silently swallows new fields,
/// which is exactly the bug class snapshots exist to prevent.
///
/// The lexer emits `..` as two adjacent `.` puncts; a pair preceded by
/// `{` or `,` is a rest pattern / functional update, while ranges
/// (`0..n`) follow a literal or identifier and are fine.
fn snap001(tokens: &[Token], live: &dyn Fn(usize) -> bool) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if ident(&tokens[i]) != Some("fn") {
            i += 1;
            continue;
        }
        let fn_name = tokens.get(i + 1).and_then(ident).unwrap_or("?").to_string();
        if fn_name != "save_state" && fn_name != "restore_state" {
            i += 1;
            continue;
        }
        // Find the body `{` (or a bodiless `;`), tracking bracket depth.
        let mut j = i + 1;
        let mut depth = 0i32;
        let body_start = loop {
            match tokens.get(j).map(|t| &t.tok) {
                None => break None,
                Some(Tok::Punct("(")) | Some(Tok::Punct("[")) => depth += 1,
                Some(Tok::Punct(")")) | Some(Tok::Punct("]")) => depth -= 1,
                Some(Tok::Punct(";")) if depth == 0 => break None,
                Some(Tok::Punct("{")) if depth == 0 => break Some(j),
                _ => {}
            }
            j += 1;
        };
        let Some(body_start) = body_start else {
            i = j + 1;
            continue;
        };
        // Walk the brace-balanced body flagging rest-pattern `..` pairs.
        let mut brace = 0i32;
        let mut k = body_start;
        while k < tokens.len() {
            match &tokens[k].tok {
                Tok::Punct("{") => brace += 1,
                Tok::Punct("}") => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                Tok::Punct(".")
                    if live(k)
                        && tokens.get(k + 1).map(|t| &t.tok) == Some(&Tok::Punct("."))
                        && matches!(
                            tokens.get(k - 1).map(|t| &t.tok),
                            Some(Tok::Punct("{")) | Some(Tok::Punct(","))
                        ) =>
                {
                    out.push(Finding {
                        rule: "SNAP001",
                        line: tokens[k].line,
                        message: format!(
                            "`..` rest pattern in fn {fn_name}: snapshot code must \
                             destructure exhaustively so new fields break the build \
                             (bind structural fields to `_`), or annotate with \
                             // rose-lint: allow(SNAP001, reason)"
                        ),
                    });
                    k += 2;
                    continue;
                }
                _ => {}
            }
            k += 1;
        }
        i = k + 1;
    }
    out
}

/// FAULT001 — no discarded `send` results on the fault path. Since the
/// fault-injection engine landed, every `Transport::send` can legitimately
/// fail mid-mission; a call whose `Result` is dropped (a bare statement or
/// a `let _ =` binding) silently swallows the very error the recovery
/// machinery exists to absorb. Propagate with `?`, match on the error, or
/// annotate the deliberate fire-and-forget with a reasoned allow.
fn fault001(tokens: &[Token], live: &dyn Fn(usize) -> bool) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !live(i) {
            continue;
        }
        // A method *call*: `.send(` — definitions (`fn send(`) and free
        // functions have no receiver dot and never match.
        if tokens[i].tok != Tok::Punct(".")
            || tokens.get(i + 1).and_then(ident) != Some("send")
            || tokens.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct("("))
        {
            continue;
        }
        // Walk to the call's matching close paren.
        let mut depth = 0usize;
        let mut j = i + 2;
        let close = loop {
            match tokens.get(j).map(|t| &t.tok) {
                None => break None,
                Some(Tok::Punct("(")) => depth += 1,
                Some(Tok::Punct(")")) => {
                    depth -= 1;
                    if depth == 0 {
                        break Some(j);
                    }
                }
                _ => {}
            }
            j += 1;
        };
        let Some(close) = close else { continue };
        // Anything but a statement-terminating `;` consumes the Result:
        // `?` propagates, `.` chains, a match/if scrutinee or tail
        // expression hands it to the caller, `,` makes it an arm value.
        if tokens.get(close + 1).map(|t| &t.tok) != Some(&Tok::Punct(";")) {
            continue;
        }
        // Walk back to the statement start and inspect the binding. A
        // `return`/`break` statement forwards the value; `let name =`
        // keeps it alive; `let _ =` and a bare expression statement drop
        // it on the floor.
        let mut s = i;
        while s > 0
            && !matches!(
                &tokens[s - 1].tok,
                Tok::Punct(";") | Tok::Punct("{") | Tok::Punct("}")
            )
        {
            s -= 1;
        }
        let discarded = match ident(&tokens[s]) {
            Some("let") => tokens.get(s + 1).and_then(ident) == Some("_"),
            Some("return") | Some("break") => false,
            _ => true,
        };
        if discarded {
            out.push(Finding {
                rule: "FAULT001",
                line: tokens[i + 1].line,
                message: "discarded Transport::send result on the fault path: a \
                          dropped error here bypasses retry/resync and latching; \
                          propagate with `?`, handle the Err, or annotate with \
                          // rose-lint: allow(FAULT001, reason)"
                    .to_owned(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(rule: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        run_rules("fixture.rs", &lexed, true)
            .into_iter()
            .filter(|f| f.rule == rule)
            .collect()
    }

    // DET001 ---------------------------------------------------------------

    #[test]
    fn det001_flags_wall_clock() {
        assert_eq!(findings("DET001", "let t = Instant::now();").len(), 1);
        assert_eq!(
            findings("DET001", "let t = std::time::Instant::now();").len(),
            1
        );
        assert_eq!(findings("DET001", "use std::time::SystemTime;").len(), 1);
    }

    #[test]
    fn det001_ignores_the_event_kind_and_tests() {
        // `EventKind::Instant` is an enum variant, not a clock read.
        assert!(findings("DET001", "let k = EventKind::Instant;").is_empty());
        assert!(findings("DET001", "started: Instant,").is_empty());
        assert!(findings(
            "DET001",
            "#[cfg(test)]\nmod tests {\n fn t() { let x = Instant::now(); }\n}"
        )
        .is_empty());
    }

    // PROF001 --------------------------------------------------------------

    #[test]
    fn prof001_flags_direct_clock_reads() {
        assert_eq!(findings("PROF001", "let t = Instant::now();").len(), 1);
        assert_eq!(
            findings("PROF001", "let t = std::time::Instant::now();").len(),
            1
        );
        assert_eq!(findings("PROF001", "let t = SystemTime::now();").len(), 1);
    }

    #[test]
    fn prof001_ignores_types_annotations_and_tests() {
        // Naming the type (fields, signatures, imports) is fine; only the
        // clock *read* must go through the profiler.
        assert!(findings("PROF001", "started: Instant,").is_empty());
        assert!(findings("PROF001", "use std::time::SystemTime;").is_empty());
        assert!(findings("PROF001", "fn at(&self) -> Instant { self.0 }").is_empty());
        assert!(findings(
            "PROF001",
            "#[cfg(test)]\nmod tests {\n fn t() { let x = Instant::now(); }\n}"
        )
        .is_empty());
    }

    // DET002 ---------------------------------------------------------------

    #[test]
    fn det002_flags_unordered_maps() {
        assert_eq!(
            findings("DET002", "use std::collections::HashMap;").len(),
            1
        );
        assert_eq!(findings("DET002", "let s: HashSet<u32> = x;").len(), 1);
    }

    #[test]
    fn det002_accepts_btree_and_comments() {
        assert!(findings("DET002", "use std::collections::BTreeMap;").is_empty());
        assert!(findings("DET002", "// a HashMap here would be wrong").is_empty());
        assert!(findings("DET002", r#"let s = "HashMap";"#).is_empty());
    }

    // PANIC001 -------------------------------------------------------------

    #[test]
    fn panic001_flags_panic_family() {
        assert_eq!(findings("PANIC001", "let v = rx.recv().unwrap();").len(), 1);
        assert_eq!(findings("PANIC001", "let v = x.expect(\"boom\");").len(), 1);
        assert_eq!(findings("PANIC001", "panic!(\"bad packet\");").len(), 1);
        assert_eq!(findings("PANIC001", "_ => unreachable!(),").len(), 1);
        assert_eq!(findings("PANIC001", "todo!()").len(), 1);
    }

    #[test]
    fn panic001_ignores_tests_and_lookalikes() {
        assert!(findings(
            "PANIC001",
            "#[test]\nfn roundtrip() { decode(&b).unwrap(); }"
        )
        .is_empty());
        // `unwrap_or_else` is a different method; a lexer knows that, a
        // substring grep would not.
        assert!(findings("PANIC001", "worker.join().unwrap_or_else(|c| c);").is_empty());
        assert!(findings("PANIC001", "let unwrap = 3; f(unwrap);").is_empty());
    }

    // FAULT001 -------------------------------------------------------------

    #[test]
    fn fault001_flags_discarded_send_results() {
        // A bare statement drops the Result on the floor...
        let found = findings("FAULT001", "fn f(t: &mut T) {\n t.send(&p);\n}");
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("discarded"));
        // ...and `let _ =` is the same discard with extra ceremony.
        assert_eq!(
            findings("FAULT001", "let _ = self.transport.send(&packet);").len(),
            1
        );
        // Nested call arguments don't confuse the paren walk.
        assert_eq!(
            findings("FAULT001", "self.inner.send(&frame(seq, payload.clone()));").len(),
            1
        );
    }

    #[test]
    fn fault001_accepts_consumed_results() {
        // `?` propagates, which is the sanctioned pattern.
        assert!(findings("FAULT001", "self.transport.send(&packet)?;").is_empty());
        // Binding keeps the Result alive for later handling.
        assert!(findings("FAULT001", "let r = t.send(&p);\nr?;").is_empty());
        // Matching on it is handling it.
        assert!(findings(
            "FAULT001",
            "match t.send(&p) {\n Ok(()) => {}\n Err(e) => latch(e),\n}"
        )
        .is_empty());
        // Tail position hands the Result to the caller.
        assert!(findings(
            "FAULT001",
            "fn shutdown(mut self) -> Result<(), E> {\n self.transport.send(&Packet::Shutdown)\n}"
        )
        .is_empty());
        assert!(findings("FAULT001", "return t.send(&p);").is_empty());
        // Chaining consumes it (whatever the chain then does is visible).
        assert!(findings("FAULT001", "t.send(&p).unwrap();").is_empty());
        // A channel send in a test is out of scope via the test mask.
        assert!(findings(
            "FAULT001",
            "#[cfg(test)]\nmod tests {\n fn t() { tx.send(&p); }\n}"
        )
        .is_empty());
        // `send` as a field or definition, not a method call.
        assert!(findings("FAULT001", "fn send(&mut self, p: &Packet) {}").is_empty());
    }

    // TRACE001 -------------------------------------------------------------

    #[test]
    fn trace001_flags_unbalanced_spans() {
        let found = findings(
            "TRACE001",
            "fn run(&mut self) {\n tracer.span_begin_cycles(t, \"x\", c, vec![]);\n work();\n}",
        );
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("opens 1"));
    }

    #[test]
    fn trace001_accepts_balanced_spans_and_definitions() {
        assert!(findings(
            "TRACE001",
            "fn run(&mut self) {\n t.span_begin_cycles(a, b, c, vec![]);\n work();\n t.span_end_cycles(a, b, c);\n}"
        )
        .is_empty());
        // The tracer's own method definitions are signatures, not calls.
        assert!(findings(
            "TRACE001",
            "impl Tracer {\n pub fn span_begin_cycles(&mut self, t: Track) { self.push(t); }\n}"
        )
        .is_empty());
    }

    // CAST001 --------------------------------------------------------------

    #[test]
    fn cast001_flags_truncating_casts() {
        assert_eq!(findings("CAST001", "let c = (f * hz) as u64;").len(), 1);
        assert_eq!(findings("CAST001", "let n = big as u32;").len(), 1);
        assert_eq!(findings("CAST001", "let n = big as usize;").len(), 1);
    }

    #[test]
    fn cast001_exempts_widening_to_u128_and_floats() {
        assert!(findings("CAST001", "let w = n as u128 * hz as u128;").is_empty());
        assert!(findings("CAST001", "let r = cycles as f64;").is_empty());
        // `as` in a use-rename is not a cast target in the truncating set.
        assert!(findings("CAST001", "use foo::Bar as Baz;").is_empty());
    }

    // SNAP001 --------------------------------------------------------------

    #[test]
    fn snap001_flags_rest_patterns_in_snapshot_fns() {
        let rest = "pub fn save_state(&self, w: &mut SnapWriter) {\n let Self { a, .. } = self;\n w.u64(*a);\n}";
        let found = findings("SNAP001", rest);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("save_state"));

        let update = "fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {\n self.stats = Stats { syncs: r.u64()?, ..Stats::default() };\n Ok(())\n}";
        assert_eq!(findings("SNAP001", update).len(), 1);
    }

    #[test]
    fn snap001_accepts_ranges_and_exhaustive_destructuring() {
        // Range loops are the codec's bread and butter, not rest patterns.
        let ranges = "fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {\n for _ in 0..r.usize()? {\n  self.q.push(r.bytes()?);\n }\n Ok(())\n}";
        assert!(findings("SNAP001", ranges).is_empty());

        let exhaustive = "fn save_state(&self, w: &mut SnapWriter) {\n let Self { a, b, config: _ } = self;\n w.u64(*a);\n w.bool(*b);\n}";
        assert!(findings("SNAP001", exhaustive).is_empty());

        // `..` anywhere outside save_state/restore_state is out of scope.
        let elsewhere = "fn rebuild(&self) -> Config {\n Config { name: x, ..Config::default() }\n}";
        assert!(findings("SNAP001", elsewhere).is_empty());
    }

    // Scope ----------------------------------------------------------------

    #[test]
    fn rules_respect_file_scope() {
        assert!(applies_to("DET001", "crates/envsim/src/world.rs", false));
        assert!(applies_to("DET002", "crates/socsim/src/soc.rs", false));
        assert!(!applies_to("DET002", "crates/bench/src/lib.rs", false));
        assert!(applies_to("PANIC001", "crates/rose-bridge/src/sync.rs", false));
        assert!(applies_to("PANIC001", "crates/socsim/src/bridge.rs", false));
        assert!(!applies_to("PANIC001", "crates/socsim/src/soc.rs", false));
        assert!(applies_to("FAULT001", "crates/rose-bridge/src/faults.rs", false));
        assert!(applies_to("FAULT001", "crates/socsim/src/bridge.rs", false));
        assert!(!applies_to("FAULT001", "crates/rose/src/mission.rs", false));
        assert!(applies_to("CAST001", "crates/sim-core/src/cycles.rs", false));
        assert!(!applies_to("CAST001", "crates/sim-core/src/rng.rs", false));
        assert!(applies_to("CAST001", "crates/sim-core/src/rng.rs", true));
        assert!(applies_to("SNAP001", "crates/socsim/src/soc.rs", false));
        assert!(applies_to("SNAP001", "crates/trace/src/tracer.rs", false));
        assert!(!applies_to("SNAP001", "crates/bench/src/lib.rs", false));
        assert!(applies_to("PROF001", "crates/rose-bridge/src/sync.rs", false));
        assert!(applies_to("PROF001", "crates/bench/src/lib.rs", false));
        assert!(!applies_to("PROF001", "crates/trace/src/profiler.rs", false));
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let lexed = lex("fn live() {}\n#[cfg(test)]\nmod tests {\n fn a() { x.unwrap(); }\n}\nfn also_live() {}");
        let mask = test_mask(&lexed.tokens);
        let live_idents: Vec<&str> = lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| !mask[*i] && matches!(t.tok, Tok::Ident(_)))
            .map(|(_, t)| match &t.tok {
                Tok::Ident(s) => s.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(live_idents, vec!["fn", "live", "fn", "also_live"]);
    }
}
