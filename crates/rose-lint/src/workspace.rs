//! Tier W's workspace model: symbol table, sinks, and the conservative
//! call graph.
//!
//! Resolution is **name-based and over-approximating** — the linter has no
//! type inference, so it errs toward extra edges rather than missed ones:
//!
//! - `.method(...)` receiver calls resolve to *every* workspace function
//!   with that name, in any `impl`.
//! - `Type::method(...)` path calls resolve precisely when `Type` names a
//!   known `impl`/`trait` block (`Self::` uses the enclosing block), and
//!   fall back to every function with that name otherwise.
//! - Bare `helper(...)` calls resolve to free functions with that name.
//!
//! Known false-negative edges, accepted and documented (DESIGN.md §4g):
//! calls through function pointers and closures, trait-object dispatch to
//! impls whose method name the caller never utters (impossible — the name
//! *is* the edge key — but a `dyn` call does not narrow to one impl), and
//! associated functions imported via `use Type::method`. Test code is
//! excluded from the graph wholesale.

use crate::ast::{self, Ast};
use crate::lexer::{Lexed, Tok, Token};
use crate::rules::test_mask;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// What a determinism sink is (DET003's taint sources).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// A host wall-clock read (`Instant::now`, `SystemTime::now`).
    WallClock,
    /// An entropy-seeded RNG (`thread_rng`, `from_entropy`, `OsRng`, ...).
    Entropy,
    /// `HashMap`/`HashSet` in the body: iteration order is unordered.
    UnorderedIter,
}

/// One determinism sink inside a function body.
#[derive(Debug, Clone)]
pub struct Sink {
    /// The kind of nondeterminism.
    pub kind: SinkKind,
    /// 1-based line of the sink.
    pub line: usize,
    /// The offending spelling, for diagnostics (`Instant::now()`, ...).
    pub what: String,
}

/// One potential panic site inside a function body (PANIC002's sinks).
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line of the site.
    pub line: usize,
    /// The offending spelling (`.unwrap()`, `panic!`, ...).
    pub what: String,
}

/// A function node in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the definition.
    pub line: usize,
    /// Resolved callee node ids, sorted and deduplicated.
    pub callees: Vec<usize>,
    /// Determinism sinks in the body.
    pub sinks: Vec<Sink>,
    /// Panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Identifiers appearing in the body — populated only for
    /// `save_state`/`restore_state` (SNAP002's field-coverage check).
    pub body_idents: Option<BTreeSet<String>>,
}

impl FnNode {
    /// `Type::name` for methods, `name` for free functions.
    pub fn qname(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A struct node in the workspace symbol table.
#[derive(Debug)]
pub struct StructNode {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Struct name.
    pub name: String,
    /// 1-based line of the definition.
    pub line: usize,
    /// Declared named fields.
    pub fields: Vec<ast::Field>,
}

/// Identifiers that read environmental entropy; reaching one from a sim
/// entry point makes the mission unreproducible. Extended per-config via
/// `[rule.DET003] sinks = [...]`.
pub const ENTROPY_SINKS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
];

/// The whole-workspace model tier W rules run against.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Workspace-relative file paths, parallel to the `file` indices.
    pub files: Vec<String>,
    /// Every non-test function definition.
    pub fns: Vec<FnNode>,
    /// Every non-test struct definition.
    pub structs: Vec<StructNode>,
    /// Function name → node ids (methods and free fns alike).
    by_name: BTreeMap<String, Vec<usize>>,
    /// (self type, name) → node ids.
    by_ty: BTreeMap<(String, String), Vec<usize>>,
    /// Function name → free-fn node ids.
    free_by_name: BTreeMap<String, Vec<usize>>,
}

impl Workspace {
    /// Builds the model from every lexed file. `extra_sinks` extends the
    /// entropy sink list (from `[rule.DET003] sinks`).
    pub fn build(files: &[(String, &Lexed)], extra_sinks: &[String]) -> Workspace {
        let mut ws = Workspace::default();
        let mut pending_calls: Vec<(usize, Vec<ast::Call>, Option<String>)> = Vec::new();
        for (rel_path, lexed) in files {
            let file_idx = ws.files.len();
            ws.files.push(rel_path.clone());
            let mask = test_mask(&lexed.tokens);
            let ast = ast::parse(&lexed.tokens, &mask);
            ws.index_ast(file_idx, ast, &lexed.tokens, extra_sinks, &mut pending_calls);
        }
        // Second pass: resolve calls now that every symbol is indexed.
        for (fn_id, calls, self_ty) in pending_calls {
            let mut callees = BTreeSet::new();
            for call in &calls {
                ws.resolve(call, self_ty.as_deref(), &mut callees);
            }
            ws.fns[fn_id].callees = callees.into_iter().collect();
        }
        ws
    }

    fn index_ast(
        &mut self,
        file_idx: usize,
        ast: Ast,
        tokens: &[Token],
        extra_sinks: &[String],
        pending_calls: &mut Vec<(usize, Vec<ast::Call>, Option<String>)>,
    ) {
        for f in ast.fns {
            if f.is_test {
                continue;
            }
            let id = self.fns.len();
            let (sinks, panics) = match f.body {
                Some((start, end)) => scan_body(tokens, start, end, extra_sinks),
                None => (Vec::new(), Vec::new()),
            };
            let body_idents = match (f.name.as_str(), f.body) {
                ("save_state" | "restore_state", Some((start, end))) => {
                    let mut idents = BTreeSet::new();
                    for t in &tokens[start..end] {
                        if let Tok::Ident(s) = &t.tok {
                            idents.insert(s.clone());
                        }
                    }
                    Some(idents)
                }
                _ => None,
            };
            self.by_name.entry(f.name.clone()).or_default().push(id);
            if let Some(ty) = &f.self_ty {
                self.by_ty
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            } else {
                self.free_by_name.entry(f.name.clone()).or_default().push(id);
            }
            pending_calls.push((id, f.calls, f.self_ty.clone()));
            self.fns.push(FnNode {
                file: file_idx,
                name: f.name,
                self_ty: f.self_ty,
                line: f.line,
                callees: Vec::new(),
                sinks,
                panics,
                body_idents,
            });
        }
        for s in ast.structs {
            if s.is_test {
                continue;
            }
            self.structs.push(StructNode {
                file: file_idx,
                name: s.name,
                line: s.line,
                fields: s.fields,
            });
        }
    }

    /// Resolves one call to workspace node ids (see the module docs for
    /// the resolution rules).
    fn resolve(&self, call: &ast::Call, self_ty: Option<&str>, out: &mut BTreeSet<usize>) {
        let name = call.name();
        if call.method {
            if let Some(ids) = self.by_name.get(name) {
                out.extend(ids.iter().copied());
            }
            return;
        }
        match call.segments.len() {
            0 => {}
            1 => {
                if let Some(ids) = self.free_by_name.get(name) {
                    out.extend(ids.iter().copied());
                }
            }
            _ => {
                let qualifier = &call.segments[call.segments.len() - 2];
                let ty = if qualifier == "Self" {
                    self_ty.unwrap_or(qualifier)
                } else {
                    qualifier
                };
                if let Some(ids) = self.by_ty.get(&(ty.to_string(), name.to_string())) {
                    out.extend(ids.iter().copied());
                } else if let Some(ids) = self.free_by_name.get(name) {
                    // `module::helper(...)`: a path-qualified free fn.
                    out.extend(ids.iter().copied());
                }
            }
        }
    }

    /// Node ids of functions matching an entry-point pattern: `Type::name`,
    /// `name`, with a trailing `*` wildcard on the final segment
    /// (`Synchronizer::run_*`).
    pub fn match_entry(&self, pattern: &str) -> Vec<usize> {
        let matches_glob = |name: &str, pat: &str| {
            pat.strip_suffix('*')
                .map_or(name == pat, |prefix| name.starts_with(prefix))
        };
        let mut out = Vec::new();
        match pattern.split_once("::") {
            Some((ty, fn_pat)) => {
                for (id, f) in self.fns.iter().enumerate() {
                    if f.self_ty.as_deref() == Some(ty) && matches_glob(&f.name, fn_pat) {
                        out.push(id);
                    }
                }
            }
            None => {
                for (id, f) in self.fns.iter().enumerate() {
                    if matches_glob(&f.name, pattern) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    /// Multi-source BFS over the call graph. Returns `node → parent`
    /// (entries map to themselves), visiting in deterministic id order so
    /// diagnostics are stable across runs.
    pub fn reachable(&self, entries: &[usize]) -> BTreeMap<usize, usize> {
        let mut parents = BTreeMap::new();
        let mut queue = VecDeque::new();
        let mut sorted: Vec<usize> = entries.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &e in &sorted {
            parents.insert(e, e);
            queue.push_back(e);
        }
        while let Some(id) = queue.pop_front() {
            for &callee in &self.fns[id].callees {
                if let std::collections::btree_map::Entry::Vacant(v) = parents.entry(callee) {
                    v.insert(id);
                    queue.push_back(callee);
                }
            }
        }
        parents
    }

    /// The call chain from the entry point down to `id`, rendered as
    /// `Entry::fn → helper → sink_fn`.
    pub fn chain(&self, parents: &BTreeMap<usize, usize>, mut id: usize) -> String {
        let mut names = vec![self.fns[id].qname()];
        while let Some(&p) = parents.get(&id) {
            if p == id {
                break;
            }
            names.push(self.fns[p].qname());
            id = p;
        }
        names.reverse();
        names.join(" → ")
    }
}

/// Scans a function body for determinism sinks and panic sites.
fn scan_body(
    tokens: &[Token],
    start: usize,
    end: usize,
    extra_sinks: &[String],
) -> (Vec<Sink>, Vec<PanicSite>) {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let mut sinks = Vec::new();
    let mut panics = Vec::new();
    let ident = |i: usize| match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize, p: &str| matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(q)) if *q == p);
    for k in start..end.min(tokens.len()) {
        let line = tokens[k].line;
        if let Some(name @ ("Instant" | "SystemTime")) = ident(k) {
            if punct(k + 1, "::") && ident(k + 2) == Some("now") {
                sinks.push(Sink {
                    kind: SinkKind::WallClock,
                    line,
                    what: format!("{name}::now()"),
                });
            }
        }
        if let Some(name @ ("HashMap" | "HashSet")) = ident(k) {
            sinks.push(Sink {
                kind: SinkKind::UnorderedIter,
                line,
                what: format!("{name} (unordered iteration)"),
            });
        }
        if let Some(name) = ident(k) {
            if ENTROPY_SINKS.contains(&name) || extra_sinks.iter().any(|s| s == name) {
                sinks.push(Sink {
                    kind: SinkKind::Entropy,
                    line,
                    what: format!("{name} (entropy-seeded RNG)"),
                });
            }
            if PANIC_MACROS.contains(&name) && punct(k + 1, "!") {
                panics.push(PanicSite {
                    line,
                    what: format!("{name}!"),
                });
            }
        }
        if punct(k, ".")
            && matches!(ident(k + 1), Some("unwrap") | Some("expect"))
            && punct(k + 2, "(")
        {
            panics.push(PanicSite {
                line: tokens[k + 1].line,
                what: format!(".{}()", ident(k + 1).unwrap_or("unwrap")),
            });
        }
    }
    (sinks, panics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn build(sources: &[(&str, &str)]) -> Workspace {
        let lexed: Vec<(String, Lexed)> = sources
            .iter()
            .map(|(path, src)| (path.to_string(), lex(src)))
            .collect();
        let refs: Vec<(String, &Lexed)> = lexed.iter().map(|(p, l)| (p.clone(), l)).collect();
        Workspace::build(&refs, &[])
    }

    fn id_of(ws: &Workspace, qname: &str) -> usize {
        ws.fns
            .iter()
            .position(|f| f.qname() == qname)
            .unwrap_or_else(|| panic!("no fn {qname}"))
    }

    #[test]
    fn cross_file_call_resolution_and_reachability() {
        let ws = build(&[
            (
                "crates/a/src/lib.rs",
                "impl Soc {\n pub fn step(&mut self) { tick_helper(); }\n}",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn tick_helper() { deep(); }\nfn deep() { let t = Instant::now(); }",
            ),
        ]);
        let entries = ws.match_entry("Soc::step");
        assert_eq!(entries.len(), 1);
        let parents = ws.reachable(&entries);
        let deep = id_of(&ws, "deep");
        assert!(parents.contains_key(&deep));
        assert_eq!(ws.chain(&parents, deep), "Soc::step → tick_helper → deep");
        assert_eq!(ws.fns[deep].sinks.len(), 1);
        assert_eq!(ws.fns[deep].sinks[0].kind, SinkKind::WallClock);
    }

    #[test]
    fn method_calls_resolve_by_name_conservatively() {
        let ws = build(&[(
            "crates/a/src/lib.rs",
            "impl A {\n fn run(&self, x: &B) { x.helper(); }\n}\n\
             impl B {\n fn helper(&self) {}\n}\n\
             impl C {\n fn helper(&self) { panic!(\"boom\"); }\n}",
        )]);
        let run = id_of(&ws, "A::run");
        // Both same-named methods are edges: no type inference.
        assert_eq!(ws.fns[run].callees.len(), 2);
    }

    #[test]
    fn self_path_calls_resolve_within_the_impl() {
        let ws = build(&[(
            "crates/a/src/lib.rs",
            "impl Soc {\n fn run(&mut self) { Self::helper(); }\n fn helper() {}\n}",
        )]);
        let run = id_of(&ws, "Soc::run");
        let helper = id_of(&ws, "Soc::helper");
        assert_eq!(ws.fns[run].callees, vec![helper]);
    }

    #[test]
    fn test_fns_are_outside_the_graph() {
        let ws = build(&[(
            "crates/a/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { let x = Instant::now(); }\n}",
        )]);
        assert_eq!(ws.fns.len(), 1);
        assert_eq!(ws.fns[0].name, "live");
    }

    #[test]
    fn entry_globs_match_prefixes() {
        let ws = build(&[(
            "crates/a/src/lib.rs",
            "impl Synchronizer {\n fn run_syncs(&mut self) {}\n fn run_until(&mut self) {}\n fn stats(&self) {}\n}",
        )]);
        assert_eq!(ws.match_entry("Synchronizer::run_*").len(), 2);
        assert_eq!(ws.match_entry("Synchronizer::stats").len(), 1);
        assert!(ws.match_entry("Soc::*").is_empty());
    }

    #[test]
    fn panic_sites_and_entropy_sinks_are_collected() {
        let ws = build(&[(
            "crates/a/src/lib.rs",
            "fn f(x: Option<u8>) {\n let seed = thread_rng();\n x.unwrap();\n y.expect(\"no\");\n unreachable!();\n}",
        )]);
        let f = &ws.fns[0];
        assert_eq!(f.sinks.len(), 1);
        assert_eq!(f.sinks[0].kind, SinkKind::Entropy);
        let whats: Vec<&str> = f.panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(whats, vec![".unwrap()", ".expect()", "unreachable!"]);
    }
}
