//! rose-lint: the workspace determinism & fault-safety contract, enforced.
//!
//! The RoSÉ reproduction promises bit-identical missions for identical
//! configs (see `rose::audit`). That promise is easy to break one line at
//! a time — a `HashMap` drain here, an `Instant::now()` there — so this
//! crate scans the workspace source with a hand-rolled Rust lexer
//! ([`lexer`]) and a two-tier analysis:
//!
//! **Tier L** ([`rules`]) pattern-matches each file's token stream.
//! **Tier W** ([`ast`], [`workspace`], [`wrules`]) parses every file into
//! a lightweight item AST, builds a workspace symbol table plus a
//! conservative call graph, and reasons interprocedurally.
//!
//! | rule     | tier | violation                                               |
//! |----------|------|---------------------------------------------------------|
//! | DET001   | L    | wall-clock reads (`Instant::now`, `SystemTime`)         |
//! | DET002   | L    | unordered maps (`HashMap`/`HashSet`) in sim crates      |
//! | DET003   | W    | nondeterminism sink reachable from a sim entry point    |
//! | PANIC001 | L    | `unwrap`/`expect`/`panic!` on transport/bridge paths    |
//! | PANIC002 | W    | panic site reachable from the transport/bridge path     |
//! | FAULT001 | L    | discarded `Transport::send` result on the fault path    |
//! | TRACE001 | L    | unpaired `span_begin*`/`span_end*` calls                |
//! | CAST001  | L    | truncating `as` casts in cycle arithmetic               |
//! | SNAP001  | L    | `..` rest patterns in `save_state`/`restore_state`      |
//! | SNAP002  | W    | struct field absent from both snapshot codec bodies     |
//! | ANN001   | —    | malformed / reasonless `rose-lint:` annotation          |
//! | ANN002   | —    | stale allow: annotation or toml entry suppressing nothing |
//! | PROF001  | L    | `Instant::now`/`SystemTime::now` outside the profiler   |
//!
//! Suppression is always explicit: file-level via `rose-lint.toml`
//! ([`config`]), or line-level via `// rose-lint: allow(RULE, reason)` —
//! the reason is mandatory, and an annotation without one is itself a
//! finding (ANN001). An allow that no longer suppresses anything is also
//! a finding (ANN002), so exemptions cannot outlive the violation they
//! excused.
//!
//! No dependencies, no `proc-macro`, no `syn`: the linter runs in an
//! offline container before anything else builds.

pub mod ast;
pub mod config;
pub mod lexer;
pub mod output;
pub mod rules;
pub mod workspace;
pub mod wrules;

pub use config::{Config, ConfigError};
pub use output::Format;
pub use rules::{Finding, ALL_RULES};

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use workspace::Workspace;

/// One reported violation, with its file attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// The underlying finding.
    pub finding: Finding,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.finding.line, self.finding.rule, self.finding.message
        )
    }
}

/// A parsed `// rose-lint: allow(RULE, reason)` annotation.
#[derive(Debug)]
struct Allow {
    line: usize,
    rule: String,
    has_reason: bool,
}

/// Extracts allow annotations from a file's comments. A comment that
/// starts with `rose-lint:` but does not parse as `allow(RULE, reason)`
/// yields an ANN001 finding, as does one with an empty reason.
fn parse_allows(comments: &[(usize, String)]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for (line, text) in comments {
        let Some(rest) = text.strip_prefix("rose-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|inner| inner.strip_suffix(')'));
        let Some(inner) = parsed else {
            findings.push(Finding {
                rule: "ANN001",
                line: *line,
                message: format!(
                    "malformed annotation {text:?}; expected \
                     // rose-lint: allow(RULE, reason)"
                ),
            });
            continue;
        };
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        let has_reason = !reason.is_empty();
        if !has_reason {
            findings.push(Finding {
                rule: "ANN001",
                line: *line,
                message: format!(
                    "allow({rule}) without a reason; the reason is mandatory — \
                     state the invariant that makes the violation safe"
                ),
            });
        }
        allows.push(Allow {
            line: *line,
            rule: rule.to_string(),
            has_reason,
        });
    }
    (allows, findings)
}

/// Per-file state carried through the two-tier pipeline.
struct FileCtx {
    rel: String,
    lexed: lexer::Lexed,
    allows: Vec<Allow>,
    /// ANN001 findings from annotation parsing (never suppressible).
    ann: Vec<Finding>,
    /// Raw tier L + tier W findings, pre-suppression.
    raw: Vec<Finding>,
    /// Lines covered by `#[cfg(test)]` / `#[test]` regions: annotations
    /// there guard test code the rules never visit, so they are exempt
    /// from the ANN002 staleness check.
    masked_lines: BTreeSet<usize>,
}

/// Lints a set of files as one workspace: tier L per file, tier W over
/// the combined call graph, then suppression (toml allowlist first, line
/// annotations second) and the ANN002 stale-annotation check.
///
/// `all_rules` forces every rule in scope regardless of path (self-test).
/// Stale `rose-lint.toml` entries are only checked by [`lint_workspace`],
/// which sees the whole tree — a partial file set proves nothing about an
/// entry being dead.
pub fn lint_files(files: &[(String, String)], config: &Config, all_rules: bool) -> Vec<Diagnostic> {
    lint_files_inner(files, config, all_rules, false)
}

fn lint_files_inner(
    files: &[(String, String)],
    config: &Config,
    all_rules: bool,
    check_config_staleness: bool,
) -> Vec<Diagnostic> {
    let mut ctxs: Vec<FileCtx> = files
        .iter()
        .map(|(rel, source)| {
            let lexed = lexer::lex(source);
            let (allows, ann) = parse_allows(&lexed.comments);
            let raw = rules::run_rules(rel, &lexed, all_rules);
            let mask = rules::test_mask(&lexed.tokens);
            let masked_lines = lexed
                .tokens
                .iter()
                .zip(&mask)
                .filter(|(_, m)| **m)
                .map(|(t, _)| t.line)
                .collect();
            FileCtx {
                rel: rel.clone(),
                lexed,
                allows,
                ann,
                raw,
                masked_lines,
            }
        })
        .collect();

    // Tier W: one call graph over every in-scope file.
    let extra_sinks: Vec<String> = config
        .rule_list("DET003", "sinks")
        .map(<[String]>::to_vec)
        .unwrap_or_default();
    let graph: Vec<usize> = (0..ctxs.len())
        .filter(|&i| all_rules || wrules::in_graph_scope(&ctxs[i].rel))
        .collect();
    let ws_files: Vec<(String, &lexer::Lexed)> = graph
        .iter()
        .map(|&i| (ctxs[i].rel.clone(), &ctxs[i].lexed))
        .collect();
    let ws = Workspace::build(&ws_files, &extra_sinks);
    for (ws_file, finding) in wrules::run_workspace_rules(&ws, config, all_rules) {
        ctxs[graph[ws_file]].raw.push(finding);
    }

    // Suppression + emission, tracking which allows earned their keep.
    let mut used_entries: BTreeSet<usize> = BTreeSet::new();
    let mut out: Vec<Diagnostic> = Vec::new();
    for ctx in &mut ctxs {
        ctx.raw.sort_by_key(|f| (f.line, f.rule));
        for finding in ctx.ann.drain(..) {
            out.push(Diagnostic {
                file: ctx.rel.clone(),
                finding,
            });
        }
        let mut used_allows = vec![false; ctx.allows.len()];
        for finding in &ctx.raw {
            if let Some(entry) = config.match_allow(finding.rule, &ctx.rel) {
                used_entries.insert(entry);
                continue;
            }
            let suppressor = ctx.allows.iter().position(|a| {
                a.has_reason
                    && a.rule == finding.rule
                    && (finding.line == a.line || finding.line == a.line + 1)
            });
            if let Some(i) = suppressor {
                used_allows[i] = true;
                continue;
            }
            out.push(Diagnostic {
                file: ctx.rel.clone(),
                finding: finding.clone(),
            });
        }
        // ANN002 — a reasoned annotation that suppressed nothing is stale:
        // either the violation was fixed (delete the annotation) or the
        // annotation never matched (wrong rule / wrong line — fix it).
        if !config.is_allowed("ANN002", &ctx.rel) {
            for (i, a) in ctx.allows.iter().enumerate() {
                if a.has_reason
                    && !used_allows[i]
                    && !ctx.masked_lines.contains(&a.line)
                    && !ctx.masked_lines.contains(&(a.line + 1))
                {
                    out.push(Diagnostic {
                        file: ctx.rel.clone(),
                        finding: Finding {
                            rule: "ANN002",
                            line: a.line,
                            message: format!(
                                "stale allow({rule}): no {rule} finding on this line \
                                 or the next — the violation is gone, so delete the \
                                 annotation",
                                rule = a.rule
                            ),
                        },
                    });
                }
            }
        }
    }

    // ANN002 for rose-lint.toml [allow] entries nothing matched.
    if check_config_staleness {
        for (idx, entry) in config.allow_entries().iter().enumerate() {
            if !used_entries.contains(&idx) {
                out.push(Diagnostic {
                    file: "rose-lint.toml".into(),
                    finding: Finding {
                        rule: "ANN002",
                        line: entry.line,
                        message: format!(
                            "stale [allow] entry {rule} = \"{prefix}\": no {rule} \
                             finding under that path — delete the entry",
                            rule = entry.rule,
                            prefix = entry.prefix
                        ),
                    },
                });
            }
        }
    }

    out.sort_by(|a, b| {
        (&a.file, a.finding.line, a.finding.rule).cmp(&(&b.file, b.finding.line, b.finding.rule))
    });
    out
}

/// Lints one file's source text (single-file convenience over
/// [`lint_files`]; tier W sees only this file's call graph).
///
/// `rel_path` selects which rules are in scope (see
/// [`rules::applies_to`]); `all_rules` forces every rule in scope (used by
/// the self-test fixture). An annotation suppresses findings of its rule
/// on the annotation's own line and the line directly below it — and only
/// if it carries a reason.
pub fn lint_source(rel_path: &str, source: &str, config: &Config, all_rules: bool) -> Vec<Finding> {
    lint_files(
        &[(rel_path.to_string(), source.to_string())],
        config,
        all_rules,
    )
    .into_iter()
    .map(|d| d.finding)
    .collect()
}

/// The directories below the workspace root that are linted: the root
/// package's `src/` and every crate's `src/`. `target/`, `shims/` (stub
/// code for absent registry deps), tests, benches, and the lint fixtures
/// are all outside these roots by construction.
fn lint_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    roots
}

/// Recursively collects `.rs` files under `dir` into `out` (sorted set:
/// the lint's own output order must be deterministic, of course).
fn collect_rs(dir: &Path, out: &mut BTreeSet<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.insert(path);
        }
    }
}

/// Lints every source file in the workspace rooted at `root`, including
/// the ANN002 staleness check over `rose-lint.toml` `[allow]` entries.
///
/// # Errors
///
/// An unreadable source file is reported as an error string; findings are
/// never errors (they are the *output*).
pub fn lint_workspace(root: &Path, config: &Config) -> Result<Vec<Diagnostic>, String> {
    let mut paths = BTreeSet::new();
    for lint_root in lint_roots(root) {
        collect_rs(&lint_root, &mut paths);
    }
    let mut files = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        files.push((rel, source));
    }
    Ok(lint_files_inner(&files, config, false, true))
}

/// The seeded-violation fixture used by `--self-test` (and CI) to prove
/// the linter still detects every rule it claims to.
pub const SELF_TEST_FIXTURE: &str = include_str!("../fixtures/seeded.rs");

/// The companion fixture linted under a virtual `crates/rose-bridge/src/`
/// path, so the path-scoped interprocedural rules (PANIC002 roots) fire
/// in the self-test without touching the real bridge crate.
pub const SELF_TEST_BRIDGE_FIXTURE: &str = include_str!("../fixtures/seeded_bridge.rs");

/// Lints the embedded fixtures with every rule in scope and no allowlist.
/// The two files form one virtual workspace: `seeded_bridge.rs` sits on
/// the fault path and calls helpers defined in `seeded.rs`, which is how
/// the interprocedural rules get cross-file chains to flag.
pub fn lint_self_test_fixture() -> Vec<Diagnostic> {
    lint_files(
        &[
            (
                "crates/rose-lint/fixtures/seeded.rs".to_string(),
                SELF_TEST_FIXTURE.to_string(),
            ),
            (
                "crates/rose-bridge/src/seeded_bridge.rs".to_string(),
                SELF_TEST_BRIDGE_FIXTURE.to_string(),
            ),
        ],
        &Config::default(),
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_with_reason_suppresses_own_and_next_line() {
        let src = "\
// rose-lint: allow(PANIC001, the tag was validated two lines up)
let v = x.unwrap();
let w = y.unwrap();
";
        let found = lint_source("crates/rose-bridge/src/x.rs", src, &Config::default(), false);
        // Line 2 suppressed; line 3 still fires.
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
        assert_eq!(found[0].rule, "PANIC001");
    }

    #[test]
    fn annotation_without_reason_does_not_suppress_and_is_flagged() {
        let src = "// rose-lint: allow(PANIC001)\nlet v = x.unwrap();\n";
        let found = lint_source("crates/rose-bridge/src/x.rs", src, &Config::default(), false);
        let rules: Vec<&str> = found.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["ANN001", "PANIC001"]);
    }

    #[test]
    fn annotation_for_the_wrong_rule_does_not_suppress_and_goes_stale() {
        let src = "// rose-lint: allow(DET001, not the right rule)\nlet v = x.unwrap();\n";
        let found = lint_source("crates/rose-bridge/src/x.rs", src, &Config::default(), false);
        let rules: Vec<&str> = found.iter().map(|f| f.rule).collect();
        // The unwrap fires (wrong rule), and the DET001 allow — suppressing
        // nothing — is itself stale.
        assert_eq!(rules, vec!["ANN002", "PANIC001"]);
    }

    #[test]
    fn malformed_annotation_is_flagged() {
        let src = "// rose-lint: alow(PANIC001, typo)\nlet a = 1;\n";
        let found = lint_source("crates/rose-bridge/src/x.rs", src, &Config::default(), false);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "ANN001");
    }

    #[test]
    fn config_allowlist_exempts_whole_files() {
        let config = Config::parse(
            "[allow]\nDET001 = [\"crates/rose-bridge/src/sync.rs\"]\n\
             PROF001 = [\"crates/rose-bridge/src/sync.rs\"]\n",
        )
        .unwrap();
        let src = "let t = Instant::now();\n";
        assert!(lint_source("crates/rose-bridge/src/sync.rs", src, &config, false).is_empty());
        // Elsewhere the same read trips both the determinism rule and the
        // profiler-bypass rule.
        let elsewhere = lint_source("crates/rose-bridge/src/other.rs", src, &config, false);
        let rules: Vec<&str> = elsewhere.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["DET001", "PROF001"]);
    }

    #[test]
    fn ann002_flags_a_used_up_annotation() {
        // The unwrap was fixed, the annotation lingers: stale.
        let src = "// rose-lint: allow(PANIC001, tag validated above)\nlet v = x;\n";
        let found = lint_source("crates/rose-bridge/src/x.rs", src, &Config::default(), false);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "ANN002");
        assert!(found[0].message.contains("PANIC001"));
    }

    #[test]
    fn ann002_spares_annotations_in_test_code() {
        // Rules never fire inside #[cfg(test)], so an annotation there is
        // documentation, not a stale suppression.
        let src = "#[cfg(test)]\nmod tests {\n // rose-lint: allow(PANIC001, test helper)\n fn t() { x.unwrap(); }\n}\n";
        let found = lint_source("crates/rose-bridge/src/x.rs", src, &Config::default(), false);
        assert!(found.is_empty(), "unexpected: {found:?}");
    }

    #[test]
    fn stale_toml_entries_are_flagged_in_workspace_mode() {
        let dir = std::env::temp_dir().join(format!(
            "rose-lint-stale-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let src_dir = dir.join("src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(src_dir.join("lib.rs"), "pub fn clean() -> u8 { 0 }\n").unwrap();
        let config = Config::parse("[allow]\nDET001 = [\"src/lib.rs\"]\n").unwrap();
        let found = lint_workspace(&dir, &config).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].file, "rose-lint.toml");
        assert_eq!(found[0].finding.rule, "ANN002");
        assert!(found[0].finding.message.contains("src/lib.rs"));
    }

    #[test]
    fn used_toml_entries_are_not_stale() {
        let dir = std::env::temp_dir().join(format!(
            "rose-lint-used-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let src_dir = dir.join("src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("lib.rs"),
            "pub fn t() -> Instant { Instant::now() }\n",
        )
        .unwrap();
        let config =
            Config::parse("[allow]\nDET001 = [\"src\"]\nPROF001 = [\"src\"]\n").unwrap();
        let found = lint_workspace(&dir, &config).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(found.is_empty(), "unexpected: {found:?}");
    }

    #[test]
    fn self_test_fixture_trips_every_rule() {
        let findings = lint_self_test_fixture();
        for rule in ALL_RULES {
            assert!(
                findings.iter().any(|d| d.finding.rule == *rule),
                "fixture must contain a seeded {rule} violation; found {findings:?}"
            );
        }
        // And the fixture's negative half must NOT fire: the annotated
        // expect and the balanced span function are clean.
        assert!(
            !findings
                .iter()
                .any(|d| d.finding.rule == "PANIC001" && d.finding.message.contains("expect")),
            "the annotated expect() in the fixture must be suppressed"
        );
        // DET003 diagnostics carry the full entry-to-sink call chain.
        let det3 = findings
            .iter()
            .find(|d| d.finding.rule == "DET003")
            .expect("DET003 seeded");
        assert!(
            det3.finding.message.contains("Soc::step → "),
            "DET003 must print the call chain: {}",
            det3.finding.message
        );
        // PANIC002 lands at the out-of-root helper, with the chain from
        // the bridge fixture.
        let p2 = findings
            .iter()
            .find(|d| d.finding.rule == "PANIC002")
            .expect("PANIC002 seeded");
        assert_eq!(p2.file, "crates/rose-lint/fixtures/seeded.rs");
        assert!(p2.finding.message.contains("seeded_transport_recv"));
    }
}
