//! rose-lint: the workspace determinism & fault-safety contract, enforced.
//!
//! The RoSÉ reproduction promises bit-identical missions for identical
//! configs (see `rose::audit`). That promise is easy to break one line at
//! a time — a `HashMap` drain here, an `Instant::now()` there — so this
//! crate scans the workspace source with a hand-rolled Rust lexer
//! ([`lexer`]) and flags the seven contract violations a token stream can
//! reveal ([`rules`]):
//!
//! | rule     | violation                                             |
//! |----------|-------------------------------------------------------|
//! | DET001   | wall-clock reads (`Instant::now`, `SystemTime`)       |
//! | DET002   | unordered maps (`HashMap`/`HashSet`) in sim crates    |
//! | PANIC001 | `unwrap`/`expect`/`panic!` on transport/bridge paths  |
//! | TRACE001 | unpaired `span_begin*`/`span_end*` calls              |
//! | CAST001  | truncating `as` casts in cycle arithmetic             |
//! | SNAP001  | `..` rest patterns in `save_state`/`restore_state`    |
//! | PROF001  | `Instant::now`/`SystemTime::now` outside the profiler |
//!
//! Suppression is always explicit: file-level via `rose-lint.toml`
//! ([`config`]), or line-level via `// rose-lint: allow(RULE, reason)` —
//! the reason is mandatory, and an annotation without one is itself a
//! finding (ANN001).
//!
//! No dependencies, no `proc-macro`, no `syn`: the linter runs in an
//! offline container before anything else builds.

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{Config, ConfigError};
pub use rules::{Finding, ALL_RULES};

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One reported violation, with its file attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// The underlying finding.
    pub finding: Finding,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.finding.line, self.finding.rule, self.finding.message
        )
    }
}

/// A parsed `// rose-lint: allow(RULE, reason)` annotation.
#[derive(Debug)]
struct Allow {
    line: usize,
    rule: String,
    has_reason: bool,
}

/// Extracts allow annotations from a file's comments. A comment that
/// starts with `rose-lint:` but does not parse as `allow(RULE, reason)`
/// yields an ANN001 finding, as does one with an empty reason.
fn parse_allows(comments: &[(usize, String)]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for (line, text) in comments {
        let Some(rest) = text.strip_prefix("rose-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|inner| inner.strip_suffix(')'));
        let Some(inner) = parsed else {
            findings.push(Finding {
                rule: "ANN001",
                line: *line,
                message: format!(
                    "malformed annotation {text:?}; expected \
                     // rose-lint: allow(RULE, reason)"
                ),
            });
            continue;
        };
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        let has_reason = !reason.is_empty();
        if !has_reason {
            findings.push(Finding {
                rule: "ANN001",
                line: *line,
                message: format!(
                    "allow({rule}) without a reason; the reason is mandatory — \
                     state the invariant that makes the violation safe"
                ),
            });
        }
        allows.push(Allow {
            line: *line,
            rule: rule.to_string(),
            has_reason,
        });
    }
    (allows, findings)
}

/// Lints one file's source text.
///
/// `rel_path` selects which rules are in scope (see
/// [`rules::applies_to`]); `all_rules` forces every rule in scope (used by
/// the self-test fixture). An annotation suppresses findings of its rule
/// on the annotation's own line and the line directly below it — and only
/// if it carries a reason.
pub fn lint_source(rel_path: &str, source: &str, config: &Config, all_rules: bool) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let (allows, mut findings) = parse_allows(&lexed.comments);
    let raw = rules::run_rules(rel_path, &lexed, all_rules);
    for finding in raw {
        if config.is_allowed(finding.rule, rel_path) {
            continue;
        }
        let suppressed = allows.iter().any(|a| {
            a.has_reason
                && a.rule == finding.rule
                && (finding.line == a.line || finding.line == a.line + 1)
        });
        if !suppressed {
            findings.push(finding);
        }
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// The directories below the workspace root that are linted: the root
/// package's `src/` and every crate's `src/`. `target/`, `shims/` (stub
/// code for absent registry deps), tests, benches, and the lint fixtures
/// are all outside these roots by construction.
fn lint_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    roots
}

/// Recursively collects `.rs` files under `dir` into `out` (sorted set:
/// the lint's own output order must be deterministic, of course).
fn collect_rs(dir: &Path, out: &mut BTreeSet<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.insert(path);
        }
    }
}

/// Lints every source file in the workspace rooted at `root`.
///
/// # Errors
///
/// An unreadable source file is reported as an error string; findings are
/// never errors (they are the *output*).
pub fn lint_workspace(root: &Path, config: &Config) -> Result<Vec<Diagnostic>, String> {
    let mut files = BTreeSet::new();
    for lint_root in lint_roots(root) {
        collect_rs(&lint_root, &mut files);
    }
    let mut diagnostics = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        for finding in lint_source(&rel, &source, config, false) {
            diagnostics.push(Diagnostic {
                file: rel.clone(),
                finding,
            });
        }
    }
    Ok(diagnostics)
}

/// The seeded-violation fixture used by `--self-test` (and CI) to prove
/// the linter still detects every rule it claims to.
pub const SELF_TEST_FIXTURE: &str = include_str!("../fixtures/seeded.rs");

/// Lints the embedded fixture with every rule in scope and no allowlist.
pub fn lint_self_test_fixture() -> Vec<Finding> {
    lint_source(
        "crates/rose-lint/fixtures/seeded.rs",
        SELF_TEST_FIXTURE,
        &Config::default(),
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_with_reason_suppresses_own_and_next_line() {
        let src = "\
// rose-lint: allow(PANIC001, the tag was validated two lines up)
let v = x.unwrap();
let w = y.unwrap();
";
        let found = lint_source("crates/rose-bridge/src/x.rs", src, &Config::default(), false);
        // Line 2 suppressed; line 3 still fires.
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
        assert_eq!(found[0].rule, "PANIC001");
    }

    #[test]
    fn annotation_without_reason_does_not_suppress_and_is_flagged() {
        let src = "// rose-lint: allow(PANIC001)\nlet v = x.unwrap();\n";
        let found = lint_source("crates/rose-bridge/src/x.rs", src, &Config::default(), false);
        let rules: Vec<&str> = found.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["ANN001", "PANIC001"]);
    }

    #[test]
    fn annotation_for_the_wrong_rule_does_not_suppress() {
        let src = "// rose-lint: allow(DET001, not the right rule)\nlet v = x.unwrap();\n";
        let found = lint_source("crates/rose-bridge/src/x.rs", src, &Config::default(), false);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "PANIC001");
    }

    #[test]
    fn malformed_annotation_is_flagged() {
        let src = "// rose-lint: alow(PANIC001, typo)\nlet a = 1;\n";
        let found = lint_source("crates/rose-bridge/src/x.rs", src, &Config::default(), false);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "ANN001");
    }

    #[test]
    fn config_allowlist_exempts_whole_files() {
        let config = Config::parse(
            "[allow]\nDET001 = [\"crates/rose-bridge/src/sync.rs\"]\n\
             PROF001 = [\"crates/rose-bridge/src/sync.rs\"]\n",
        )
        .unwrap();
        let src = "let t = Instant::now();\n";
        assert!(lint_source("crates/rose-bridge/src/sync.rs", src, &config, false).is_empty());
        // Elsewhere the same read trips both the determinism rule and the
        // profiler-bypass rule.
        let elsewhere = lint_source("crates/rose-bridge/src/other.rs", src, &config, false);
        let rules: Vec<&str> = elsewhere.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["DET001", "PROF001"]);
    }

    #[test]
    fn self_test_fixture_trips_every_rule() {
        let findings = lint_self_test_fixture();
        for rule in ALL_RULES {
            assert!(
                findings.iter().any(|f| f.rule == *rule),
                "fixture must contain a seeded {rule} violation; found {findings:?}"
            );
        }
        // And the fixture's negative half must NOT fire: the annotated
        // unwrap and the balanced span function are clean.
        assert!(
            !findings
                .iter()
                .any(|f| f.rule == "PANIC001" && f.message.contains("expect")),
            "the annotated expect() in the fixture must be suppressed"
        );
    }
}
