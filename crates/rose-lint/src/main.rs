//! The rose-lint command line.
//!
//! ```text
//! rose-lint [--root DIR] [--config FILE] [--format text|json|github]
//!           [--self-test] [--list-rules]
//! ```
//!
//! * default: lint the workspace at `--root` (default `.`, which is the
//!   workspace root under `cargo run -p rose-lint`), honoring the
//!   `rose-lint.toml` allowlist.
//! * `--format`: `text` (default, `file:line: RULE message`), `json` (one
//!   document with `count` + `findings`), or `github` (GitHub Actions
//!   `::error` commands, so CI findings annotate the PR diff).
//! * `--self-test`: lint the embedded seeded-violation fixtures with every
//!   rule in scope. Exits 1 when every registered rule fired (the expected
//!   outcome, which CI asserts as a non-zero exit), 2 if any rule failed
//!   to fire (the linter itself is broken).
//! * `--list-rules`: print the rule table and exit 0.
//!
//! # Exit-code contract
//!
//! | code | meaning                                                     |
//! |------|-------------------------------------------------------------|
//! | 0    | clean: the lint ran and found nothing                       |
//! | 1    | findings: the lint ran and reported at least one violation  |
//! | 2    | broken: bad usage, unreadable file/config, or a self-test   |
//! |      | in which a registered rule failed to fire                   |
//!
//! CI distinguishes "the lint found a bug" (1) from "the lint could not
//! do its job" (2); conflating them would let an IO error masquerade as a
//! finding. The contract is pinned by `tests/cli.rs`.

use rose_lint::{lint_self_test_fixture, lint_workspace, output, Config, Format, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: rose-lint [--root DIR] [--config FILE] [--format text|json|github] \
         [--self-test] [--list-rules]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut self_test = false;
    let mut list_rules = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = it.next().unwrap_or_else(|| usage()).into(),
            "--config" => config_path = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--format" => {
                let value = it.next().unwrap_or_else(|| usage());
                format = Format::parse(&value).unwrap_or_else(|| usage());
            }
            "--self-test" => self_test = true,
            "--list-rules" => list_rules = true,
            _ => usage(),
        }
    }

    if list_rules {
        println!("tier L (per-file token stream):");
        println!("  DET001   wall-clock reads (Instant::now / SystemTime) in simulation logic");
        println!("  DET002   HashMap/HashSet in simulation crates (use BTreeMap/BTreeSet)");
        println!("  PANIC001 unwrap/expect/panic! on transport/bridge/synchronizer paths");
        println!("  FAULT001 discarded Transport::send result on the bridge fault path");
        println!("  TRACE001 unpaired span_begin*/span_end* calls within a function");
        println!("  CAST001  truncating `as` casts in cycle arithmetic (widen via u128)");
        println!("  SNAP001  `..` rest patterns in save_state/restore_state (snapshot hidden state)");
        println!("  PROF001  direct Instant::now/SystemTime::now outside the profiler module");
        println!("tier W (workspace call graph):");
        println!("  DET003   nondeterminism sink reachable from a sim entry point (chain printed)");
        println!("  PANIC002 panic site reachable from the transport/bridge fault path");
        println!("  SNAP002  struct field absent from both save_state and restore_state bodies");
        println!("annotations:");
        println!("  ANN001   malformed or reasonless rose-lint allow annotation");
        println!("  ANN002   stale allow: annotation or rose-lint.toml entry suppressing nothing");
        return ExitCode::SUCCESS;
    }

    if self_test {
        let diagnostics = lint_self_test_fixture();
        print!("{}", output::render(&diagnostics, format));
        let mut broken = false;
        for rule in ALL_RULES {
            let hits = diagnostics.iter().filter(|d| d.finding.rule == *rule).count();
            if hits == 0 {
                eprintln!("self-test BROKEN: rule {rule} did not fire on the seeded fixture");
                broken = true;
            } else {
                eprintln!("self-test: {rule} fired {hits}x");
            }
        }
        if broken {
            return ExitCode::from(2);
        }
        eprintln!(
            "self-test: all {} rules detected their seeded violations \
             (exiting non-zero, as a lint of this fixture must)",
            ALL_RULES.len()
        );
        return ExitCode::FAILURE;
    }

    let config_path = config_path.unwrap_or_else(|| root.join("rose-lint.toml"));
    let config = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match lint_workspace(&root, &config) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            if format == Format::Json {
                print!("{}", output::render(&diagnostics, format));
            } else {
                eprintln!("rose-lint: workspace clean");
            }
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            print!("{}", output::render(&diagnostics, format));
            eprintln!("rose-lint: {} violation(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
