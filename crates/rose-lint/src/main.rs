//! The rose-lint command line.
//!
//! ```text
//! rose-lint [--root DIR] [--config FILE] [--self-test] [--list-rules]
//! ```
//!
//! * default: lint the workspace at `--root` (default `.`, which is the
//!   workspace root under `cargo run -p rose-lint`), honoring the
//!   `rose-lint.toml` allowlist. Exit 0 when clean, 1 on any violation.
//! * `--self-test`: lint the embedded seeded-violation fixture with every
//!   rule in scope. Exits 1 when every rule fired (the fixture's
//!   violations were detected — the expected outcome, which CI asserts as
//!   a non-zero exit), 2 if any rule failed to fire (the linter itself is
//!   broken).
//! * `--list-rules`: print the rule table and exit 0.

use rose_lint::{lint_self_test_fixture, lint_workspace, Config, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: rose-lint [--root DIR] [--config FILE] [--self-test] [--list-rules]");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut self_test = false;
    let mut list_rules = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = it.next().unwrap_or_else(|| usage()).into(),
            "--config" => config_path = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--self-test" => self_test = true,
            "--list-rules" => list_rules = true,
            _ => usage(),
        }
    }

    if list_rules {
        println!("DET001   wall-clock reads (Instant::now / SystemTime) in simulation logic");
        println!("DET002   HashMap/HashSet in simulation crates (use BTreeMap/BTreeSet)");
        println!("PANIC001 unwrap/expect/panic! on transport/bridge/synchronizer paths");
        println!("TRACE001 unpaired span_begin*/span_end* calls within a function");
        println!("CAST001  truncating `as` casts in cycle arithmetic (widen via u128)");
        println!("SNAP001  `..` rest patterns in save_state/restore_state (snapshot hidden state)");
        println!("ANN001   malformed or reasonless rose-lint allow annotation");
        println!("PROF001  direct Instant::now/SystemTime::now outside the profiler module");
        return ExitCode::SUCCESS;
    }

    if self_test {
        let findings = lint_self_test_fixture();
        for f in &findings {
            println!("fixtures/seeded.rs:{}: {} {}", f.line, f.rule, f.message);
        }
        let mut broken = false;
        for rule in ALL_RULES {
            let hits = findings.iter().filter(|f| f.rule == *rule).count();
            if hits == 0 {
                eprintln!("self-test BROKEN: rule {rule} did not fire on the seeded fixture");
                broken = true;
            } else {
                println!("self-test: {rule} fired {hits}x");
            }
        }
        if broken {
            return ExitCode::from(2);
        }
        println!(
            "self-test: all {} rules detected their seeded violations \
             (exiting non-zero, as a lint of this fixture must)",
            ALL_RULES.len()
        );
        return ExitCode::FAILURE;
    }

    let config_path = config_path.unwrap_or_else(|| root.join("rose-lint.toml"));
    let config = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match lint_workspace(&root, &config) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            println!("rose-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for d in &diagnostics {
                println!("{d}");
            }
            eprintln!("rose-lint: {} violation(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
