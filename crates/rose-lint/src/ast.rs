//! Tier W's lightweight AST: items, not expressions.
//!
//! The workspace rules (DET003, PANIC002, SNAP002) need to know *which
//! functions exist, what they call, and what structs declare* — nothing
//! more. This module parses the [`crate::lexer`] token stream into exactly
//! that: function definitions with their enclosing `impl`/`trait` type and
//! the call expressions inside their bodies, struct definitions with named
//! fields, and enum names. There is deliberately no expression grammar, no
//! type resolution, and no borrow anything: the parser is a single linear
//! pass that tracks brace depth and an impl-context stack.
//!
//! Like the lexer, the parser is forgiving by construction — a construct it
//! does not understand is skipped token-by-token. A linter must never fail
//! the build because *it* could not parse something `rustc` accepted.
//!
//! Known, documented approximations (see DESIGN.md §4g):
//!
//! - Nested `fn` items inside a function body are not separate nodes; their
//!   calls are attributed to the enclosing function (an over-approximation,
//!   safe for reachability).
//! - Enum variants are not parsed; enums contribute only their name to the
//!   symbol table.
//! - Tuple and unit structs have no named fields and are skipped by
//!   SNAP002 (their codecs cannot silently miss a field by name).

use crate::lexer::{Tok, Token};

/// One call expression found inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Path segments, e.g. `["Soc", "run_granted"]` for
    /// `Soc::run_granted(...)`, or `["helper"]` for a bare `helper(...)`.
    /// Method calls carry a single segment: the method name.
    pub segments: Vec<String>,
    /// True for `.name(...)` receiver calls (resolved by name alone).
    pub method: bool,
    /// 1-based source line of the call.
    pub line: usize,
}

impl Call {
    /// The final path segment — the function name being invoked.
    pub fn name(&self) -> &str {
        self.segments.last().map(String::as_str).unwrap_or("")
    }
}

/// One function definition (free fn, inherent/trait `impl` method, or
/// trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The enclosing `impl`/`trait` type name, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// True when the definition sits inside `#[cfg(test)]` / `#[test]`
    /// code (excluded from the call graph — the contract governs
    /// simulation logic, not tests).
    pub is_test: bool,
    /// Token-index range of the body including both braces, or `None` for
    /// bodiless declarations (trait method signatures).
    pub body: Option<(usize, usize)>,
    /// Every call expression in the body, in source order.
    pub calls: Vec<Call>,
}

impl FnDef {
    /// `Type::name` for methods, `name` for free functions.
    pub fn qname(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One named field of a struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// The field's name.
    pub name: String,
    /// 1-based line of the field declaration.
    pub line: usize,
}

/// One struct definition with named fields (tuple/unit structs are
/// recorded with an empty field list).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Declared named fields, in source order.
    pub fields: Vec<Field>,
    /// True when declared inside test-only code.
    pub is_test: bool,
}

/// The parsed items of one file.
#[derive(Debug, Default)]
pub struct Ast {
    /// Every function definition.
    pub fns: Vec<FnDef>,
    /// Every struct definition.
    pub structs: Vec<StructDef>,
    /// Names of enum definitions (variants are not parsed).
    pub enums: Vec<String>,
}

/// Parses the items of one lexed file. `mask[i]` marks token `i` as
/// test-only (see [`crate::rules::test_mask`]).
pub fn parse(tokens: &[Token], mask: &[bool]) -> Ast {
    Parser {
        tokens,
        mask,
        ast: Ast::default(),
    }
    .run()
}

struct Parser<'a> {
    tokens: &'a [Token],
    mask: &'a [bool],
    ast: Ast,
}

fn ident(tok: Option<&Token>) -> Option<&str> {
    match tok.map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tok: Option<&Token>, p: &str) -> bool {
    matches!(tok.map(|t| &t.tok), Some(Tok::Punct(q)) if *q == p)
}

impl<'a> Parser<'a> {
    fn run(mut self) -> Ast {
        // Stack of `(brace_depth_of_body, type_name)` impl/trait contexts.
        let mut ctx: Vec<(i32, String)> = Vec::new();
        let mut depth = 0i32;
        let mut i = 0usize;
        while i < self.tokens.len() {
            match &self.tokens[i].tok {
                Tok::Punct("{") => {
                    depth += 1;
                    i += 1;
                }
                Tok::Punct("}") => {
                    depth -= 1;
                    while ctx.last().is_some_and(|(d, _)| *d > depth) {
                        ctx.pop();
                    }
                    i += 1;
                }
                Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                    if let Some((ty, body_open)) = self.parse_impl_header(i) {
                        depth += 1; // the consumed `{`
                        ctx.push((depth, ty));
                        i = body_open + 1;
                    } else {
                        i += 1;
                    }
                }
                Tok::Ident(kw) if kw == "fn" => {
                    let self_ty = ctx.last().map(|(_, ty)| ty.clone());
                    i = self.parse_fn(i, self_ty);
                }
                Tok::Ident(kw) if kw == "struct" => {
                    i = self.parse_struct(i);
                }
                Tok::Ident(kw) if kw == "enum" => {
                    if let Some(name) = ident(self.tokens.get(i + 1)) {
                        self.ast.enums.push(name.to_string());
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        self.ast
    }

    /// Parses `impl<G> Trait for path::Type<G> where ... {` (or a `trait
    /// Name {` header) starting at the `impl`/`trait` keyword. Returns the
    /// implemented type's final path segment and the index of the body
    /// `{`, or `None` if no body brace is found (e.g. `impl Foo;` never —
    /// but the parser must survive anything).
    fn parse_impl_header(&self, start: usize) -> Option<(String, usize)> {
        let mut j = start + 1;
        let mut last_seg: Option<String> = None;
        while j < self.tokens.len() {
            match &self.tokens[j].tok {
                Tok::Punct("<") => j = self.skip_angle(j),
                Tok::Punct("{") => return last_seg.map(|ty| (ty, j)),
                // A `;` before any `{` means this was not a block item.
                Tok::Punct(";") => return None,
                Tok::Ident(s) if s == "for" => {
                    // `impl Trait for Type`: the left side was the trait.
                    last_seg = None;
                    j += 1;
                }
                Tok::Ident(s) if s == "where" => {
                    // Skip the clause up to the body brace, tracking
                    // parens/brackets so `where F: Fn(u8)` survives.
                    let mut d = 0i32;
                    while j < self.tokens.len() {
                        match &self.tokens[j].tok {
                            Tok::Punct("(") | Tok::Punct("[") => d += 1,
                            Tok::Punct(")") | Tok::Punct("]") => d -= 1,
                            Tok::Punct("{") if d == 0 => {
                                return last_seg.map(|ty| (ty, j));
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    return None;
                }
                Tok::Ident(s) => {
                    last_seg = Some(s.clone());
                    j += 1;
                }
                _ => j += 1,
            }
        }
        None
    }

    /// Skips a balanced `<...>` group starting at the `<`; returns the
    /// index just past the matching `>`. `->` arrows inside (e.g.
    /// `Box<dyn Fn() -> u8>`) do not close the group.
    fn skip_angle(&self, start: usize) -> usize {
        let mut d = 0i32;
        let mut j = start;
        while j < self.tokens.len() {
            match &self.tokens[j].tok {
                Tok::Punct("<") => d += 1,
                Tok::Punct(">") if !is_punct(self.tokens.get(j.wrapping_sub(1)), "-") => {
                    d -= 1;
                    if d == 0 {
                        return j + 1;
                    }
                }
                // Angle groups never span these; bail out so a stray `<`
                // (comparison operator) cannot swallow the file.
                Tok::Punct(";") | Tok::Punct("{") => return j,
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Parses a `fn` item starting at the `fn` keyword; returns the index
    /// to continue scanning from (just past the body, or past the `;`).
    fn parse_fn(&mut self, start: usize, self_ty: Option<String>) -> usize {
        let line = self.tokens[start].line;
        let Some(name) = ident(self.tokens.get(start + 1)) else {
            return start + 1;
        };
        let name = name.to_string();
        // Scan the signature for the body `{` or a bodiless `;`, tracking
        // paren/bracket depth so defaults like `[u8; 4]` don't end it.
        let mut j = start + 1;
        let mut d = 0i32;
        let body_open = loop {
            match self.tokens.get(j).map(|t| &t.tok) {
                None => break None,
                Some(Tok::Punct("(")) | Some(Tok::Punct("[")) => d += 1,
                Some(Tok::Punct(")")) | Some(Tok::Punct("]")) => d -= 1,
                Some(Tok::Punct(";")) if d == 0 => break None,
                Some(Tok::Punct("{")) if d == 0 => break Some(j),
                _ => {}
            }
            j += 1;
        };
        let Some(body_open) = body_open else {
            self.ast.fns.push(FnDef {
                name,
                self_ty,
                line,
                is_test: self.mask.get(start).copied().unwrap_or(false),
                body: None,
                calls: Vec::new(),
            });
            return j + 1;
        };
        let body_end = self.skip_braces(body_open);
        let calls = self.extract_calls(body_open, body_end);
        self.ast.fns.push(FnDef {
            name,
            self_ty,
            line,
            is_test: self.mask.get(start).copied().unwrap_or(false),
            body: Some((body_open, body_end)),
            calls,
        });
        body_end
    }

    /// Returns the index just past the brace-balanced region opened at
    /// `open` (which must point at a `{`).
    fn skip_braces(&self, open: usize) -> usize {
        let mut d = 0i32;
        let mut j = open;
        while j < self.tokens.len() {
            match &self.tokens[j].tok {
                Tok::Punct("{") => d += 1,
                Tok::Punct("}") => {
                    d -= 1;
                    if d == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Extracts every call expression in the token range `[start, end)`.
    fn extract_calls(&self, start: usize, end: usize) -> Vec<Call> {
        let mut calls = Vec::new();
        let mut k = start;
        while k < end {
            let Some(name) = ident(self.tokens.get(k)) else {
                k += 1;
                continue;
            };
            // Skip keyword lookalikes and nested definitions: `fn name(`,
            // `if cond (`, `while let (`, `match x {`, `for x in iter(`.
            if matches!(
                name,
                "fn" | "if" | "while" | "match" | "for" | "loop" | "return" | "in" | "let" | "move"
            ) || ident(self.tokens.get(k.wrapping_sub(1))) == Some("fn")
            {
                k += 1;
                continue;
            }
            // `name(` — plain call; `name::<T>(` — turbofish call.
            let after = if is_punct(self.tokens.get(k + 1), "(") {
                Some(k + 1)
            } else if is_punct(self.tokens.get(k + 1), "::")
                && is_punct(self.tokens.get(k + 2), "<")
            {
                let past = self.skip_angle(k + 2);
                is_punct(self.tokens.get(past), "(").then_some(past)
            } else {
                None
            };
            let Some(_) = after else {
                k += 1;
                continue;
            };
            let line = self.tokens[k].line;
            if is_punct(self.tokens.get(k.wrapping_sub(1)), ".") {
                calls.push(Call {
                    segments: vec![name.to_string()],
                    method: true,
                    line,
                });
            } else {
                // Walk the `a::b::name` path backwards.
                let mut segments = vec![name.to_string()];
                let mut j = k;
                while j >= 2
                    && is_punct(self.tokens.get(j - 1), "::")
                    && ident(self.tokens.get(j - 2)).is_some()
                {
                    segments.push(ident(self.tokens.get(j - 2)).unwrap().to_string());
                    j -= 2;
                }
                segments.reverse();
                calls.push(Call {
                    segments,
                    method: false,
                    line,
                });
            }
            k += 1;
        }
        calls
    }

    /// Parses a `struct` item starting at the keyword; returns the index
    /// to continue from.
    fn parse_struct(&mut self, start: usize) -> usize {
        let line = self.tokens[start].line;
        let is_test = self.mask.get(start).copied().unwrap_or(false);
        let Some(name) = ident(self.tokens.get(start + 1)) else {
            return start + 1;
        };
        let name = name.to_string();
        let mut j = start + 2;
        if is_punct(self.tokens.get(j), "<") {
            j = self.skip_angle(j);
        }
        // `where` clause before the body.
        while ident(self.tokens.get(j)) == Some("where") {
            while j < self.tokens.len() && !is_punct(self.tokens.get(j), "{") {
                j += 1;
            }
        }
        if is_punct(self.tokens.get(j), ";") {
            // Unit struct.
            self.ast.structs.push(StructDef {
                name,
                line,
                fields: Vec::new(),
                is_test,
            });
            return j + 1;
        }
        if is_punct(self.tokens.get(j), "(") {
            // Tuple struct: skip the parens (and trailing `;`).
            let mut d = 0i32;
            while j < self.tokens.len() {
                match &self.tokens[j].tok {
                    Tok::Punct("(") => d += 1,
                    Tok::Punct(")") => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            self.ast.structs.push(StructDef {
                name,
                line,
                fields: Vec::new(),
                is_test,
            });
            return j + 1;
        }
        if !is_punct(self.tokens.get(j), "{") {
            return j;
        }
        let body_end = self.skip_braces(j);
        let fields = self.parse_fields(j + 1, body_end.saturating_sub(1));
        self.ast.structs.push(StructDef {
            name,
            line,
            fields,
            is_test,
        });
        body_end
    }

    /// Parses named fields in the token range `[start, end)` (the inside
    /// of a struct body): `#[attr]* pub(..)? name: Type,`.
    fn parse_fields(&self, start: usize, end: usize) -> Vec<Field> {
        let mut fields = Vec::new();
        let mut k = start;
        while k < end {
            // Skip attributes.
            while is_punct(self.tokens.get(k), "#") && is_punct(self.tokens.get(k + 1), "[") {
                let mut d = 0i32;
                while k < end {
                    match &self.tokens[k].tok {
                        Tok::Punct("[") => d += 1,
                        Tok::Punct("]") => {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            // Skip visibility.
            if ident(self.tokens.get(k)) == Some("pub") {
                k += 1;
                if is_punct(self.tokens.get(k), "(") {
                    let mut d = 0i32;
                    while k < end {
                        match &self.tokens[k].tok {
                            Tok::Punct("(") => d += 1,
                            Tok::Punct(")") => {
                                d -= 1;
                                if d == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
            let (Some(name), true) = (ident(self.tokens.get(k)), is_punct(self.tokens.get(k + 1), ":"))
            else {
                // Not a field start; resynchronize at the next comma.
                while k < end && !is_punct(self.tokens.get(k), ",") {
                    k += 1;
                }
                k += 1;
                continue;
            };
            fields.push(Field {
                name: name.to_string(),
                line: self.tokens[k].line,
            });
            // Skip the type up to the field-separating comma, tracking
            // every bracket kind (incl. `<>` with the `->` guard).
            k += 2;
            let mut d = 0i32;
            while k < end {
                match &self.tokens[k].tok {
                    Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => d += 1,
                    Tok::Punct(")") | Tok::Punct("]") | Tok::Punct("}") => d -= 1,
                    Tok::Punct("<") => d += 1,
                    Tok::Punct(">") if !is_punct(self.tokens.get(k.wrapping_sub(1)), "-") => {
                        d -= 1;
                    }
                    Tok::Punct(",") if d == 0 => {
                        k += 1;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn parse_src(src: &str) -> Ast {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        parse(&lexed.tokens, &mask)
    }

    #[test]
    fn free_fn_with_calls() {
        let ast = parse_src("fn run() {\n helper();\n other::deep(x);\n y.method(z);\n}");
        assert_eq!(ast.fns.len(), 1);
        let f = &ast.fns[0];
        assert_eq!(f.name, "run");
        assert_eq!(f.self_ty, None);
        let calls: Vec<(String, bool)> = f
            .calls
            .iter()
            .map(|c| (c.segments.join("::"), c.method))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("helper".into(), false),
                ("other::deep".into(), false),
                ("method".into(), true),
            ]
        );
    }

    #[test]
    fn impl_methods_carry_self_ty() {
        let ast = parse_src(
            "impl Soc {\n pub fn step(&mut self) { self.tick(); }\n}\n\
             impl fmt::Debug for Soc {\n fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write(f) }\n}",
        );
        let names: Vec<String> = ast.fns.iter().map(|f| f.qname()).collect();
        assert_eq!(names, vec!["Soc::step", "Soc::fmt"]);
    }

    #[test]
    fn generic_impl_and_where_clause() {
        let ast = parse_src(
            "impl<E: EnvSide, R: RtlSide> Synchronizer<E, R> where E: Send {\n fn run_syncs(&mut self) {}\n}",
        );
        assert_eq!(ast.fns[0].qname(), "Synchronizer::run_syncs");
    }

    #[test]
    fn trait_default_methods_and_decls() {
        let ast = parse_src(
            "trait RtlSide {\n fn grant(&mut self, c: u64);\n fn halted(&self) -> bool { false }\n}",
        );
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].qname(), "RtlSide::grant");
        assert!(ast.fns[0].body.is_none());
        assert_eq!(ast.fns[1].qname(), "RtlSide::halted");
        assert!(ast.fns[1].body.is_some());
    }

    #[test]
    fn struct_fields_with_attrs_vis_and_generics() {
        let ast = parse_src(
            "pub struct Recorder<T> {\n #[doc(hidden)]\n pub ticks: u64,\n pub(crate) buf: Vec<Box<dyn Fn(u8) -> u8>>,\n last: Option<(u32, T)>,\n}",
        );
        assert_eq!(ast.structs.len(), 1);
        let fields: Vec<&str> = ast.structs[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fields, vec!["ticks", "buf", "last"]);
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let ast = parse_src("struct Stopwatch(Instant);\nstruct Marker;\n");
        assert_eq!(ast.structs.len(), 2);
        assert!(ast.structs.iter().all(|s| s.fields.is_empty()));
    }

    #[test]
    fn test_code_is_marked() {
        let ast = parse_src(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn helper() {}\n #[test]\n fn check() {}\n}",
        );
        let flags: Vec<(String, bool)> = ast.fns.iter().map(|f| (f.name.clone(), f.is_test)).collect();
        assert_eq!(
            flags,
            vec![
                ("live".into(), false),
                ("helper".into(), true),
                ("check".into(), true),
            ]
        );
    }

    #[test]
    fn turbofish_calls_resolve_to_final_segment() {
        let ast = parse_src("fn f() {\n let v = items.collect::<Vec<u8>>();\n parse::<u32>(s);\n}");
        let calls: Vec<&str> = ast.fns[0].calls.iter().map(|c| c.name()).collect();
        assert_eq!(calls, vec!["collect", "parse"]);
    }

    #[test]
    fn enums_contribute_their_name() {
        let ast = parse_src("enum SyncMode { Sequential, Parallel }");
        assert_eq!(ast.enums, vec!["SyncMode"]);
        assert!(ast.fns.is_empty());
    }
}
