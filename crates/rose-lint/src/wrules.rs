//! Tier W: the interprocedural workspace rules.
//!
//! Where tier L ([`crate::rules`]) pattern-matches one file's token
//! stream, tier W runs over the [`crate::workspace::Workspace`] call
//! graph and reasons about *reachability*:
//!
//! - **DET003** — determinism taint: any function transitively reachable
//!   from a sim-side entry point (`Soc::step`, `UavSim::step_frames`,
//!   `Synchronizer::run_*`, ... — configurable via `[rule.DET003]
//!   entry_points`) that reaches a wall-clock read, an entropy-seeded RNG,
//!   or `HashMap`/`HashSet` unordered iteration is flagged, with the full
//!   call chain in the diagnostic.
//! - **PANIC002** — the PANIC001 surface extended through the call graph:
//!   a helper *outside* the transport/bridge files that `unwrap()`s is
//!   caught when it is reachable from a function defined inside them.
//! - **SNAP002** — snapshot field coverage: for every type with a
//!   `save_state`/`restore_state` pair, each declared struct field must be
//!   mentioned in at least one of the two bodies; a field named in neither
//!   is hidden state the codec silently drops (the semantic complement of
//!   SNAP001's `..`-pattern ban).
//!
//! Findings land at the *sink* (the offending line in the offending
//! file), so the existing `// rose-lint: allow(RULE, reason)` annotation
//! and `rose-lint.toml` machinery suppress them like any tier L finding.

use crate::config::Config;
use crate::rules::{path_in, Finding, FAULT_PATH_PREFIXES, SIM_CRATES};
use crate::workspace::Workspace;
use std::collections::BTreeMap;

/// Files tier W builds its call graph from: the sim crates, the trace
/// crate (digest-adjacent), and the root package. `crates/bench` and the
/// linter itself are host-side tooling and stay outside the graph.
pub const GRAPH_SCOPE: &[&str] = &[
    "crates/sim-core/src",
    "crates/envsim/src",
    "crates/socsim/src",
    "crates/dnn/src",
    "crates/flightctl/src",
    "crates/rose/src",
    "crates/rose-bridge/src",
    "crates/trace/src",
    "src",
];

/// DET003's default sim-side entry points (overridable via
/// `[rule.DET003] entry_points`). Everything the synchronizer drives on
/// the simulated-time axis: the SoC cycle loop, the environment frame
/// loop, and the synchronizer's own quantum loop.
pub const DET003_DEFAULT_ENTRY_POINTS: &[&str] = &[
    "Soc::step",
    "Soc::run_*",
    "UavSim::step_*",
    "UavSim::handle",
    "CoSimEnv::step_*",
    "Synchronizer::run_*",
    "Synchronizer::step_*",
];

/// True when `rel_path` participates in the tier W call graph.
pub fn in_graph_scope(rel_path: &str) -> bool {
    path_in(rel_path, GRAPH_SCOPE)
}

/// Runs every tier W rule; returns `(file index, finding)` pairs.
/// `all_rules` (self-test) skips the per-rule path scoping so the seeded
/// fixture can live under `crates/rose-lint/fixtures/`.
pub fn run_workspace_rules(
    ws: &Workspace,
    config: &Config,
    all_rules: bool,
) -> Vec<(usize, Finding)> {
    let mut findings = Vec::new();
    det003(ws, config, &mut findings);
    panic002(ws, config, &mut findings);
    snap002(ws, all_rules, &mut findings);
    findings
}

/// DET003 — determinism taint from sim entry points to nondeterminism
/// sinks, with the call chain printed.
fn det003(ws: &Workspace, config: &Config, out: &mut Vec<(usize, Finding)>) {
    let default_entries: Vec<String> = DET003_DEFAULT_ENTRY_POINTS
        .iter()
        .map(|s| s.to_string())
        .collect();
    let patterns = config
        .rule_list("DET003", "entry_points")
        .unwrap_or(&default_entries);
    let mut entries = Vec::new();
    for pattern in patterns {
        entries.extend(ws.match_entry(pattern));
    }
    let parents = ws.reachable(&entries);
    for &id in parents.keys() {
        let f = &ws.fns[id];
        for sink in &f.sinks {
            let chain = ws.chain(&parents, id);
            out.push((
                f.file,
                Finding {
                    rule: "DET003",
                    line: sink.line,
                    message: format!(
                        "{what} is reachable from a sim-side entry point; call chain: \
                         {chain} → {what}. Simulated state must not depend on host \
                         time, entropy, or unordered iteration — derive it from \
                         cycles/frames/SimRng, or annotate with \
                         // rose-lint: allow(DET003, reason)",
                        what = sink.what
                    ),
                },
            ));
        }
    }
}

/// PANIC002 — panic sites outside the fault-path files that are reachable
/// from functions defined inside them.
fn panic002(ws: &Workspace, config: &Config, out: &mut Vec<(usize, Finding)>) {
    let default_roots: Vec<String> = FAULT_PATH_PREFIXES.iter().map(|s| s.to_string()).collect();
    let root_prefixes = config
        .rule_list("PANIC002", "roots")
        .unwrap_or(&default_roots);
    let prefix_strs: Vec<&str> = root_prefixes.iter().map(String::as_str).collect();
    let roots: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| path_in(&ws.files[f.file], &prefix_strs))
        .map(|(id, _)| id)
        .collect();
    let parents = ws.reachable(&roots);
    for &id in parents.keys() {
        let f = &ws.fns[id];
        if path_in(&ws.files[f.file], &prefix_strs) {
            // Panic sites inside the fault-path files are PANIC001's job.
            continue;
        }
        for site in &f.panics {
            let chain = ws.chain(&parents, id);
            out.push((
                f.file,
                Finding {
                    rule: "PANIC002",
                    line: site.line,
                    message: format!(
                        "{what} is reachable from the transport/bridge path; call \
                         chain: {chain} → {what}. A panic here deadlocks the \
                         lockstep peer mid-quantum — return an error / latch a \
                         fault, or annotate with // rose-lint: allow(PANIC002, reason)",
                        what = site.what
                    ),
                },
            ));
        }
    }
}

/// SNAP002 — snapshot field coverage for every `save_state`/`restore_state`
/// pair.
fn snap002(ws: &Workspace, all_rules: bool, out: &mut Vec<(usize, Finding)>) {
    // Collect, per impl type, the save/restore bodies' identifier sets.
    let mut pairs: BTreeMap<&str, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        let Some(ty) = f.self_ty.as_deref() else {
            continue;
        };
        if f.body_idents.is_none() {
            continue;
        }
        let slot = pairs.entry(ty).or_default();
        match f.name.as_str() {
            "save_state" => slot.0.push(id),
            "restore_state" => slot.1.push(id),
            _ => {}
        }
    }
    for (ty, (saves, restores)) in pairs {
        if saves.is_empty() || restores.is_empty() {
            // Not a pair: a lone save_state (or an assoc-fn-only restore
            // codec on a remote type) has no coverage contract here.
            continue;
        }
        // Resolve the struct: same file as the save fn first, then a
        // unique workspace-wide match; ambiguity means we stay silent
        // (conservative — no false positives on name collisions).
        let save_file = ws.fns[saves[0]].file;
        let candidates: Vec<&crate::workspace::StructNode> =
            ws.structs.iter().filter(|s| s.name == ty).collect();
        let strukt = match candidates.len() {
            0 => continue,
            1 => candidates[0],
            _ => match candidates.iter().find(|s| s.file == save_file) {
                Some(s) => *s,
                None => continue,
            },
        };
        if !all_rules && !path_in(&ws.files[strukt.file], SIM_CRATES)
            && !path_in(&ws.files[strukt.file], &["crates/trace/src"])
        {
            continue;
        }
        let mut mentioned: std::collections::BTreeSet<&str> = Default::default();
        for &id in saves.iter().chain(&restores) {
            if let Some(idents) = &ws.fns[id].body_idents {
                mentioned.extend(idents.iter().map(String::as_str));
            }
        }
        for field in &strukt.fields {
            if !mentioned.contains(field.name.as_str()) {
                out.push((
                    strukt.file,
                    Finding {
                        rule: "SNAP002",
                        line: field.line,
                        message: format!(
                            "field `{field}` of `{ty}` appears in neither \
                             {ty}::save_state nor {ty}::restore_state — hidden \
                             state the snapshot silently drops; serialize it, bind \
                             it to `_` in an exhaustive destructuring, or annotate \
                             the field with // rose-lint: allow(SNAP002, reason) if \
                             it is deliberately host-side (DESIGN.md §4f)",
                            field = field.name
                        ),
                    },
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, Lexed};

    fn run(sources: &[(&str, &str)], config: &Config) -> Vec<(String, Finding)> {
        let lexed: Vec<(String, Lexed)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), lex(s)))
            .collect();
        let refs: Vec<(String, &Lexed)> = lexed.iter().map(|(p, l)| (p.clone(), l)).collect();
        let ws = Workspace::build(&refs, &[]);
        run_workspace_rules(&ws, config, true)
            .into_iter()
            .map(|(file, f)| (ws.files[file].clone(), f))
            .collect()
    }

    #[test]
    fn det003_prints_the_full_call_chain() {
        let found = run(
            &[
                (
                    "crates/socsim/src/soc.rs",
                    "impl Soc {\n pub fn step(&mut self) { tick_helper(); }\n}",
                ),
                (
                    "crates/socsim/src/util.rs",
                    "pub fn tick_helper() { deep_clock(); }\n\
                     fn deep_clock() -> u64 { Instant::now().elapsed().as_micros() as u64 }",
                ),
            ],
            &Config::default(),
        );
        let det: Vec<_> = found.iter().filter(|(_, f)| f.rule == "DET003").collect();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].0, "crates/socsim/src/util.rs");
        assert!(
            det[0].1.message.contains("Soc::step → tick_helper → deep_clock"),
            "chain missing from: {}",
            det[0].1.message
        );
    }

    #[test]
    fn det003_ignores_unreachable_sinks() {
        let found = run(
            &[(
                "crates/socsim/src/soc.rs",
                "impl Soc {\n pub fn step(&mut self) {}\n}\n\
                 fn never_called() { let t = Instant::now(); }",
            )],
            &Config::default(),
        );
        assert!(found.iter().all(|(_, f)| f.rule != "DET003"));
    }

    #[test]
    fn det003_entry_points_are_configurable() {
        let config =
            Config::parse("[rule.DET003]\nentry_points = [\"Fleet::dispatch\"]\n").unwrap();
        let found = run(
            &[(
                "crates/socsim/src/fleet.rs",
                "impl Fleet {\n fn dispatch(&mut self) { let s: HashSet<u8> = x; }\n}\n\
                 impl Soc {\n fn step(&mut self) { let t = Instant::now(); }\n}",
            )],
            &config,
        );
        let det: Vec<_> = found.iter().filter(|(_, f)| f.rule == "DET003").collect();
        // Only the configured entry's HashSet sink fires; the default
        // Soc::step entry was replaced.
        assert_eq!(det.len(), 1);
        assert!(det[0].1.message.contains("HashSet"));
    }

    #[test]
    fn panic002_catches_helpers_reachable_from_the_bridge() {
        let found = run(
            &[
                (
                    "crates/rose-bridge/src/transport.rs",
                    "pub fn serve(&mut self) { decode_helper(&buf); }",
                ),
                (
                    "crates/socsim/src/program.rs",
                    "pub fn decode_helper(buf: &[u8]) -> u8 { buf.first().unwrap() }",
                ),
            ],
            &Config::default(),
        );
        let p2: Vec<_> = found.iter().filter(|(_, f)| f.rule == "PANIC002").collect();
        assert_eq!(p2.len(), 1);
        assert_eq!(p2[0].0, "crates/socsim/src/program.rs");
        assert!(p2[0].1.message.contains("serve → decode_helper"));
    }

    #[test]
    fn panic002_leaves_root_file_panics_to_panic001() {
        let found = run(
            &[(
                "crates/rose-bridge/src/transport.rs",
                "pub fn serve(&mut self) { x.unwrap(); }",
            )],
            &Config::default(),
        );
        assert!(found.iter().all(|(_, f)| f.rule != "PANIC002"));
    }

    #[test]
    fn snap002_flags_fields_absent_from_both_bodies() {
        let found = run(
            &[(
                "crates/socsim/src/rec.rs",
                "pub struct Recorder { ticks: u64, dropped: u64 }\n\
                 impl Recorder {\n\
                 pub fn save_state(&self, w: &mut SnapWriter) { w.u64(self.ticks); }\n\
                 pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> { self.ticks = r.u64()?; Ok(()) }\n\
                 }",
            )],
            &Config::default(),
        );
        let s2: Vec<_> = found.iter().filter(|(_, f)| f.rule == "SNAP002").collect();
        assert_eq!(s2.len(), 1);
        assert!(s2[0].1.message.contains("`dropped`"));
        assert!(s2[0].1.message.contains("Recorder"));
    }

    #[test]
    fn snap002_accepts_underscore_bound_structural_fields() {
        let found = run(
            &[(
                "crates/socsim/src/rec.rs",
                "pub struct Recorder { ticks: u64, config: Config }\n\
                 impl Recorder {\n\
                 pub fn save_state(&self, w: &mut SnapWriter) {\n\
                   let Self { ticks, config: _ } = self;\n w.u64(*ticks);\n }\n\
                 pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> { self.ticks = r.u64()?; Ok(()) }\n\
                 }",
            )],
            &Config::default(),
        );
        assert!(found.iter().all(|(_, f)| f.rule != "SNAP002"));
    }

    #[test]
    fn snap002_covers_fields_mentioned_in_only_one_body() {
        let found = run(
            &[(
                "crates/socsim/src/rec.rs",
                "pub struct Recorder { ticks: u64 }\n\
                 impl Recorder {\n\
                 pub fn save_state(&self, w: &mut SnapWriter) { w.u64(self.ticks); }\n\
                 pub fn restore_state(&mut self, _r: &mut SnapReader) -> Result<(), SnapError> { Ok(()) }\n\
                 }",
            )],
            &Config::default(),
        );
        // `ticks` appears in save_state: covered (asymmetric codecs are
        // legal — restore may rebuild from config).
        assert!(found.iter().all(|(_, f)| f.rule != "SNAP002"));
    }

    #[test]
    fn snap002_skips_types_without_a_pair_or_without_a_struct() {
        let found = run(
            &[(
                "crates/socsim/src/rec.rs",
                "pub struct OnlySave { ticks: u64 }\n\
                 impl OnlySave {\n pub fn save_state(&self, w: &mut SnapWriter) {}\n}\n\
                 impl NoStruct {\n\
                 pub fn save_state(&self, w: &mut SnapWriter) {}\n\
                 pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> { Ok(()) }\n\
                 }",
            )],
            &Config::default(),
        );
        assert!(found.iter().all(|(_, f)| f.rule != "SNAP002"));
    }
}
