//! A minimal Rust lexer.
//!
//! Just enough tokenization for line-level lint rules: identifiers and
//! punctuation survive; string/char/numeric literals are reduced to opaque
//! placeholder tokens so their *contents* can never trip a rule (`"call
//! unwrap()"` in a log message is not a panic site); comments are stripped
//! from the token stream but collected per line, because that is where
//! `// rose-lint: allow(...)` annotations live.
//!
//! The lexer is intentionally forgiving — on a construct it does not
//! understand it consumes one byte and moves on. A linter must never make
//! the build fail because *it* could not parse something `rustc` accepted.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `as`, `Instant`, `unwrap`, ...).
    Ident(String),
    /// Punctuation. Single characters, except `::` which is coalesced so
    /// path rules can match `Instant :: now` directly.
    Punct(&'static str),
    /// A string, raw-string, byte-string, or char literal (contents dropped).
    Literal,
    /// A numeric literal (contents dropped; `as`-cast rules only need the
    /// *target* type, which is an identifier).
    Number,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: usize,
    /// The token itself.
    pub tok: Tok,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens outside comments, in source order.
    pub tokens: Vec<Token>,
    /// Every comment (line or block), as `(line, text)` with the comment
    /// markers stripped. Block comments contribute their first line.
    pub comments: Vec<(usize, String)>,
}

/// Single-character punctuation we emit as-is. Everything else unknown is
/// skipped byte-by-byte.
const PUNCTS: &[(char, &str)] = &[
    ('.', "."),
    (',', ","),
    (';', ";"),
    ('!', "!"),
    ('#', "#"),
    ('(', "("),
    (')', ")"),
    ('[', "["),
    (']', "]"),
    ('{', "{"),
    ('}', "}"),
    ('<', "<"),
    ('>', ">"),
    ('=', "="),
    ('&', "&"),
    ('*', "*"),
    ('+', "+"),
    ('-', "-"),
    ('/', "/"),
    ('%', "%"),
    ('|', "|"),
    ('^', "^"),
    ('?', "?"),
    ('@', "@"),
    ('~', "~"),
    ('$', "$"),
    (':', ":"),
];

fn punct_str(c: char) -> Option<&'static str> {
    PUNCTS.iter().find(|(p, _)| *p == c).map(|(_, s)| *s)
}

/// Lexes `source` into tokens and per-line comments.
pub fn lex(source: &str) -> Lexed {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            // Line comment (also covers `///` and `//!` doc comments).
            '/' if bytes.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != '\n' {
                    end += 1;
                }
                let text: String = bytes[start..end].iter().collect();
                out.comments.push((line, text.trim().to_string()));
                i = end;
            }
            // Block comment, nested per Rust rules.
            '/' if bytes.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                i += 2;
                let text_start = i;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text_end = i.saturating_sub(2).max(text_start);
                let first_line: String = bytes[start.min(text_end)..text_end]
                    .iter()
                    .take_while(|c| **c != '\n')
                    .collect();
                out.comments.push((start_line, first_line.trim().to_string()));
            }
            // Raw / byte / byte-raw string prefixes, checked before plain
            // identifiers so `r"..."` is not lexed as ident `r`.
            'r' | 'b' if is_raw_or_byte_string(&bytes, i) => {
                let tok_line = line;
                i = skip_string_prefix(&bytes, i, &mut line);
                out.tokens.push(Token {
                    line: tok_line,
                    tok: Tok::Literal,
                });
            }
            c if c == '_' || c.is_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == '_' || bytes[i].is_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Ident(bytes[start..i].iter().collect()),
                });
            }
            c if c.is_ascii_digit() => {
                // Consume the numeric literal: digits, ident chars
                // (suffixes, hex), `.` only when followed by a digit (so
                // `0..10` and `1.method()` stay intact), exponent signs.
                while i < bytes.len() {
                    let d = bytes[i];
                    if d == '_' || d.is_alphanumeric() {
                        if (d == 'e' || d == 'E')
                            && matches!(bytes.get(i + 1), Some('+') | Some('-'))
                            && bytes.get(i + 2).is_some_and(|c| c.is_ascii_digit())
                        {
                            i += 2;
                            continue;
                        }
                        i += 1;
                    } else if d == '.' && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Number,
                });
            }
            '"' => {
                let tok_line = line;
                i = skip_plain_string(&bytes, i, &mut line);
                out.tokens.push(Token {
                    line: tok_line,
                    tok: Tok::Literal,
                });
            }
            '\'' => {
                // Lifetime or char literal. `'a` (not closed by `'`) is a
                // lifetime; `'a'`, `'\n'`, `'\u{1F600}'` are chars.
                if is_lifetime(&bytes, i) {
                    i += 1;
                    while i < bytes.len() && (bytes[i] == '_' || bytes[i].is_alphanumeric()) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        line,
                        tok: Tok::Lifetime,
                    });
                } else {
                    let tok_line = line;
                    i = skip_char_literal(&bytes, i, &mut line);
                    out.tokens.push(Token {
                        line: tok_line,
                        tok: Tok::Literal,
                    });
                }
            }
            ':' if bytes.get(i + 1) == Some(&':') => {
                out.tokens.push(Token {
                    line,
                    tok: Tok::Punct("::"),
                });
                i += 2;
            }
            c => {
                if let Some(p) = punct_str(c) {
                    out.tokens.push(Token {
                        line,
                        tok: Tok::Punct(p),
                    });
                }
                i += 1;
            }
        }
    }
    out
}

/// True when position `i` starts `r"`, `r#"`, `b"`, `b'`, `br"`, or `br#"`.
fn is_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if bytes.get(j) == Some(&'\'') {
            return true; // byte char literal b'x'
        }
    }
    if bytes.get(j) == Some(&'r') {
        j += 1;
        while bytes.get(j) == Some(&'#') {
            j += 1;
        }
    }
    bytes.get(j) == Some(&'"')
}

/// Skips a raw/byte/byte-raw string (or byte char) starting at `i`;
/// returns the index just past it.
fn skip_string_prefix(bytes: &[char], mut i: usize, line: &mut usize) -> usize {
    if bytes[i] == 'b' {
        i += 1;
        if bytes.get(i) == Some(&'\'') {
            return skip_char_literal(bytes, i, line);
        }
    }
    if bytes.get(i) == Some(&'r') {
        i += 1;
        let mut hashes = 0;
        while bytes.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
        // Opening quote.
        i += 1;
        // Scan for `"` followed by `hashes` hash marks; raw strings have
        // no escapes.
        while i < bytes.len() {
            if bytes[i] == '\n' {
                *line += 1;
                i += 1;
            } else if bytes[i] == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if bytes.get(i + 1 + k) != Some(&'#') {
                        ok = false;
                        break;
                    }
                }
                i += 1;
                if ok {
                    return i + hashes;
                }
            } else {
                i += 1;
            }
        }
        i
    } else {
        skip_plain_string(bytes, i, line)
    }
}

/// Skips a plain `"..."` string (with escapes) starting at the quote.
fn skip_plain_string(bytes: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a `'x'`-style char literal starting at the quote.
fn skip_char_literal(bytes: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Distinguishes a lifetime `'a` from a char literal `'a'`: a lifetime's
/// identifier is not closed by a quote (and `'_'` the char is one
/// character long, while `'_` the lifetime placeholder is followed by a
/// non-quote).
fn is_lifetime(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(c) if *c == '_' || c.is_alphabetic() => {
            // Scan the would-be identifier; if it terminates in a quote
            // it was a char literal like 'a' or a multi-char escape.
            let mut j = i + 2;
            while bytes.get(j).is_some_and(|c| *c == '_' || c.is_alphanumeric()) {
                j += 1;
            }
            bytes.get(j) != Some(&'\'')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn identifiers_and_paths() {
        let lexed = lex("std::time::Instant::now()");
        let toks: Vec<_> = lexed.tokens.iter().map(|t| &t.tok).collect();
        assert_eq!(
            toks,
            vec![
                &Tok::Ident("std".into()),
                &Tok::Punct("::"),
                &Tok::Ident("time".into()),
                &Tok::Punct("::"),
                &Tok::Ident("Instant".into()),
                &Tok::Punct("::"),
                &Tok::Ident("now".into()),
                &Tok::Punct("("),
                &Tok::Punct(")"),
            ]
        );
    }

    #[test]
    fn string_contents_are_opaque() {
        assert_eq!(idents(r#"let x = "call unwrap() and panic!";"#), vec!["let", "x"]);
        assert_eq!(idents(r##"let y = r#"Instant::now()"#;"##), vec!["let", "y"]);
        assert_eq!(idents("let z = b\"HashMap\";"), vec!["let", "z"]);
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let lexed = lex("let a = 1; // rose-lint: allow(DET001, test)\nlet b = 2;");
        assert_eq!(
            lexed.comments,
            vec![(1, "rose-lint: allow(DET001, test)".to_string())]
        );
        assert_eq!(idents("// unwrap()\nfoo"), vec!["foo"]);
        assert_eq!(idents("/* panic! /* nested */ still */ bar"), vec!["bar"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let lexed = lex("for i in 0..10 { let j = 1.5e-3; }");
        // `..` survives as two dots, `1.5e-3` is one number.
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Punct("."))
            .count();
        assert_eq!(dots, 2);
        let numbers = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Number)
            .count();
        assert_eq!(numbers, 3); // 0, 10, 1.5e-3
    }

    #[test]
    fn lines_are_tracked_across_multiline_strings() {
        let lexed = lex("let a = \"one\ntwo\";\nlet b = 1;");
        let b = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 3);
    }

    // Edge cases feeding the tier W parser: each must both survive (the
    // parser never panics or derails) and produce the right token stream.

    /// Lex + parse; returns the idents so token-stream shape is checkable
    /// while proving `ast::parse` survives the stream.
    fn idents_and_parse(src: &str) -> Vec<String> {
        let lexed = lex(src);
        let mask = vec![false; lexed.tokens.len()];
        let _ = crate::ast::parse(&lexed.tokens, &mask);
        idents(src)
    }

    #[test]
    fn raw_strings_with_multiple_hashes_end_at_the_matching_fence() {
        // The inner `"#` must not close a `##`-fenced raw string.
        let src = r####"fn f() { let s = r##"contains "# and Instant::now()"##; g(); }"####;
        assert_eq!(idents_and_parse(src), vec!["fn", "f", "let", "s", "g"]);
        // A byte-raw string with hashes is one opaque literal too.
        let src2 = r###"let t = br#"HashMap "quoted""#;"###;
        assert_eq!(idents_and_parse(src2), vec!["let", "t"]);
        let lexed = lex(src2);
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.tok == Tok::Literal).count(),
            1
        );
    }

    #[test]
    fn nested_block_comments_containing_quotes_and_slashes() {
        // The `"` and `//` inside must not open a string or eat the `*/`.
        let src = "/* outer \" // /* inner unwrap() */ still \" */ fn after() {}";
        assert_eq!(idents_and_parse(src), vec!["fn", "after"]);
        // An unterminated quote inside a comment must not swallow the file.
        assert_eq!(
            idents_and_parse("/* lone \" quote */ fn g() { x.unwrap(); }"),
            vec!["fn", "g", "x", "unwrap"]
        );
    }

    #[test]
    fn byte_char_escapes_are_single_opaque_literals() {
        // b'\'' — the escaped quote must not terminate the literal early.
        let src = r"fn f() { let q = b'\''; let n = b'\n'; let z = b'x'; }";
        assert_eq!(
            idents_and_parse(src),
            vec!["fn", "f", "let", "q", "let", "n", "let", "z"]
        );
        let lexed = lex(src);
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.tok == Tok::Literal).count(),
            3
        );
        // Same for the char (non-byte) spelling.
        assert_eq!(idents_and_parse(r"let c = '\'';"), vec!["let", "c"]);
    }

    #[test]
    fn lifetimes_inside_generic_args_are_not_chars() {
        let src = "fn f<'a, 'b>(x: Map<'a, K<'b>>, c: char) -> bool { c == 'a' }";
        let lexed = lex(src);
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count(),
            4,
            "'a, 'b in the params and the two uses in the types"
        );
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.tok == Tok::Literal).count(),
            1,
            "only the 'a' comparison at the end is a char literal"
        );
        // And the parser still sees one fn named f.
        let mask = vec![false; lexed.tokens.len()];
        let ast = crate::ast::parse(&lexed.tokens, &mask);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "f");
    }
}
