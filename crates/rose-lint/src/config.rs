//! The `rose-lint.toml` configuration.
//!
//! A deliberately tiny TOML subset with two kinds of section:
//!
//! ```toml
//! [allow]
//! DET001 = ["crates/rose-bridge/src/sync.rs", "crates/bench/src"]
//!
//! [rule.DET003]
//! entry_points = ["Soc::run_*", "Synchronizer::step_*"]
//! sinks = ["my_entropy_helper"]
//!
//! [rule.PANIC002]
//! roots = ["crates/rose-bridge/src"]
//! ```
//!
//! `[allow]` maps rule identifiers to arrays of workspace-relative path
//! prefixes: a file matching a prefix is exempt from that rule wholesale
//! (for whole-file exemptions like the synchronizer's wall-time throughput
//! stats). Single-line exemptions use `// rose-lint: allow(RULE, reason)`
//! annotations instead, handled in [`crate::lint_files`].
//!
//! `[rule.RULE]` sections tune tier W's workspace analysis per rule:
//! `entry_points` (DET003's sim-side roots, `Type::fn` with a trailing-`*`
//! glob), `sinks` (extra entropy-sink identifiers), and `roots`
//! (PANIC002's fault-path file prefixes). Omitted keys fall back to the
//! built-in defaults; a present key replaces the default list.
//!
//! Every `[allow]` entry records its source line so the stale-allow rule
//! (ANN002) can point at a `rose-lint.toml` entry that no longer
//! suppresses anything.

use std::collections::BTreeMap;
use std::path::Path;

/// One `[allow]` entry: a rule exempted for one path prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The exempted rule identifier.
    pub rule: String,
    /// The workspace-relative path prefix.
    pub prefix: String,
    /// 1-based `rose-lint.toml` line the entry came from.
    pub line: usize,
}

/// Per-rule list keys accepted inside `[rule.X]` sections.
const RULE_LIST_KEYS: &[&str] = &["entry_points", "sinks", "roots"];

/// Parsed configuration.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Every `[allow]` entry, in file order (one per rule × prefix).
    entries: Vec<AllowEntry>,
    /// `[rule.X]` sections: rule → key → values.
    rule_lists: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

/// A configuration parse failure, with the offending 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rose-lint.toml:{}: {}", self.line, self.message)
    }
}

enum Section {
    None,
    Allow,
    Rule(String),
}

impl Config {
    /// Parses the configuration text.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on an unknown section, a malformed entry, an entry
    /// outside any section, or an unknown `[rule.X]` key.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut section = Section::None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let name = header.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: lineno,
                    message: format!("unterminated section header {raw:?}"),
                })?;
                section = match name.trim() {
                    "allow" => Section::Allow,
                    other => match other.strip_prefix("rule.") {
                        Some(rule) if !rule.trim().is_empty() => {
                            Section::Rule(rule.trim().to_string())
                        }
                        _ => {
                            return Err(ConfigError {
                                line: lineno,
                                message: format!("unknown section [{other}]"),
                            })
                        }
                    },
                };
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected KEY = [..], got {line:?}"),
            })?;
            let values = parse_string_array(value.trim()).ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected a [\"..\", ..] array, got {:?}", value.trim()),
            })?;
            match &section {
                Section::None => {
                    return Err(ConfigError {
                        line: lineno,
                        message: "entry outside any section".into(),
                    })
                }
                Section::Allow => {
                    for prefix in values {
                        config.entries.push(AllowEntry {
                            rule: key.trim().to_string(),
                            prefix,
                            line: lineno,
                        });
                    }
                }
                Section::Rule(rule) => {
                    let key = key.trim();
                    if !RULE_LIST_KEYS.contains(&key) {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!(
                                "unknown [rule.{rule}] key {key:?}; expected one of {RULE_LIST_KEYS:?}"
                            ),
                        });
                    }
                    config
                        .rule_lists
                        .entry(rule.clone())
                        .or_default()
                        .entry(key.to_string())
                        .or_default()
                        .extend(values);
                }
            }
        }
        Ok(config)
    }

    /// Loads `rose-lint.toml` from `path`; a missing file is an empty
    /// (allow-nothing) configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the file exists but does not parse.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Config::parse(&text),
            Err(_) => Ok(Config::default()),
        }
    }

    /// The first `[allow]` entry exempting `rel_path` from `rule`, as an
    /// index into [`allow_entries`](Config::allow_entries).
    pub fn match_allow(&self, rule: &str, rel_path: &str) -> Option<usize> {
        // Normalize Windows-style separators so prefixes always compare
        // against forward slashes.
        let normalized = rel_path.replace('\\', "/");
        self.entries
            .iter()
            .position(|e| e.rule == rule && matches_prefix(&normalized, &e.prefix))
    }

    /// True when `rel_path` is exempt from `rule` by prefix match.
    pub fn is_allowed(&self, rule: &str, rel_path: &str) -> bool {
        self.match_allow(rule, rel_path).is_some()
    }

    /// Every `[allow]` entry, in file order.
    pub fn allow_entries(&self) -> &[AllowEntry] {
        &self.entries
    }

    /// The `[rule.X] key = [...]` list, if configured.
    pub fn rule_list(&self, rule: &str, key: &str) -> Option<&[String]> {
        self.rule_lists
            .get(rule)
            .and_then(|keys| keys.get(key))
            .map(Vec::as_slice)
    }
}

/// Prefix matching with a path-component boundary: `crates/bench/src`
/// matches `crates/bench/src/lib.rs` but not `crates/bench/srcfoo.rs`.
fn matches_prefix(path: &str, prefix: &str) -> bool {
    let p = prefix.trim_end_matches('/');
    path == p
        || path
            .strip_prefix(p)
            .is_some_and(|rest| rest.starts_with('/'))
}

/// Parses `["a", "b"]` into its strings; `None` on malformed input.
fn parse_string_array(text: &str) -> Option<Vec<String>> {
    let inner = text.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        let s = part.strip_prefix('"')?.strip_suffix('"')?;
        out.push(s.to_string());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allow_table() {
        let config = Config::parse(
            "# comment\n[allow]\nDET001 = [\"crates/rose-bridge/src/sync.rs\", \"crates/bench/src\"]\n",
        )
        .unwrap();
        assert!(config.is_allowed("DET001", "crates/rose-bridge/src/sync.rs"));
        assert!(config.is_allowed("DET001", "crates/bench/src/lib.rs"));
        assert!(!config.is_allowed("DET001", "crates/bench/srcfoo.rs"));
        assert!(!config.is_allowed("DET002", "crates/bench/src/lib.rs"));
    }

    #[test]
    fn records_entry_lines_for_staleness_checks() {
        let config = Config::parse(
            "[allow]\nDET001 = [\"a.rs\", \"b.rs\"]\nPROF001 = [\"c.rs\"]\n",
        )
        .unwrap();
        let entries = config.allow_entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].line, 2);
        assert_eq!(entries[1].line, 2);
        assert_eq!(entries[2].line, 3);
        assert_eq!(config.match_allow("PROF001", "c.rs"), Some(2));
    }

    #[test]
    fn parses_rule_sections() {
        let config = Config::parse(
            "[rule.DET003]\nentry_points = [\"Soc::run_*\"]\nsinks = [\"leaky\"]\n\
             [rule.PANIC002]\nroots = [\"crates/rose-bridge/src\"]\n",
        )
        .unwrap();
        assert_eq!(
            config.rule_list("DET003", "entry_points").unwrap(),
            &["Soc::run_*".to_string()]
        );
        assert_eq!(config.rule_list("DET003", "sinks").unwrap(), &["leaky".to_string()]);
        assert_eq!(
            config.rule_list("PANIC002", "roots").unwrap(),
            &["crates/rose-bridge/src".to_string()]
        );
        assert!(config.rule_list("DET003", "roots").is_none());
        assert!(config.rule_list("SNAP002", "entry_points").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Config::parse("[allow\n").is_err());
        assert!(Config::parse("[unknown]\n").is_err());
        assert!(Config::parse("DET001 = []\n").is_err()); // outside a section
        assert!(Config::parse("[allow]\nDET001 = nope\n").is_err());
        assert!(Config::parse("[rule.]\n").is_err());
        assert!(Config::parse("[rule.DET003]\nbogus_key = [\"x\"]\n").is_err());
    }

    #[test]
    fn empty_and_missing_are_allow_nothing() {
        let config = Config::parse("").unwrap();
        assert!(!config.is_allowed("DET001", "crates/rose-bridge/src/sync.rs"));
        let missing = Config::load(Path::new("/nonexistent/rose-lint.toml")).unwrap();
        assert!(!missing.is_allowed("DET001", "anything.rs"));
    }
}
