//! The `rose-lint.toml` allowlist.
//!
//! A deliberately tiny TOML subset — one `[allow]` table whose keys are
//! rule identifiers and whose values are arrays of workspace-relative path
//! prefixes:
//!
//! ```toml
//! [allow]
//! DET001 = ["crates/rose-bridge/src/sync.rs", "crates/bench/src"]
//! ```
//!
//! A file matching a prefix is exempt from that rule wholesale (for
//! whole-file exemptions like the synchronizer's wall-time throughput
//! stats); single-line exemptions use `// rose-lint: allow(RULE, reason)`
//! annotations instead, which are handled in [`crate::lint_source`].

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed allowlist configuration.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Rule id → workspace-relative path prefixes exempt from it.
    allows: BTreeMap<String, Vec<String>>,
}

/// A configuration parse failure, with the offending 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rose-lint.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parses the configuration text.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on an unknown section, a malformed entry, or an
    /// entry outside any section.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut in_allow = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let name = section.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: lineno,
                    message: format!("unterminated section header {raw:?}"),
                })?;
                match name.trim() {
                    "allow" => in_allow = true,
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown section [{other}]"),
                        })
                    }
                }
                continue;
            }
            if !in_allow {
                return Err(ConfigError {
                    line: lineno,
                    message: "entry outside [allow] section".into(),
                });
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected RULE = [..], got {line:?}"),
            })?;
            let paths = parse_string_array(value.trim()).ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected a [\"path\", ..] array, got {:?}", value.trim()),
            })?;
            config
                .allows
                .entry(key.trim().to_string())
                .or_default()
                .extend(paths);
        }
        Ok(config)
    }

    /// Loads `rose-lint.toml` from `path`; a missing file is an empty
    /// (allow-nothing) configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the file exists but does not parse.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Config::parse(&text),
            Err(_) => Ok(Config::default()),
        }
    }

    /// True when `rel_path` is exempt from `rule` by prefix match.
    pub fn is_allowed(&self, rule: &str, rel_path: &str) -> bool {
        // Normalize Windows-style separators so prefixes always compare
        // against forward slashes.
        let normalized = rel_path.replace('\\', "/");
        self.allows
            .get(rule)
            .is_some_and(|prefixes| matches_any_prefix(&normalized, prefixes))
    }
}

/// Prefix matching with a path-component boundary: `crates/bench/src`
/// matches `crates/bench/src/lib.rs` but not `crates/bench/srcfoo.rs`.
fn matches_any_prefix(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| {
        let p = p.trim_end_matches('/');
        path == p
            || path
                .strip_prefix(p)
                .is_some_and(|rest| rest.starts_with('/'))
    })
}

/// Parses `["a", "b"]` into its strings; `None` on malformed input.
fn parse_string_array(text: &str) -> Option<Vec<String>> {
    let inner = text.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        let s = part.strip_prefix('"')?.strip_suffix('"')?;
        out.push(s.to_string());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allow_table() {
        let config = Config::parse(
            "# comment\n[allow]\nDET001 = [\"crates/rose-bridge/src/sync.rs\", \"crates/bench/src\"]\n",
        )
        .unwrap();
        assert!(config.is_allowed("DET001", "crates/rose-bridge/src/sync.rs"));
        assert!(config.is_allowed("DET001", "crates/bench/src/lib.rs"));
        assert!(!config.is_allowed("DET001", "crates/bench/srcfoo.rs"));
        assert!(!config.is_allowed("DET002", "crates/bench/src/lib.rs"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Config::parse("[allow\n").is_err());
        assert!(Config::parse("[unknown]\n").is_err());
        assert!(Config::parse("DET001 = []\n").is_err()); // outside a section
        assert!(Config::parse("[allow]\nDET001 = nope\n").is_err());
    }

    #[test]
    fn empty_and_missing_are_allow_nothing() {
        let config = Config::parse("").unwrap();
        assert!(!config.is_allowed("DET001", "crates/rose-bridge/src/sync.rs"));
        let missing = Config::load(Path::new("/nonexistent/rose-lint.toml")).unwrap();
        assert!(!missing.is_allowed("DET001", "anything.rs"));
    }
}
