//! Property tests for the clock-domain conversion (Equation 1): grant
//! sizing must never let the cycle timeline drift from the frame timeline,
//! for any clock rate, frame rate, or synchronization granularity.

use proptest::prelude::*;
use rose_sim_core::cycles::{ClockSpec, FrameSpec, SyncRatio};

proptest! {
    /// The no-drift invariant: summing cumulative span grants over any
    /// number of sync periods reproduces `floor(N * clock_hz / frame_hz)`
    /// exactly, and the divergence from the ideal rational timeline stays
    /// under one cycle (hence always under one frame's worth of cycles).
    #[test]
    fn span_grants_never_drift(
        clock_hz in 1_000u64..5_000_000_000,
        frame_hz in 1u32..240,
        frames_per_sync in 1u64..100,
        periods in 1u64..500,
    ) {
        let ratio = SyncRatio::new(ClockSpec::from_hz(clock_hz), FrameSpec::from_hz(frame_hz));
        let mut granted = 0u64;
        let mut frame = 0u64;
        for _ in 0..periods {
            granted += ratio.cycles_for_span(frame, frame + frames_per_sync);
            frame += frames_per_sync;
        }
        prop_assert_eq!(granted, ratio.cycles_for_frames(frame));
        let exact = frame as u128 * clock_hz as u128 / frame_hz as u128;
        prop_assert_eq!(granted as u128, exact);
        // granted = floor(frame * clock / fps)  =>  the remainder below is
        // the sub-cycle error, strictly less than one frame period.
        let remainder = frame as u128 * clock_hz as u128 - granted as u128 * frame_hz as u128;
        prop_assert!(remainder < frame_hz as u128);
    }

    /// Span grants telescope: adjacent spans compose exactly, so any
    /// partition of a frame interval yields the same total cycles.
    #[test]
    fn spans_telescope(
        clock_hz in 1u64..2_000_000_000,
        frame_hz in 1u32..240,
        bounds in (0u64..10_000, 0u64..10_000, 0u64..10_000),
    ) {
        let ratio = SyncRatio::new(ClockSpec::from_hz(clock_hz), FrameSpec::from_hz(frame_hz));
        let mut points = [bounds.0, bounds.1, bounds.2];
        points.sort_unstable();
        let [a, b, c] = points;
        prop_assert_eq!(
            ratio.cycles_for_span(a, b) + ratio.cycles_for_span(b, c),
            ratio.cycles_for_span(a, c)
        );
    }

    /// The naive per-frame quotient never over-grants: truncation error is
    /// one-sided, so the exact conversion dominates it by at most one
    /// cycle per frame.
    #[test]
    fn exact_conversion_bounds_naive_truncation(
        clock_hz in 1u64..5_000_000_000,
        frame_hz in 1u32..240,
        frames in 0u64..100_000,
    ) {
        let ratio = SyncRatio::new(ClockSpec::from_hz(clock_hz), FrameSpec::from_hz(frame_hz));
        let naive = ratio.cycles_per_frame() * frames;
        let exact = ratio.cycles_for_frames(frames);
        prop_assert!(naive <= exact);
        prop_assert!(exact - naive < frames.max(1));
    }
}
