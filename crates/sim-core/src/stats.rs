//! Streaming statistics and histograms for the benchmark harness.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Streaming summary statistics (Welford's algorithm for variance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    /// Same as [`Summary::new`]: the min/max sentinels start at ±∞ so the
    /// first observation wins (a derived all-zero default would report
    /// `min = 0` for any positive-valued stream).
    fn default() -> Summary {
        Summary::new()
    }
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The summary of the observations recorded *after* `prefix` was
    /// captured, assuming `prefix` is an earlier snapshot of this same
    /// stream — the inverse of [`merge`](Summary::merge). Used to strip a
    /// shared warm-start prefix from forked-mission branches before
    /// re-merging them, so the prefix is not double-counted.
    ///
    /// `min`/`max` cannot be recovered by subtraction; the delta keeps
    /// this summary's observed range (a conservative superset).
    pub fn unmerge(&self, prefix: &Summary) -> Summary {
        if prefix.count == 0 {
            return self.clone();
        }
        let count = self.count.saturating_sub(prefix.count);
        if count == 0 {
            return Summary::new();
        }
        let total = self.count as f64;
        let mean = (self.mean * total - prefix.mean * prefix.count as f64) / count as f64;
        let delta = prefix.mean - mean;
        let m2 =
            self.m2 - prefix.m2 - delta * delta * prefix.count as f64 * count as f64 / total;
        Summary {
            count,
            mean,
            m2: m2.max(0.0),
            min: self.min,
            max: self.max,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN),
        )
    }
}

/// A collection of all observations, supporting exact percentiles.
///
/// Used where the benchmark harness needs tail latencies rather than moments.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// An empty sample set.
    pub fn new() -> Samples {
        Samples::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `p`-th percentile (0–100) by nearest-rank, or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.values.len() - 1) as f64).round() as usize;
        Some(self.values[rank])
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// A read-only view of the raw values (insertion order not guaranteed
    /// after a percentile query).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Samples {
        Samples {
            values: iter.into_iter().collect(),
            sorted: false,
        }
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.values.extend(iter);
        self.sorted = false;
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Histogram {
        assert!(n > 0, "histogram needs at least one bucket");
        assert!(lo < hi, "histogram range inverted");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[idx.min(n - 1)] += 1;
        }
    }

    /// Bucket counts (excluding under/overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &data {
            all.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_unmerge_inverts_merge() {
        let data: Vec<f64> = (0..80).map(|i| (i as f64).cos() * 5.0 + 7.0).collect();
        let mut prefix = Summary::new();
        for &x in &data[..30] {
            prefix.record(x);
        }
        let mut full = prefix.clone();
        let mut suffix = Summary::new();
        for &x in &data[30..] {
            full.record(x);
            suffix.record(x);
        }
        let delta = full.unmerge(&prefix);
        assert_eq!(delta.count(), suffix.count());
        assert!((delta.mean() - suffix.mean()).abs() < 1e-9);
        assert!((delta.variance() - suffix.variance()).abs() < 1e-9);
        // min/max stay the conservative full-stream range.
        assert_eq!(delta.min(), full.min());
        assert_eq!(delta.max(), full.max());
        // Unmerging an identical snapshot leaves nothing.
        assert_eq!(full.unmerge(&full.clone()).count(), 0);
        // Unmerging an empty prefix is the identity.
        assert_eq!(full.unmerge(&Summary::new()), full);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn percentiles() {
        let mut s: Samples = (1..=100).map(|i| i as f64).collect();
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(50.0), Some(51.0)); // nearest-rank on 0..99
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(10.0);
        assert!(h.buckets().iter().all(|&c| c == 1));
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 12);
    }
}
