//! Deterministic simulation substrate shared by every crate in the RoSÉ
//! reproduction.
//!
//! This crate provides the building blocks that both simulation domains
//! (the environment simulator and the SoC simulator) are built from:
//!
//! * [`cycles`] — strongly-typed simulation time: clock [`cycles::Cycle`]s on
//!   the SoC side, rendered [`cycles::Frame`]s on the environment side, and
//!   the [`cycles::ClockSpec`] / [`cycles::FrameSpec`] conversions between
//!   them (Equation 1 of the paper).
//! * [`rng`] — seeded, splittable deterministic random number generation so
//!   that a simulation seed reproduces a trajectory bit-exactly.
//! * [`fnv`] — platform-stable FNV-1a hashing, the digest primitive behind
//!   the cross-run determinism auditor.
//! * [`math`] — the small amount of 3-D math a quadrotor simulation needs:
//!   [`math::Vec3`], [`math::Quat`], and helpers.
//! * [`pid`] — a production-style PID controller with output limits and
//!   integral anti-windup, used by the flight controller cascade.
//! * [`stats`] — streaming statistics and histograms used by the benchmark
//!   harness.
//! * [`csv`] — minimal CSV log writing matching the artifact's CSV outputs.
//! * [`snap`] — the versioned, dependency-free snapshot codec behind
//!   mission snapshot / fork / resume.
//!
//! # Example
//!
//! ```
//! use rose_sim_core::cycles::{ClockSpec, FrameSpec, SyncRatio};
//!
//! // A 1 GHz SoC co-simulated with a 60 Hz environment: one sync period of
//! // one frame corresponds to 16.67M SoC cycles (Equation 1).
//! let soc = ClockSpec::from_hz(1_000_000_000);
//! let env = FrameSpec::from_hz(60);
//! let ratio = SyncRatio::new(soc, env);
//! assert_eq!(ratio.cycles_per_frame(), 16_666_666);
//! ```

#![deny(missing_docs)]

pub mod csv;
pub mod cycles;
pub mod fnv;
pub mod math;
pub mod pid;
pub mod rng;
pub mod snap;
pub mod stats;

pub use cycles::{ClockSpec, Cycle, Frame, FrameSpec, SimTime, SyncRatio};
pub use fnv::Fnv64;
pub use math::{Quat, Vec3};
pub use pid::Pid;
pub use rng::SimRng;
pub use snap::{SnapError, SnapReader, SnapWriter};
