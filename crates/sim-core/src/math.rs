//! Minimal 3-D math for rigid-body simulation.
//!
//! The environment simulator needs vectors, quaternions, and a handful of
//! frame conversions. World frame is NED-like but with Z up: X forward along
//! the corridor, Y left/right (lateral), Z up. Yaw is rotation about +Z.

use crate::snap::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component vector of `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component (forward).
    pub x: f64,
    /// Y component (lateral, positive left).
    pub y: f64,
    /// Z component (up).
    pub z: f64,
}

impl Vec3 {
    /// Serializes the vector bit-exactly.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let Vec3 { x, y, z } = self;
        w.f64(*x);
        w.f64(*y);
        w.f64(*z);
    }

    /// Deserializes a vector written by [`Vec3::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a truncated snapshot.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Vec3, SnapError> {
        Ok(Vec3 {
            x: r.f64()?,
            y: r.f64()?,
            z: r.f64()?,
        })
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    pub fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared length (avoids the square root).
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction, or zero if the vector is zero.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n > 0.0 {
            self / n
        } else {
            Vec3::ZERO
        }
    }

    /// Component-wise clamp of the magnitude to `max` (preserves direction).
    pub fn clamp_norm(self, max: f64) -> Vec3 {
        let n = self.norm();
        if n > max && n > 0.0 {
            self * (max / n)
        } else {
            self
        }
    }

    /// The horizontal (XY-plane) projection.
    pub fn horizontal(self) -> Vec3 {
        Vec3::new(self.x, self.y, 0.0)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// True if all components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A unit quaternion representing a 3-D rotation (w + xi + yj + zk).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part, X.
    pub x: f64,
    /// Vector part, Y.
    pub y: f64,
    /// Vector part, Z.
    pub z: f64,
}

impl Quat {
    /// Serializes the quaternion bit-exactly.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let Quat { w: qw, x, y, z } = self;
        w.f64(*qw);
        w.f64(*x);
        w.f64(*y);
        w.f64(*z);
    }

    /// Deserializes a quaternion written by [`Quat::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a truncated snapshot.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Quat, SnapError> {
        Ok(Quat {
            w: r.f64()?,
            x: r.f64()?,
            y: r.f64()?,
            z: r.f64()?,
        })
    }

    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from raw components (not normalized).
    pub fn new(w: f64, x: f64, y: f64, z: f64) -> Quat {
        Quat { w, x, y, z }
    }

    /// Rotation of `angle` radians about the (unit) `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Quat {
        let half = angle * 0.5;
        let s = half.sin();
        let a = axis.normalized();
        Quat {
            w: half.cos(),
            x: a.x * s,
            y: a.y * s,
            z: a.z * s,
        }
    }

    /// Builds from yaw (about Z), pitch (about Y), roll (about X), applied in
    /// Z-Y-X order — the aerospace convention.
    pub fn from_euler(roll: f64, pitch: f64, yaw: f64) -> Quat {
        let qz = Quat::from_axis_angle(Vec3::Z, yaw);
        let qy = Quat::from_axis_angle(Vec3::Y, pitch);
        let qx = Quat::from_axis_angle(Vec3::X, roll);
        (qz * qy * qx).normalized()
    }

    /// Decomposes into (roll, pitch, yaw) in the Z-Y-X convention.
    pub fn to_euler(self) -> (f64, f64, f64) {
        let q = self.normalized();
        let sinr_cosp = 2.0 * (q.w * q.x + q.y * q.z);
        let cosr_cosp = 1.0 - 2.0 * (q.x * q.x + q.y * q.y);
        let roll = sinr_cosp.atan2(cosr_cosp);

        let sinp = 2.0 * (q.w * q.y - q.z * q.x);
        let pitch = if sinp.abs() >= 1.0 {
            std::f64::consts::FRAC_PI_2.copysign(sinp)
        } else {
            sinp.asin()
        };

        let siny_cosp = 2.0 * (q.w * q.z + q.x * q.y);
        let cosy_cosp = 1.0 - 2.0 * (q.y * q.y + q.z * q.z);
        let yaw = siny_cosp.atan2(cosy_cosp);
        (roll, pitch, yaw)
    }

    /// The yaw (heading) angle about +Z.
    pub fn yaw(self) -> f64 {
        self.to_euler().2
    }

    /// Quaternion norm.
    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Normalized copy; returns identity if the norm is zero.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n > 0.0 {
            Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
        } else {
            Quat::IDENTITY
        }
    }

    /// The inverse rotation (conjugate, assuming unit norm).
    pub fn conjugate(self) -> Quat {
        Quat::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Rotates a vector by this quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2*q_vec x (q_vec x v + w*v)
        let u = Vec3::new(self.x, self.y, self.z);
        let t = u.cross(v) * 2.0;
        v + t * self.w + u.cross(t)
    }

    /// Integrates a body-frame angular velocity `omega` over `dt` seconds.
    pub fn integrate(self, omega: Vec3, dt: f64) -> Quat {
        let dq = Quat::new(0.0, omega.x, omega.y, omega.z) * self;
        Quat::new(
            self.w + 0.5 * dq.w * dt,
            self.x + 0.5 * dq.x * dt,
            self.y + 0.5 * dq.y * dt,
            self.z + 0.5 * dq.z * dt,
        )
        .normalized()
    }
}

impl Default for Quat {
    fn default() -> Quat {
        Quat::IDENTITY
    }
}

impl Mul for Quat {
    type Output = Quat;
    fn mul(self, r: Quat) -> Quat {
        Quat::new(
            self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        )
    }
}

/// Wraps an angle to `(-pi, pi]`.
pub fn wrap_angle(a: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut a = a % two_pi;
    if a > std::f64::consts::PI {
        a -= two_pi;
    } else if a <= -std::f64::consts::PI {
        a += two_pi;
    }
    a
}

/// Clamps `x` into `[lo, hi]`.
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn vec_approx(a: Vec3, b: Vec3) -> bool {
        (a - b).norm() < 1e-9
    }

    #[test]
    fn vec_basics() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!(approx(v.norm(), 5.0));
        assert!(vec_approx(v.normalized() * 5.0, v));
        assert!(approx(Vec3::X.dot(Vec3::Y), 0.0));
        assert!(vec_approx(Vec3::X.cross(Vec3::Y), Vec3::Z));
    }

    #[test]
    fn clamp_norm_preserves_direction() {
        let v = Vec3::new(6.0, 8.0, 0.0);
        let c = v.clamp_norm(5.0);
        assert!(approx(c.norm(), 5.0));
        assert!(vec_approx(c.normalized(), v.normalized()));
        // Under the limit: untouched.
        assert!(vec_approx(v.clamp_norm(100.0), v));
    }

    #[test]
    fn quat_rotation_about_z() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        let r = q.rotate(Vec3::X);
        assert!(vec_approx(r, Vec3::Y), "got {r:?}");
    }

    #[test]
    fn euler_roundtrip() {
        let angles = [
            (0.1, -0.2, 0.3),
            (0.0, 0.0, 2.5),
            (-0.4, 0.3, -1.2),
            (0.0, 0.0, 0.0),
        ];
        for (roll, pitch, yaw) in angles {
            let q = Quat::from_euler(roll, pitch, yaw);
            let (r, p, y) = q.to_euler();
            assert!(approx(r, roll), "roll {r} vs {roll}");
            assert!(approx(p, pitch), "pitch {p} vs {pitch}");
            assert!(approx(y, yaw), "yaw {y} vs {yaw}");
        }
    }

    #[test]
    fn quat_integration_yaw_rate() {
        // Integrating a pure yaw rate of pi/2 rad/s for 1 s in small steps
        // should yield ~90 degrees of heading.
        let mut q = Quat::IDENTITY;
        let omega = Vec3::new(0.0, 0.0, FRAC_PI_2);
        let dt = 1e-4;
        for _ in 0..10_000 {
            q = q.integrate(omega, dt);
        }
        assert!((q.yaw() - FRAC_PI_2).abs() < 1e-3, "yaw {}", q.yaw());
    }

    #[test]
    fn wrap_angle_range() {
        assert!(approx(wrap_angle(3.0 * PI), PI));
        assert!(approx(wrap_angle(-3.0 * PI), PI));
        assert!(approx(wrap_angle(0.5), 0.5));
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_euler(0.2, -0.1, 0.7);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(vec_approx(q.conjugate().rotate(q.rotate(v)), v));
    }
}
