//! A PID controller with output saturation and integral anti-windup.
//!
//! The flight controller (Section 4.2.2's SimpleFlight substitute) is a
//! hierarchy of these controllers managing position, velocity, and angle of
//! attack targets.

use crate::snap::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// PID gains and limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Symmetric output saturation (`None` = unlimited).
    pub output_limit: Option<f64>,
    /// Symmetric clamp on the integral accumulator (`None` = unlimited).
    pub integral_limit: Option<f64>,
}

impl PidConfig {
    /// A proportional-only controller.
    pub fn p(kp: f64) -> PidConfig {
        PidConfig {
            kp,
            ki: 0.0,
            kd: 0.0,
            output_limit: None,
            integral_limit: None,
        }
    }

    /// A PI controller.
    pub fn pi(kp: f64, ki: f64) -> PidConfig {
        PidConfig {
            ki,
            ..PidConfig::p(kp)
        }
    }

    /// A full PID controller.
    pub fn pid(kp: f64, ki: f64, kd: f64) -> PidConfig {
        PidConfig {
            ki,
            kd,
            ..PidConfig::p(kp)
        }
    }

    /// Sets the symmetric output limit (builder style).
    pub fn with_output_limit(mut self, limit: f64) -> PidConfig {
        self.output_limit = Some(limit);
        self
    }

    /// Sets the symmetric integral clamp (builder style).
    pub fn with_integral_limit(mut self, limit: f64) -> PidConfig {
        self.integral_limit = Some(limit);
        self
    }
}

/// A single-axis PID controller.
///
/// # Example
///
/// ```
/// use rose_sim_core::pid::{Pid, PidConfig};
///
/// let mut pid = Pid::new(PidConfig::pid(2.0, 0.5, 0.1).with_output_limit(1.0));
/// let u = pid.update(1.0 /* target */, 0.0 /* measured */, 0.01 /* dt */);
/// assert!(u > 0.0 && u <= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    prev_error: Option<f64>,
}

impl Pid {
    /// Creates a controller with zeroed state.
    pub fn new(config: PidConfig) -> Pid {
        Pid {
            config,
            integral: 0.0,
            prev_error: None,
        }
    }

    /// The configured gains.
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// Current integral accumulator (useful in tests).
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Resets integral and derivative history.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
    }

    /// Serializes the controller's dynamic state (gains are structural).
    pub fn save_state(&self, w: &mut SnapWriter) {
        let Pid {
            config: _,
            integral,
            prev_error,
        } = self;
        w.f64(*integral);
        w.opt_f64(*prev_error);
    }

    /// Restores the controller's dynamic state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.integral = r.f64()?;
        self.prev_error = r.opt_f64()?;
        Ok(())
    }

    /// Advances the controller by `dt` seconds and returns the new output.
    ///
    /// Uses error-derivative form; the first call after a reset has zero
    /// derivative contribution. Anti-windup: the integral is clamped, and is
    /// additionally frozen while the output is saturated in the same
    /// direction as the error (conditional integration).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn update(&mut self, target: f64, measured: f64, dt: f64) -> f64 {
        assert!(dt > 0.0, "PID dt must be positive, got {dt}");
        let error = target - measured;

        let derivative = match self.prev_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.prev_error = Some(error);

        // Tentative unsaturated output with the current integral.
        let mut integral = self.integral + error * dt;
        if let Some(lim) = self.config.integral_limit {
            integral = integral.clamp(-lim, lim);
        }
        let raw =
            self.config.kp * error + self.config.ki * integral + self.config.kd * derivative;

        let out = match self.config.output_limit {
            Some(lim) => raw.clamp(-lim, lim),
            None => raw,
        };

        // Conditional integration: only accept the new integral if we are
        // not pushing further into saturation.
        let saturated_same_dir = out != raw && (raw - out).signum() == error.signum();
        if !saturated_same_dir {
            self.integral = integral;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_response() {
        let mut pid = Pid::new(PidConfig::p(2.0));
        assert_eq!(pid.update(1.0, 0.0, 0.01), 2.0);
        assert_eq!(pid.update(1.0, 0.5, 0.01), 1.0);
    }

    #[test]
    fn integral_accumulates() {
        let mut pid = Pid::new(PidConfig::pi(0.0, 1.0));
        let mut out = 0.0;
        for _ in 0..100 {
            out = pid.update(1.0, 0.0, 0.01);
        }
        // integral of error 1.0 over 1 s = 1.0
        assert!((out - 1.0).abs() < 1e-9, "out {out}");
    }

    #[test]
    fn output_limit_respected() {
        let mut pid = Pid::new(PidConfig::p(100.0).with_output_limit(0.5));
        assert_eq!(pid.update(1.0, 0.0, 0.01), 0.5);
        assert_eq!(pid.update(-1.0, 0.0, 0.01), -0.5);
    }

    #[test]
    fn anti_windup_freezes_integral() {
        let mut pid = Pid::new(PidConfig::pi(1.0, 10.0).with_output_limit(0.1));
        for _ in 0..1000 {
            pid.update(1.0, 0.0, 0.01);
        }
        // Without anti-windup the integral would be ~100; frozen at entry to
        // saturation it stays tiny, so recovery after a target flip is fast.
        assert!(pid.integral() < 0.2, "integral {} wound up", pid.integral());
        // After the error flips sign, output leaves saturation quickly.
        let out = pid.update(-1.0, 0.0, 0.01);
        assert!(out < 0.0, "out {out} should have flipped immediately");
    }

    #[test]
    fn derivative_kicks_on_error_change() {
        let mut pid = Pid::new(PidConfig::pid(0.0, 0.0, 1.0));
        assert_eq!(pid.update(1.0, 0.0, 0.1), 0.0); // first call: no history
        let out = pid.update(1.0, 0.5, 0.1); // error 1.0 -> 0.5 over 0.1 s
        assert!((out + 5.0).abs() < 1e-9, "out {out}");
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(PidConfig::pid(1.0, 1.0, 1.0));
        pid.update(1.0, 0.0, 0.1);
        pid.update(1.0, 0.2, 0.1);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        // First post-reset call has no derivative term.
        let out = pid.update(1.0, 0.0, 0.1);
        assert!((out - (1.0 + 0.1)).abs() < 1e-9, "out {out}");
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        Pid::new(PidConfig::p(1.0)).update(1.0, 0.0, 0.0);
    }
}
