//! Minimal CSV log writing.
//!
//! The RoSÉ artifact emits CSV logs from the synchronizer tracking UAV
//! dynamics, sensing requests, and control targets (Artifact §A.2). This
//! module provides the same capability without an external dependency.
//!
//! Rows hold typed [`CsvCell`]s — integers serialize without a lossy f64
//! round-trip and strings (metric names, labels) are quoted as needed —
//! while the original all-f64 [`CsvLog::row`] remains for numeric tables.

use std::fmt::{self, Write as _};
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// One typed CSV value.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvCell {
    /// An integer, serialized exactly.
    Int(i64),
    /// A real value.
    Float(f64),
    /// Text, quoted on output when it contains delimiters.
    Str(String),
}

impl CsvCell {
    /// The cell as an f64: exact for [`CsvCell::Float`], converted for
    /// [`CsvCell::Int`], and NaN for text.
    pub fn as_f64(&self) -> f64 {
        match self {
            CsvCell::Int(v) => *v as f64,
            CsvCell::Float(v) => *v,
            CsvCell::Str(_) => f64::NAN,
        }
    }
}

impl From<i64> for CsvCell {
    fn from(v: i64) -> CsvCell {
        CsvCell::Int(v)
    }
}

impl From<u64> for CsvCell {
    /// Saturates at `i64::MAX` (no simulated counter approaches it).
    fn from(v: u64) -> CsvCell {
        CsvCell::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<f64> for CsvCell {
    fn from(v: f64) -> CsvCell {
        CsvCell::Float(v)
    }
}

impl From<&str> for CsvCell {
    fn from(v: &str) -> CsvCell {
        CsvCell::Str(v.to_string())
    }
}

impl From<String> for CsvCell {
    fn from(v: String) -> CsvCell {
        CsvCell::Str(v)
    }
}

impl fmt::Display for CsvCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvCell::Int(v) => write!(f, "{v}"),
            CsvCell::Float(v) => write!(f, "{v}"),
            CsvCell::Str(s) => {
                if s.contains([',', '"', '\n', '\r']) {
                    write!(f, "\"{}\"", s.replace('"', "\"\""))
                } else {
                    f.write_str(s)
                }
            }
        }
    }
}

/// An in-memory CSV table with a fixed header.
///
/// # Example
///
/// ```
/// use rose_sim_core::csv::CsvLog;
///
/// let mut log = CsvLog::new(&["t", "x", "y"]);
/// log.row(&[0.0, 1.0, 2.0]);
/// log.row(&[0.1, 1.5, 2.5]);
/// assert_eq!(log.len(), 2);
/// let text = log.to_csv_string();
/// assert!(text.starts_with("t,x,y\n"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsvLog {
    header: Vec<String>,
    rows: Vec<Vec<CsvCell>>,
}

impl CsvLog {
    /// Creates an empty table with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: &[&str]) -> CsvLog {
        assert!(!header.is_empty(), "CSV log needs at least one column");
        CsvLog {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends an all-numeric row (a thin wrapper over
    /// [`push_row`](CsvLog::push_row)).
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, values: &[f64]) {
        self.push_row(values.iter().map(|&v| CsvCell::Float(v)).collect());
    }

    /// Appends a typed row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn push_row(&mut self, cells: Vec<CsvCell>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "CSV row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column names.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<CsvCell>] {
        &self.rows
    }

    /// Returns one column by name as f64 (text cells become NaN), or
    /// `None` if it does not exist.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.header.iter().position(|h| h == name)?;
        Some(self.rows.iter().map(|r| r[idx].as_f64()).collect())
    }

    /// Serializes the table to CSV text.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            let mut first = true;
            for v in row {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{v}");
            }
            out.push('\n');
        }
        out
    }

    /// Writes the table to a file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write_to<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(self.to_csv_string().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let mut log = CsvLog::new(&["a", "b"]);
        log.row(&[1.0, 2.5]);
        log.row(&[-3.0, 0.0]);
        assert_eq!(log.to_csv_string(), "a,b\n1,2.5\n-3,0\n");
    }

    #[test]
    fn column_extraction() {
        let mut log = CsvLog::new(&["t", "y"]);
        log.row(&[0.0, 5.0]);
        log.row(&[1.0, 6.0]);
        assert_eq!(log.column("y"), Some(vec![5.0, 6.0]));
        assert_eq!(log.column("missing"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        CsvLog::new(&["a"]).row(&[1.0, 2.0]);
    }

    #[test]
    fn typed_rows_serialize_exactly() {
        let mut log = CsvLog::new(&["metric", "value"]);
        // 2^60 + 1 is not representable as f64; Int cells must not lose it.
        log.push_row(vec![CsvCell::from("soc.cycles"), CsvCell::Int((1 << 60) + 1)]);
        log.push_row(vec![CsvCell::from("ipc"), CsvCell::Float(0.75)]);
        assert_eq!(
            log.to_csv_string(),
            format!("metric,value\nsoc.cycles,{}\nipc,0.75\n", (1i64 << 60) + 1)
        );
    }

    #[test]
    fn text_cells_are_quoted_when_needed() {
        let mut log = CsvLog::new(&["name", "note"]);
        log.push_row(vec![
            CsvCell::from("plain"),
            CsvCell::from("has, comma and \"quotes\""),
        ]);
        assert_eq!(
            log.to_csv_string(),
            "name,note\nplain,\"has, comma and \"\"quotes\"\"\"\n"
        );
    }

    #[test]
    fn mixed_columns_read_back_as_f64() {
        let mut log = CsvLog::new(&["name", "v"]);
        log.push_row(vec![CsvCell::from("a"), CsvCell::from(7u64)]);
        log.push_row(vec![CsvCell::from("b"), CsvCell::Float(1.5)]);
        assert_eq!(log.column("v"), Some(vec![7.0, 1.5]));
        let names = log.column("name").unwrap();
        assert!(names.iter().all(|v| v.is_nan()), "text reads back as NaN");
    }
}
