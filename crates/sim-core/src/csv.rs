//! Minimal CSV log writing.
//!
//! The RoSÉ artifact emits CSV logs from the synchronizer tracking UAV
//! dynamics, sensing requests, and control targets (Artifact §A.2). This
//! module provides the same capability without an external dependency.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// An in-memory CSV table with a fixed header.
///
/// # Example
///
/// ```
/// use rose_sim_core::csv::CsvLog;
///
/// let mut log = CsvLog::new(&["t", "x", "y"]);
/// log.row(&[0.0, 1.0, 2.0]);
/// log.row(&[0.1, 1.5, 2.5]);
/// assert_eq!(log.len(), 2);
/// let text = log.to_csv_string();
/// assert!(text.starts_with("t,x,y\n"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsvLog {
    header: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl CsvLog {
    /// Creates an empty table with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: &[&str]) -> CsvLog {
        assert!(!header.is_empty(), "CSV log needs at least one column");
        CsvLog {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.header.len(),
            "CSV row width {} != header width {}",
            values.len(),
            self.header.len()
        );
        self.rows.push(values.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column names.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Returns one column by name, or `None` if it does not exist.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.header.iter().position(|h| h == name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }

    /// Serializes the table to CSV text.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            let mut first = true;
            for v in row {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{v}");
            }
            out.push('\n');
        }
        out
    }

    /// Writes the table to a file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write_to<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(self.to_csv_string().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let mut log = CsvLog::new(&["a", "b"]);
        log.row(&[1.0, 2.5]);
        log.row(&[-3.0, 0.0]);
        assert_eq!(log.to_csv_string(), "a,b\n1,2.5\n-3,0\n");
    }

    #[test]
    fn column_extraction() {
        let mut log = CsvLog::new(&["t", "y"]);
        log.row(&[0.0, 5.0]);
        log.row(&[1.0, 6.0]);
        assert_eq!(log.column("y"), Some(vec![5.0, 6.0]));
        assert_eq!(log.column("missing"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        CsvLog::new(&["a"]).row(&[1.0, 2.0]);
    }
}
