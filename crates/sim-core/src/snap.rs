//! The snapshot codec: a compact, versioned, dependency-free binary
//! format for mission state.
//!
//! Snapshots exist to make *every* piece of mutable co-simulation state
//! explicit (DESIGN.md §4e): each component serializes its dynamic state
//! with [`SnapWriter`] and restores it with [`SnapReader`]. The format is
//! deliberately primitive — little-endian fixed-width integers, `f64`
//! bit patterns, and length-prefixed byte strings — so that
//! serialize → deserialize → serialize is byte-identical by construction
//! and no external serialization crate is required.
//!
//! # The "no hidden state" contract
//!
//! A component's `save_state` must begin with an exhaustive destructuring
//! of `self` (`let Self { a, b, c } = self;` — **no `..` rest pattern**),
//! so adding a field to a snapshot-covered struct breaks the build until
//! the author decides whether the field is dynamic state (serialize it)
//! or structural configuration (rebuilt from `MissionConfig` on resume,
//! bind it to `_`). The SNAP001 lint enforces the no-rest-pattern rule.
//!
//! # Sections
//!
//! Component boundaries are marked with [`SnapWriter::section`] magics.
//! A reader that drifts out of alignment (a component reading more or
//! fewer bytes than were written) fails fast at the next section check
//! with both magics in the error, instead of silently misinterpreting
//! another component's bytes.

use std::fmt;

/// A snapshot decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the value's bytes.
    Truncated {
        /// Bytes the read needed.
        wanted: usize,
        /// Bytes left in the buffer.
        available: usize,
    },
    /// A tag byte had no defined meaning at this position.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A section magic did not match — the reader is misaligned.
    BadSection {
        /// The magic the reader expected.
        expected: u32,
        /// The magic actually found.
        found: u32,
    },
    /// The snapshot's format version is not supported.
    BadVersion {
        /// The newest version this build understands.
        supported: u32,
        /// The version in the snapshot header.
        found: u32,
    },
    /// Bytes remained after the final field was read.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
    /// A length prefix exceeded the bytes that remain in the buffer.
    BadLength {
        /// The claimed length.
        len: u64,
        /// Bytes left in the buffer.
        available: usize,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { wanted, available } => {
                write!(f, "snapshot truncated: wanted {wanted} bytes, {available} available")
            }
            SnapError::BadTag { context, tag } => {
                write!(f, "bad tag {tag:#04x} decoding {context}")
            }
            SnapError::BadSection { expected, found } => write!(
                f,
                "section mismatch: expected {expected:#010x}, found {found:#010x}"
            ),
            SnapError::BadVersion { supported, found } => write!(
                f,
                "unsupported snapshot version {found} (this build supports <= {supported})"
            ),
            SnapError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after final field")
            }
            SnapError::BadLength { len, available } => {
                write!(f, "length prefix {len} exceeds {available} available bytes")
            }
            SnapError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Appends snapshot fields to a growable buffer.
#[derive(Debug, Default, Clone)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a section magic marking a component boundary.
    pub fn section(&mut self, magic: u32) {
        self.u32(magic);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern — bit-exact, including
    /// NaN payloads and signed zeros.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Writes an optional `f64` (presence byte + value).
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => self.u8(0),
        }
    }

    /// Writes an optional `u64` (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Writes an optional length-prefixed byte string.
    pub fn opt_bytes(&mut self, v: Option<&[u8]>) {
        match v {
            Some(b) => {
                self.u8(1);
                self.bytes(b);
            }
            None => self.u8(0),
        }
    }
}

/// Reads snapshot fields back in write order.
#[derive(Debug, Clone)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf` positioned at the start.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the buffer was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`SnapError::TrailingBytes`] if any bytes remain.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                wanted: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Checks the next section magic.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadSection`] on mismatch (reader misalignment).
    pub fn section(&mut self, magic: u32) -> Result<(), SnapError> {
        let found = self.u32()?;
        if found == magic {
            Ok(())
        } else {
            Err(SnapError::BadSection {
                expected: magic,
                found,
            })
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] if the buffer is exhausted.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] if the buffer is exhausted.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        // rose-lint: allow(PANIC002, take(2) returned exactly 2 bytes; the conversion is infallible)
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] if the buffer is exhausted.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        // rose-lint: allow(PANIC002, take(4) returned exactly 4 bytes; the conversion is infallible)
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] if the buffer is exhausted.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        // rose-lint: allow(PANIC002, take(8) returned exactly 8 bytes; the conversion is infallible)
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] if the buffer is exhausted.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a `usize` written by [`SnapWriter::usize`].
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] if the buffer is exhausted, or
    /// [`SnapError::BadLength`] if the value exceeds the remaining buffer
    /// (a `usize` field is always an index or count bounded by the data
    /// that follows, so this catches corrupt prefixes early).
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::BadLength {
            len: v,
            available: self.remaining(),
        })
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] if the buffer is exhausted.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] on exhaustion, [`SnapError::BadTag`] if
    /// the byte is neither 0 nor 1.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(SnapError::BadTag {
                context: "bool",
                tag,
            }),
        }
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadLength`] if the prefix exceeds the buffer,
    /// [`SnapError::Truncated`] on exhaustion.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return Err(SnapError::BadLength {
                len,
                available: self.remaining(),
            });
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// As [`SnapReader::bytes`], plus [`SnapError::BadUtf8`].
    pub fn string(&mut self) -> Result<String, SnapError> {
        String::from_utf8(self.bytes()?).map_err(|_| SnapError::BadUtf8)
    }

    /// Reads an optional `f64`.
    ///
    /// # Errors
    ///
    /// As [`SnapReader::bool`] and [`SnapReader::f64`].
    pub fn opt_f64(&mut self) -> Result<Option<f64>, SnapError> {
        Ok(if self.bool()? { Some(self.f64()?) } else { None })
    }

    /// Reads an optional `u64`.
    ///
    /// # Errors
    ///
    /// As [`SnapReader::bool`] and [`SnapReader::u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    /// Reads an optional byte string.
    ///
    /// # Errors
    ///
    /// As [`SnapReader::bool`] and [`SnapReader::bytes`].
    pub fn opt_bytes(&mut self) -> Result<Option<Vec<u8>>, SnapError> {
        Ok(if self.bool()? {
            Some(self.bytes()?)
        } else {
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_primitive() {
        let mut w = SnapWriter::new();
        w.section(0x5eed_0001);
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(0x0123_4567_89ab_cdef);
        w.i64(-42);
        w.usize(7);
        w.f64(-0.0);
        w.f64(f64::from_bits(0x7ff8_dead_beef_0001)); // NaN payload
        w.bool(true);
        w.bytes(&[1, 2, 3]);
        w.str("hello");
        w.opt_f64(Some(1.5));
        w.opt_f64(None);
        w.opt_u64(Some(9));
        w.opt_bytes(Some(&[4, 5]));
        w.opt_bytes(None);
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        r.section(0x5eed_0001).unwrap();
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 7);
        let z = r.f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "signed zero preserved");
        assert_eq!(r.f64().unwrap().to_bits(), 0x7ff8_dead_beef_0001);
        assert!(r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.string().unwrap(), "hello");
        assert_eq!(r.opt_f64().unwrap(), Some(1.5));
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_bytes().unwrap(), Some(vec![4, 5]));
        assert_eq!(r.opt_bytes().unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        assert_eq!(
            r.u64(),
            Err(SnapError::Truncated {
                wanted: 8,
                available: 4
            })
        );
    }

    #[test]
    fn section_mismatch_is_detected() {
        let mut w = SnapWriter::new();
        w.section(0x1111_1111);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            r.section(0x2222_2222),
            Err(SnapError::BadSection {
                expected: 0x2222_2222,
                found: 0x1111_1111
            })
        );
    }

    #[test]
    fn bad_length_prefix_is_detected() {
        let mut w = SnapWriter::new();
        w.u64(1_000_000); // length prefix far beyond the buffer
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.bytes(), Err(SnapError::BadLength { .. })));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = SnapWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes { count: 1 }));
    }

    #[test]
    fn bad_bool_tag_is_detected() {
        let bytes = [7u8];
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            r.bool(),
            Err(SnapError::BadTag {
                context: "bool",
                tag: 7
            })
        );
    }
}
