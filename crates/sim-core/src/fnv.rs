//! FNV-1a 64-bit hashing for determinism digests.
//!
//! The determinism auditor needs a digest that is (a) identical across
//! runs, platforms, and process layouts, (b) dependency-free, and (c)
//! cheap enough to fold an entire trajectory and trace log through. The
//! std `DefaultHasher` guarantees none of the first — its SipHash keys are
//! randomized per process — so the auditor uses FNV-1a with the canonical
//! 64-bit offset basis and prime. Floats are folded through their IEEE-754
//! bit patterns, making the digest bit-exact rather than approximately
//! equal: any divergence, however small, changes the hash.

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

/// The FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 {
            state: OFFSET_BASIS,
        }
    }

    /// Folds raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Fnv64 {
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(PRIME);
        }
        self
    }

    /// Folds a `u64` (little-endian bytes) into the digest.
    pub fn write_u64(&mut self, v: u64) -> &mut Fnv64 {
        self.write(&v.to_le_bytes())
    }

    /// Folds an `f64` by bit pattern: two values hash equal iff they are
    /// bit-identical (distinct NaN payloads and signed zeros differ).
    pub fn write_f64(&mut self, v: f64) -> &mut Fnv64 {
        self.write_u64(v.to_bits())
    }

    /// Folds a string's UTF-8 bytes, length-prefixed so concatenations of
    /// different splits cannot collide.
    pub fn write_str(&mut self, s: &str) -> &mut Fnv64 {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes())
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// One-shot digest of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical FNV-1a 64 test vectors (Noll's reference list).
    #[test]
    fn reference_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn float_digests_are_bitwise() {
        let mut a = Fnv64::new();
        a.write_f64(0.0);
        let mut b = Fnv64::new();
        b.write_f64(-0.0);
        // 0.0 == -0.0 numerically, but the digest is bit-exact.
        assert_ne!(a.finish(), b.finish());

        let mut c = Fnv64::new();
        c.write_f64(1.5);
        let mut d = Fnv64::new();
        d.write_f64(1.5);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn length_prefix_separates_strings() {
        let mut a = Fnv64::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }
}
