//! Seeded, splittable deterministic random number generation.
//!
//! Every stochastic element of the co-simulation — IMU noise, perception
//! sampling, environment disturbances — draws from a [`SimRng`] stream that
//! is derived from the top-level simulation seed. Re-running a simulation
//! with the same seed reproduces the trajectory bit-exactly, which is the
//! property the paper relies on when attributing trajectory variation to
//! environment randomness (Artifact §A.7: "FireSim itself is deterministic").
//!
//! The generator is SplitMix64 (Steele et al., "Fast splittable pseudorandom
//! number generators"), chosen because it is tiny, passes BigCrush when used
//! as a 64-bit generator, and splits cleanly into independent streams.
//!
//! # No hidden state
//!
//! `SimRng`'s entire dynamic state is the single `u64` exposed by
//! [`SimRng::state_bits`] / restored by [`SimRng::restore_state_bits`] —
//! there is no cached Box–Muller spare, rejection carry, or any other
//! hidden draw (see [`SimRng::gaussian`]). Snapshotting that one word and
//! restoring it resumes every derived distribution — uniform, Lemire
//! integer, Bernoulli, Gaussian — bit-identically mid-stream, a contract
//! the mission snapshot / fork / resume machinery depends on and the
//! `gaussian_stream_has_no_hidden_state` test enforces.

use crate::snap::{SnapError, SnapReader, SnapWriter};
use std::fmt;

/// A deterministic pseudorandom stream.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SimRng {
    state: u64,
    /// Retained for `Debug` output so streams are identifiable in dumps.
    label: &'static str,
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRng")
            .field("label", &self.label)
            .field("state", &format_args!("{:#018x}", self.state))
            .finish()
    }
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            state: seed,
            label: "root",
        }
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The child's seed mixes the parent state with a hash of the label, so
    /// `split("imu")` and `split("camera")` never collide and do not perturb
    /// the parent stream.
    pub fn split(&self, label: &'static str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        SimRng {
            state: mix64(self.state ^ h),
            label,
        }
    }

    /// The stream's complete dynamic state (see the module docs: there is
    /// no other mutable state).
    pub fn state_bits(&self) -> u64 {
        self.state
    }

    /// Overwrites the stream position with a state captured by
    /// [`SimRng::state_bits`]. The label is structural (it identifies the
    /// stream in debug dumps) and is kept.
    pub fn restore_state_bits(&mut self, state: u64) {
        self.state = state;
    }

    /// Serializes the stream's dynamic state.
    pub fn save_state(&self, w: &mut SnapWriter) {
        // The label is structural: it is re-established by rebuilding the
        // component that owns this stream from its config.
        let SimRng { state, label: _ } = self;
        w.u64(*state);
    }

    /// Restores the stream's dynamic state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a truncated snapshot.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.state = r.u64()?;
        Ok(())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Next value uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next value uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform range inverted: {lo} > {hi}");
        lo + (hi - lo) * self.next_f64()
    }

    /// Next integer uniform in `[0, n)` (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        // Widening multiply rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal sample.
    ///
    /// Box–Muller produces values in pairs; this implementation computes
    /// only the cosine branch and **discards the pair's second element**,
    /// by contract: caching the spare would be hidden stochastic state
    /// that a snapshot could not capture, making mid-stream resume
    /// diverge. Every call therefore consumes a whole number of
    /// `next_u64` draws (two per accepted sample, plus one per rejected
    /// `u == 0.0` draw), and the stream position after any call is fully
    /// described by [`SimRng::state_bits`]. The
    /// `gaussian_stream_has_no_hidden_state` test pins this down.
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                let v = self.next_f64();
                return (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos();
            }
        }
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }
}

impl Default for SimRng {
    fn default() -> SimRng {
        SimRng::new(0x5eed_0000_0000_0001)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splits_are_independent_of_parent() {
        let parent = SimRng::new(7);
        let mut c1 = parent.split("imu");
        let mut c2 = parent.split("camera");
        // Different labels produce different streams.
        assert_ne!(c1.next_u64(), c2.next_u64());
        // Splitting does not mutate the parent.
        let mut p1 = parent.clone();
        let mut p2 = SimRng::new(7);
        assert_eq!(p1.next_u64(), p2.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn below_bounds_and_coverage() {
        let mut rng = SimRng::new(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = rng.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::new(123);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.gaussian();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.03, "var {var} too far from 1");
    }

    #[test]
    fn gaussian_stream_has_no_hidden_state() {
        // Resuming from the captured state mid-stream must reproduce the
        // remaining gaussian draws bit-exactly: any cached Box–Muller
        // spare or rejection carry would break this.
        let mut rng = SimRng::new(0xfeed);
        for _ in 0..257 {
            rng.gaussian();
        }
        let saved = rng.state_bits();
        let tail: Vec<u64> = (0..512).map(|_| rng.gaussian().to_bits()).collect();

        let mut resumed = SimRng::new(0xfeed).split("other-label-is-structural");
        resumed.restore_state_bits(saved);
        let replay: Vec<u64> = (0..512).map(|_| resumed.gaussian().to_bits()).collect();
        assert_eq!(tail, replay, "gaussian stream diverged after resume");
    }

    #[test]
    fn snapshot_roundtrip_resumes_all_distributions() {
        let mut rng = SimRng::new(99).split("sensor");
        rng.gaussian();
        rng.below(17);
        rng.chance(0.5);

        let mut w = SnapWriter::new();
        rng.save_state(&mut w);
        let bytes = w.into_bytes();

        let expected: Vec<u64> = {
            let mut c = rng.clone();
            (0..64)
                .map(|i| match i % 4 {
                    0 => c.next_u64(),
                    1 => c.gaussian().to_bits(),
                    2 => c.below(1000),
                    _ => c.chance(0.3) as u64,
                })
                .collect()
        };

        let mut restored = SimRng::new(99).split("sensor");
        let mut r = SnapReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        let got: Vec<u64> = (0..64)
            .map(|i| match i % 4 {
                0 => restored.next_u64(),
                1 => restored.gaussian().to_bits(),
                2 => restored.below(1000),
                _ => restored.chance(0.3) as u64,
            })
            .collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn chance_probability() {
        let mut rng = SimRng::new(5);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "empirical p {p}");
    }
}
