//! Strongly-typed simulation time.
//!
//! The co-simulation couples two clock domains:
//!
//! * the SoC simulator advances in **clock cycles** (the minimum unit of time
//!   in an RTL simulation), and
//! * the environment simulator advances in **frames** (one physics +
//!   rendering step).
//!
//! The paper's Equation 1 fixes the ratio between the two:
//!
//! ```text
//! airsim_steps / firesim_steps = soc_clock_freq / airsim_frame_freq
//! ```
//!
//! [`SyncRatio`] encodes that relation and is the single source of truth for
//! converting between domains.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A count of SoC clock cycles.
///
/// `Cycle` is an absolute position on the SoC timeline (cycle 0 is reset).
/// Arithmetic is saturating-free: overflowing a `u64` cycle counter at 1 GHz
/// would take ~585 years of simulated time, so plain addition is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero cycle (reset).
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the raw cycle count.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Number of cycles from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0
            .checked_sub(earlier.0)
            // rose-lint: allow(PANIC002, documented panic contract; callers pass monotone cycles)
            .expect("Cycle::since called with a later cycle")
    }

    /// Converts this absolute cycle count to seconds under `clock`.
    pub fn to_seconds(self, clock: ClockSpec) -> f64 {
        self.0 as f64 / clock.hz() as f64
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.since(rhs)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A count of environment simulator frames.
///
/// One frame corresponds to one physics + rendering step of the environment
/// simulator (the minimum time period of the AirSim-side domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Frame(pub u64);

impl Frame {
    /// Frame zero (simulation start).
    pub const ZERO: Frame = Frame(0);

    /// Returns the raw frame count.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Converts this absolute frame count to seconds under `frames`.
    pub fn to_seconds(self, frames: FrameSpec) -> f64 {
        self.0 as f64 / frames.hz() as f64
    }
}

impl Add<u64> for Frame {
    type Output = Frame;
    fn add(self, rhs: u64) -> Frame {
        Frame(self.0 + rhs)
    }
}

impl AddAssign<u64> for Frame {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame {}", self.0)
    }
}

/// The clock frequency of the simulated SoC.
///
/// A property of the physical SoC being designed (Section 3.4.1); the default
/// target used throughout the paper's evaluation is 1 GHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClockSpec {
    hz: u64,
}

impl ClockSpec {
    /// Creates a clock specification from a frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub fn from_hz(hz: u64) -> ClockSpec {
        assert!(hz > 0, "clock frequency must be nonzero");
        ClockSpec { hz }
    }

    /// Creates a clock specification from a frequency in megahertz.
    pub fn from_mhz(mhz: u64) -> ClockSpec {
        ClockSpec::from_hz(mhz * 1_000_000)
    }

    /// The frequency in hertz.
    pub fn hz(self) -> u64 {
        self.hz
    }

    /// Converts a duration in seconds to a whole number of cycles (floor).
    pub fn cycles_in(self, seconds: f64) -> u64 {
        // rose-lint: allow(CAST001, float-to-cycle floor is this API's contract; saturating `as` keeps huge inputs finite)
        (seconds * self.hz as f64) as u64
    }
}

impl Default for ClockSpec {
    /// 1 GHz, the paper's modeled SoC frequency.
    fn default() -> ClockSpec {
        ClockSpec::from_hz(1_000_000_000)
    }
}

impl fmt::Display for ClockSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hz.is_multiple_of(1_000_000) {
            write!(f, "{} MHz", self.hz / 1_000_000)
        } else {
            write!(f, "{} Hz", self.hz)
        }
    }
}

/// The physics/render update rate of the environment simulator.
///
/// A tunable simulation parameter (typically 60–120 Hz).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameSpec {
    hz: u32,
}

impl FrameSpec {
    /// Creates a frame-rate specification from a rate in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub fn from_hz(hz: u32) -> FrameSpec {
        assert!(hz > 0, "frame rate must be nonzero");
        FrameSpec { hz }
    }

    /// The frame rate in hertz.
    pub fn hz(self) -> u32 {
        self.hz
    }

    /// The simulated duration of one frame in seconds.
    pub fn dt(self) -> f64 {
        1.0 / self.hz as f64
    }
}

impl Default for FrameSpec {
    /// 60 Hz, the typical environment update rate.
    fn default() -> FrameSpec {
        FrameSpec::from_hz(60)
    }
}

impl fmt::Display for FrameSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} fps", self.hz)
    }
}

/// The lockstep ratio between the two clock domains (Equation 1).
///
/// One environment frame corresponds to `cycles_per_frame()` SoC cycles. A
/// synchronization period is expressed as `(frames, frames *
/// cycles_per_frame)` so both simulators observe events at corresponding
/// simulation times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SyncRatio {
    clock: ClockSpec,
    frames: FrameSpec,
}

impl SyncRatio {
    /// Builds the ratio for a given SoC clock and environment frame rate.
    pub fn new(clock: ClockSpec, frames: FrameSpec) -> SyncRatio {
        SyncRatio { clock, frames }
    }

    /// SoC clock specification.
    pub fn clock(self) -> ClockSpec {
        self.clock
    }

    /// Environment frame specification.
    pub fn frames(self) -> FrameSpec {
        self.frames
    }

    /// Whole SoC cycles corresponding to one environment frame (floor).
    ///
    /// E.g. a 1 GHz SoC at 60 fps gives 16,666,666 cycles per frame.
    pub fn cycles_per_frame(self) -> u64 {
        // rose-lint: allow(CAST001, u32 frame rate widens into u64; no truncation possible)
        self.clock.hz() / self.frames.hz() as u64
    }

    /// SoC cycles corresponding to `n` environment frames, computed
    /// exactly as `floor(n * clock_hz / frame_hz)`.
    ///
    /// Multiplying the truncated per-frame quotient instead (the naive
    /// `cycles_per_frame() * n`) loses the fractional cycles of every
    /// frame: at 1 GHz / 60 fps each frame drops 40 cycles, ~2.4 kcycle
    /// of drift per simulated second, and makes total simulated time
    /// depend on the synchronization granularity. The exact form keeps
    /// the cycle and frame timelines aligned to within one cycle however
    /// the span is partitioned.
    pub fn cycles_for_frames(self, n: u64) -> u64 {
        // rose-lint: allow(CAST001, the exact u128 path: quotient <= n * hz / frame_hz < 2^64 because frame_hz >= 1 Hz bounds cycles by u64 cycle-time capacity)
        ((n as u128 * self.clock.hz() as u128) / self.frames.hz() as u128) as u64
    }

    /// SoC cycles covering the frame interval `[start_frame, end_frame)`.
    ///
    /// This is the Bresenham-style grant size the synchronizer uses:
    /// because consecutive spans telescope
    /// (`cycles_for_span(0, a) + cycles_for_span(a, b) ==
    /// cycles_for_frames(b)`), the sum of grants over any partition of N
    /// frames equals `floor(N * clock_hz / frame_hz)` exactly — no
    /// drift accumulates regardless of `frames_per_sync`.
    ///
    /// # Panics
    ///
    /// Panics if `end_frame < start_frame`.
    pub fn cycles_for_span(self, start_frame: u64, end_frame: u64) -> u64 {
        assert!(end_frame >= start_frame, "span must not be negative");
        self.cycles_for_frames(end_frame) - self.cycles_for_frames(start_frame)
    }

    /// Number of whole frames covered by `cycles` (floor).
    pub fn frames_for_cycles(self, cycles: u64) -> u64 {
        cycles / self.cycles_per_frame()
    }
}

impl Default for SyncRatio {
    fn default() -> SyncRatio {
        SyncRatio::new(ClockSpec::default(), FrameSpec::default())
    }
}

/// A unified view of simulation time, tracking both domains.
///
/// `SimTime` is advanced only by the synchronizer, which guarantees that the
/// two counters always satisfy the lockstep invariant within one sync period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimTime {
    /// Current SoC cycle.
    pub cycle: Cycle,
    /// Current environment frame.
    pub frame: Frame,
}

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime {
        cycle: Cycle::ZERO,
        frame: Frame::ZERO,
    };

    /// Advances both domains by one synchronization period.
    pub fn advance(&mut self, frames: u64, cycles: u64) {
        self.frame += frames;
        self.cycle += cycles;
    }

    /// Simulated seconds elapsed, measured on the SoC clock.
    pub fn seconds(self, ratio: SyncRatio) -> f64 {
        self.cycle.to_seconds(ratio.clock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle(100);
        let b = a + 50;
        assert_eq!(b, Cycle(150));
        assert_eq!(b - a, 50);
        assert_eq!(b.since(a), 50);
    }

    #[test]
    #[should_panic(expected = "later cycle")]
    fn cycle_since_panics_backwards() {
        let _ = Cycle(10).since(Cycle(20));
    }

    #[test]
    fn equation_1_ratio() {
        // Paper Figure 6: 1 GHz SoC, 60 fps -> sync every ~16M cycles.
        let ratio = SyncRatio::new(ClockSpec::from_hz(1_000_000_000), FrameSpec::from_hz(60));
        assert_eq!(ratio.cycles_per_frame(), 16_666_666);
        // Exact, not 60 * 16_666_666 = 999_999_960: one simulated second
        // of frames is exactly one simulated second of cycles.
        assert_eq!(ratio.cycles_for_frames(60), 1_000_000_000);
    }

    #[test]
    fn span_grants_telescope_without_drift() {
        let ratio = SyncRatio::new(ClockSpec::from_hz(1_000_000_000), FrameSpec::from_hz(60));
        for frames_per_sync in [1u64, 7, 10, 40] {
            let mut frame = 0u64;
            let mut granted = 0u64;
            while frame < 6000 {
                granted += ratio.cycles_for_span(frame, frame + frames_per_sync);
                frame += frames_per_sync;
            }
            assert_eq!(
                granted,
                ratio.cycles_for_frames(frame),
                "drift at frames_per_sync={frames_per_sync}"
            );
        }
    }

    #[test]
    fn frames_for_cycles_is_floor() {
        let ratio = SyncRatio::new(ClockSpec::from_hz(100), FrameSpec::from_hz(10));
        assert_eq!(ratio.cycles_per_frame(), 10);
        assert_eq!(ratio.frames_for_cycles(99), 9);
        assert_eq!(ratio.frames_for_cycles(100), 10);
    }

    #[test]
    fn seconds_conversion() {
        let clock = ClockSpec::from_mhz(500);
        assert_eq!(Cycle(500_000_000).to_seconds(clock), 1.0);
        assert_eq!(clock.cycles_in(0.5), 250_000_000);
    }

    #[test]
    fn sim_time_advance() {
        let ratio = SyncRatio::default();
        let mut t = SimTime::ZERO;
        t.advance(1, ratio.cycles_per_frame());
        assert_eq!(t.frame, Frame(1));
        assert_eq!(t.cycle, Cycle(16_666_666));
        assert!((t.seconds(ratio) - 1.0 / 60.0).abs() < 1e-6);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ClockSpec::from_mhz(1000).to_string(), "1000 MHz");
        assert_eq!(FrameSpec::from_hz(60).to_string(), "60 fps");
        assert_eq!(Cycle(5).to_string(), "5 cyc");
        assert_eq!(Frame(5).to_string(), "frame 5");
    }
}
