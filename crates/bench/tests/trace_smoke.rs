//! Acceptance smoke test for the tracing layer: a short traced tunnel
//! mission must emit valid Chrome trace-event JSON carrying every track,
//! with event counts matching the mission's own counters and timestamps
//! consistent with the configured `SyncRatio`.

use rose::mission::{run_mission, MissionConfig};
use rose_trace::{json, Track};

#[test]
fn traced_tunnel_mission_emits_valid_chrome_json() {
    let config = MissionConfig {
        max_sim_seconds: 2.0,
        trace: true,
        ..MissionConfig::default()
    };
    let report = run_mission(&config);
    let log = report.trace.as_ref().expect("trace requested");
    let doc = json::parse(&log.to_chrome_json()).expect("emitted trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");

    // All six tracks are declared in thread_name metadata.
    let name_of = |e: &json::Json| e.get("name").and_then(|n| n.as_str()).map(str::to_string);
    let thread_names: Vec<String> = events
        .iter()
        .filter(|e| name_of(e).as_deref() == Some("thread_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
                .map(str::to_string)
        })
        .collect();
    for track in Track::ALL {
        assert!(
            thread_names.iter().any(|t| t == track.name()),
            "track {:?} missing from metadata",
            track.name()
        );
    }

    // The stack's event types all appear, in counts matching the report.
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| name_of(e).as_deref() == Some(name))
            .count() as u64
    };
    assert_eq!(count("env-frame"), report.trajectory.len() as u64);
    assert_eq!(count("sync-quantum"), report.sync_stats.syncs);
    assert_eq!(
        count("bridge-packet"),
        report.sync_stats.data_to_env + report.sync_stats.data_to_rtl
    );
    assert!(count("gemmini-tile") > 0, "accelerator activity traced");

    // Timestamps are consistent with the SyncRatio: quantum n starts at
    // n * frames_per_sync / frame_hz seconds on the shared microsecond
    // axis (the cycle-exact grants telescope, so drift stays sub-µs).
    let period_us = config.frames_per_sync as f64 / config.frame_hz as f64 * 1e6;
    let quanta: Vec<f64> = events
        .iter()
        .filter(|e| name_of(e).as_deref() == Some("sync-quantum"))
        .filter_map(|e| e.get("ts").and_then(|t| t.as_f64()))
        .collect();
    assert!(!quanta.is_empty());
    for (n, ts) in quanta.iter().enumerate() {
        let expected = n as f64 * period_us;
        assert!(
            (ts - expected).abs() < 1.0,
            "quantum {n} at {ts} µs, expected {expected} µs"
        );
    }
}
