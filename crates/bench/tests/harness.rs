//! Smoke tests for the experiment harness: the runners behind the figure
//! binaries produce structurally valid results.

use rose_bench::{mission_table, smoke_mission, table2, table3, trajectories_csv, LabeledRun};

#[test]
fn table2_lists_three_configs() {
    let t = table2();
    let rendered = t.render();
    for name in ["BOOM", "Rocket", "Gemmini", "None"] {
        assert!(rendered.contains(name), "missing {name} in:\n{rendered}");
    }
}

#[test]
fn table3_rows_are_ordered_and_positive() {
    let rows = table3();
    assert_eq!(rows.len(), 5);
    for w in rows.windows(2) {
        assert!(w[0].boom_ms < w[1].boom_ms, "BOOM latency not monotone");
        assert!(w[0].accuracy < w[1].accuracy);
    }
    for r in &rows {
        assert!(r.rocket_ms > r.boom_ms, "{}: Rocket must be slower", r.model);
    }
}

#[test]
fn smoke_mission_flies() {
    let report = smoke_mission();
    assert!(report.sim_time_s >= 2.0);
    assert!(report.inference_count >= 1);
    assert!(!report.trajectory.is_empty());
}

#[test]
fn mission_table_and_csv_agree() {
    let report = smoke_mission();
    let frames = report.trajectory.len();
    let runs = vec![LabeledRun {
        label: "smoke".into(),
        report,
    }];
    let table = mission_table(&runs).render();
    assert!(table.contains("smoke"));
    let csv = trajectories_csv(&runs);
    assert_eq!(csv.len(), frames);
    assert_eq!(csv.header(), &["run", "t", "x", "y"]);
}

#[test]
fn fig15_quick_point_has_positive_throughput() {
    // One very short TCP-deployment measurement (0.2 sim-seconds).
    let points = rose_bench::fig15(0.2);
    assert_eq!(points.len(), 6);
    for p in &points {
        assert!(p.sim_mhz > 0.0, "zero throughput at {}", p.frames_per_sync);
        assert_eq!(p.cycles_per_sync, p.frames_per_sync * 10_000_000);
    }
}
