//! Microbenchmarks of the simulation substrates: each group measures one
//! model the co-simulation is built from, so regressions in simulator
//! performance (not simulated performance) are visible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rose_bridge::packet::Packet;
use rose_dnn::perception::PerceptionHead;
use rose_dnn::{DnnModel, Tensor};
use rose_envsim::camera::{render, CameraConfig};
use rose_envsim::dynamics::{MotorCommand, QuadrotorBody, QuadrotorParams, RigidBodyState};
use rose_envsim::world::World;
use rose_sim_core::math::Vec3;
use rose_sim_core::rng::SimRng;
use rose_socsim::cpu::{CpuConfig, CpuModel};
use rose_socsim::gemmini::{ConvShape, GemminiConfig, GemminiModel};
use rose_socsim::kernel::Kernel;
use rose_socsim::mem::{MemConfig, MemSystem};
use bytes::BytesMut;

fn bench_gemmini(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemmini_model");
    group.bench_function("matmul_256", |b| {
        b.iter(|| {
            let mut g = GemminiModel::new(GemminiConfig::default());
            let mut m = MemSystem::new(MemConfig::default());
            black_box(g.matmul(256, 256, 256, &mut m))
        })
    });
    group.bench_function("conv_stage", |b| {
        let shape = ConvShape {
            in_c: 64,
            out_c: 64,
            out_h: 40,
            out_w: 40,
            ksize: 3,
        };
        b.iter(|| {
            let mut g = GemminiModel::new(GemminiConfig::default());
            let mut m = MemSystem::new(MemConfig::default());
            black_box(g.conv(shape, &mut m))
        })
    });
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_system");
    group.bench_function("stream_64k_accesses", |b| {
        b.iter(|| {
            let mut m = MemSystem::new(MemConfig::default());
            let mut total = 0u64;
            for i in 0..65536u64 {
                total += m.access(i * 8, i % 4 == 0);
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_cpu_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_model");
    for (name, cfg) in [("rocket", CpuConfig::rocket()), ("boom", CpuConfig::boom())] {
        group.bench_function(name, |b| {
            let trace = Kernel::MatMul { m: 24, k: 24, n: 24 }.trace();
            b.iter(|| {
                let mut cpu = CpuModel::new(cfg);
                let mut m = MemSystem::new(MemConfig::default());
                black_box(cpu.run_trace(&trace, &mut m))
            })
        });
    }
    group.finish();
}

fn bench_packets(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_codec");
    let data = Packet::Data {
        seq: 0,
        payload: vec![7u8; 4096],
    };
    group.bench_function("encode_4k", |b| {
        b.iter(|| black_box(data.to_bytes()))
    });
    group.bench_function("decode_4k", |b| {
        let bytes = data.to_bytes();
        b.iter(|| {
            let mut buf = BytesMut::from(&bytes[..]);
            black_box(Packet::decode(&mut buf).unwrap())
        })
    });
    group.finish();
}

fn bench_physics(c: &mut Criterion) {
    let mut group = c.benchmark_group("environment");
    group.bench_function("quadrotor_step", |b| {
        let p = QuadrotorParams::default();
        let mut body = QuadrotorBody::new(
            p,
            RigidBodyState {
                position: Vec3::new(0.0, 0.0, 2.0),
                ..RigidBodyState::default()
            },
        );
        let cmd = MotorCommand::uniform(p.hover_command());
        b.iter(|| {
            body.step(cmd, 1.0 / 480.0);
            black_box(body.state().position)
        })
    });
    group.bench_function("camera_render_tunnel", |b| {
        let world = World::tunnel();
        let cfg = CameraConfig::default();
        b.iter(|| black_box(render(&world, Vec3::new(5.0, 0.2, 1.5), 0.05, &cfg)))
    });
    group.bench_function("camera_render_s_shape", |b| {
        let world = World::s_shape();
        let cfg = CameraConfig::default();
        b.iter(|| black_box(render(&world, Vec3::new(5.0, 0.2, 1.5), 0.05, &cfg)))
    });
    group.finish();
}

fn bench_cost_model(c: &mut Criterion) {
    use rose_socsim::SharedTimingCache;

    let mut group = c.benchmark_group("cost_model");
    // Cold kernel expansion: what every mission paid per unique kernel
    // before the timing cache, and what a cache miss still costs.
    group.bench_function("kernel_expansion_cold", |b| {
        let kernel = Kernel::MatMul { m: 24, k: 24, n: 24 };
        b.iter(|| {
            let mut cpu = CpuModel::new(CpuConfig::boom());
            let mut m = MemSystem::new(MemConfig::default());
            black_box(cpu.run_trace(&kernel.trace(), &mut m))
        })
    });
    // Closed-form Gemmini timing: the per-layer cost of a cached-miss
    // accelerator op (no instruction stream, pure arithmetic).
    group.bench_function("gemmini_closed_form", |b| {
        b.iter(|| {
            let mut g = GemminiModel::new(GemminiConfig::default());
            let mut m = MemSystem::new(MemConfig::default());
            black_box(g.matmul(192, 192, 192, &mut m))
        })
    });
    // Disk round trip: what a warm sweep pays once at startup to skip
    // every cold expansion above.
    group.bench_function("timing_cache_load", |b| {
        let path = std::env::temp_dir().join(format!(
            "rose-micro-timing-cache-{}.snap",
            std::process::id()
        ));
        let cache = SharedTimingCache::load(&path);
        let fp = 0xfeed_beef_u64;
        for m in 0..64usize {
            cache.insert_matmul(fp, m, 24, 24, rose_socsim::timing_cache::AccelEntry {
                run: Default::default(),
                bus_bytes: 4096,
                cycles_delta: 1000,
            });
        }
        cache.persist().expect("bench cache persists");
        b.iter(|| black_box(SharedTimingCache::load(&path).len()));
        let _ = std::fs::remove_file(&path);
    });
    group.finish();
}

fn bench_dnn(c: &mut Criterion) {
    let mut group = c.benchmark_group("dnn");
    group.bench_function("perception_classify", |b| {
        let mut head = PerceptionHead::new(DnnModel::ResNet14, &SimRng::new(1));
        b.iter(|| black_box(head.classify(0.2, -0.4, 1.6)))
    });
    group.bench_function("resnet6_forward_32px", |b| {
        let net = DnnModel::ResNet6.build(&SimRng::new(2), Some(32));
        let input = Tensor::from_fn(&[3, 32, 32], |i| (i % 13) as f32 / 13.0);
        b.iter(|| black_box(net.forward(&input)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemmini,
    bench_memory,
    bench_cpu_model,
    bench_packets,
    bench_physics,
    bench_cost_model,
    bench_dnn
);
criterion_main!(benches);
