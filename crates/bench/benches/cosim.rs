//! End-to-end co-simulation benchmarks: the cost of a synchronization
//! step across granularities (the simulator-performance side of Figure
//! 15) and of whole short missions.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rose::mission::{build_mission, MissionConfig};
use rose_bridge::sync::SyncMode;

fn bench_sync_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_step");
    group.sample_size(10);
    for frames_per_sync in [1u64, 10, 40] {
        group.bench_with_input(
            BenchmarkId::from_parameter(frames_per_sync),
            &frames_per_sync,
            |b, &fps| {
                let config = MissionConfig {
                    frame_hz: 100,
                    frames_per_sync: fps,
                    max_sim_seconds: 1e9,
                    ..MissionConfig::default()
                };
                let (mut sync, _metrics) = build_mission(&config);
                // Warm the kernel-cost caches out of the timing loop.
                sync.run_syncs(4);
                b.iter(|| {
                    sync.step_sync();
                    black_box(sync.time())
                });
            },
        );
    }
    group.finish();
}

fn bench_short_mission(c: &mut Criterion) {
    let mut group = c.benchmark_group("mission");
    group.sample_size(10);
    group.bench_function("two_sim_seconds", |b| {
        b.iter(|| {
            let config = MissionConfig {
                max_sim_seconds: 2.0,
                ..MissionConfig::default()
            };
            let (mut sync, _metrics) = build_mission(&config);
            sync.run_until(u64::MAX, |env, _| env.sim().time() >= 2.0);
            black_box(sync.stats().sim_cycles)
        })
    });
    group.finish();
}

/// The tentpole comparison: the same mission with the quantum run
/// sequentially vs with the RTL grant and environment frames overlapped.
/// Parallel should win by roughly the cheaper side's share of the quantum.
fn bench_sync_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_mode");
    group.sample_size(10);
    for (name, mode) in [
        ("sequential", SyncMode::Sequential),
        ("parallel", SyncMode::Parallel),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = MissionConfig {
                    max_sim_seconds: 1.0,
                    sync_mode: mode,
                    ..MissionConfig::default()
                };
                let (mut sync, _metrics) = build_mission(&config);
                sync.run_until(u64::MAX, |env, _| env.sim().time() >= 1.0);
                black_box(sync.stats().sim_cycles)
            })
        });
    }
    group.finish();
}

/// Overhead guard for the tracing layer: the same mission untraced vs
/// traced. Disabled tracing must cost only a branch per would-be event,
/// so "off" here should match the plain mission benchmarks.
fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    for (name, trace) in [("off", false), ("on", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = MissionConfig {
                    max_sim_seconds: 1.0,
                    trace,
                    ..MissionConfig::default()
                };
                let (mut sync, _metrics) = build_mission(&config);
                sync.run_until(u64::MAX, |env, _| env.sim().time() >= 1.0);
                black_box(sync.stats().sim_cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sync_step,
    bench_short_mission,
    bench_sync_modes,
    bench_trace_overhead
);
criterion_main!(benches);
