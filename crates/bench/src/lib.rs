//! Shared harness for the figure/table reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §3 for the index); this library holds
//! the shared experiment runners so binaries, integration tests, and
//! Criterion benches use identical configurations.
//!
//! Results print as aligned text tables and are also written as CSV into
//! `results/` (mirroring the artifact's CSV logs in
//! `deploy/hephaestus/logs/`).

pub mod experiments;
pub mod parallel;
pub mod report;
pub mod timing;

pub use experiments::*;
pub use parallel::{default_jobs, parallel_map};
pub use report::{write_csv, TextTable};
pub use timing::{persist_timing_cache, shared_timing_cache, with_timing_cache};
