//! Thread-pooled execution of independent sweep points.
//!
//! Every figure sweep is embarrassingly parallel — each point is a
//! self-contained [`rose::mission::MissionConfig`] with its own seed and
//! no shared state — so the runners fan the points out over a small
//! worker pool and collect results in input order. The worker count is
//! taken from the `--jobs N` / `-j N` command-line flag or the
//! `ROSE_BENCH_JOBS` environment variable, defaulting to the machine's
//! available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The configured sweep parallelism: `ROSE_BENCH_JOBS`, else `--jobs N`
/// (or `-j N` / `--jobs=N`) from the command line, else the machine's
/// available parallelism. Always at least 1.
pub fn default_jobs() -> usize {
    if let Some(n) = std::env::var("ROSE_BENCH_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    if let Some(n) = jobs_from_args(std::env::args().skip(1)) {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parses `--jobs N`, `--jobs=N`, or `-j N` out of an argument list.
fn jobs_from_args(args: impl Iterator<Item = String>) -> Option<usize> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let value = if arg == "--jobs" || arg == "-j" {
            args.next()
        } else {
            arg.strip_prefix("--jobs=").map(str::to_string)
        };
        if let Some(n) = value.and_then(|v| v.parse::<usize>().ok()) {
            if n > 0 {
                return Some(n);
            }
        }
    }
    None
}

/// Maps `f` over `items` on a pool of `jobs` worker threads, preserving
/// input order in the result. Workers pull items from a shared counter,
/// so uneven per-item cost balances automatically.
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have stopped.
pub fn parallel_map<T, U, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }

    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("sweep input lock")
                    .take()
                    .expect("sweep item taken twice");
                let result = f(item);
                *outputs[i].lock().expect("sweep output lock") = Some(result);
            });
        }
    });

    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep output lock")
                .expect("sweep item not computed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(items, 7, |x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_runs_inline() {
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_flag_parsing() {
        let parse = |args: &[&str]| jobs_from_args(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["--jobs", "4"]), Some(4));
        assert_eq!(parse(&["-j", "2"]), Some(2));
        assert_eq!(parse(&["--jobs=16"]), Some(16));
        assert_eq!(parse(&["--jobs", "0"]), None);
        assert_eq!(parse(&["fig10"]), None);
    }
}
