//! Process-wide timing-cache attachment for the bench binaries.
//!
//! Sweeps re-expand the same kernels and accelerator shapes thousands of
//! times; the persisted timing cache (DESIGN.md §4i) lets a machine pay
//! that cost once. The cache is selected by the `ROSE_TIMING_CACHE`
//! environment variable (unset → the default per-repo file, `0`/`off` →
//! disabled, anything else → that path) and shared by every mission the
//! process runs, including parallel sweep workers.

use rose::mission::MissionConfig;
use rose_socsim::SharedTimingCache;
use std::sync::OnceLock;

static CACHE: OnceLock<Option<SharedTimingCache>> = OnceLock::new();

/// The process-wide shared timing cache, or `None` when disabled via
/// `ROSE_TIMING_CACHE=0`. Loaded from disk once, on first use.
pub fn shared_timing_cache() -> Option<&'static SharedTimingCache> {
    CACHE.get_or_init(SharedTimingCache::from_env).as_ref()
}

/// Attaches the process-wide timing cache to a mission configuration.
/// Digest-invisible by contract: sweeps produce bit-identical results
/// with or without it.
pub fn with_timing_cache(mut config: MissionConfig) -> MissionConfig {
    config.timing_cache = shared_timing_cache().cloned();
    config
}

/// Writes the cache back to its file (atomically; no-op when disabled,
/// in-memory, or unchanged). Binaries call this once before exiting so
/// the next run starts warm. Persist failures only cost future warmth,
/// so they warn instead of aborting a finished experiment.
pub fn persist_timing_cache() {
    if let Some(cache) = shared_timing_cache() {
        if let Err(err) = cache.persist() {
            eprintln!("warning: failed to persist timing cache: {err}");
        } else if let Some(path) = cache.path() {
            let (hits, misses) = cache.counters();
            eprintln!(
                "timing cache: {} entries at {} ({hits} hits / {misses} misses this run)",
                cache.len(),
                path.display()
            );
        }
    }
}
