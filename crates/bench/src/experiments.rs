//! Experiment runners, one per table/figure of the paper's evaluation.
//!
//! Every runner uses [`rose::mission`]'s configurations so the binaries,
//! integration tests, and Criterion benches measure the same scenarios.
//! Mission sweeps are independent per point (each has its own seed and
//! state), so they fan out over [`crate::parallel::parallel_map`] with the
//! worker count from `--jobs` / `ROSE_BENCH_JOBS`.

use crate::parallel::{default_jobs, parallel_map};
use crate::report::TextTable;
use crate::timing::with_timing_cache;
use rose::app::ControllerChoice;
use rose::mission::{
    build_mission, finish_report, mission_parts, run_mission, MissionConfig, MissionReport,
};
use rose::snapshot::{Mission, MissionSnapshot};
use rose_bridge::sync::{serve_rtl, RemoteRtl, Synchronizer};
use rose_bridge::transport::TcpTransport;
use rose_dnn::lower::time_inference;
use rose_dnn::DnnModel;
use rose_envsim::WorldKind;
use rose_sim_core::csv::CsvLog;
use rose_sim_core::cycles::{FrameSpec, SyncRatio};
use rose_socsim::SocConfig;
use std::net::TcpListener;
use std::thread;

/// Table 2: the evaluated hardware configurations.
pub fn table2() -> TextTable {
    let mut t = TextTable::new(&["Configuration", "CPU", "Accelerator", "Clock"]);
    for config in [
        SocConfig::config_a(),
        SocConfig::config_b(),
        SocConfig::config_c(),
    ] {
        t.row(vec![
            config.name.clone(),
            match config.core {
                rose_socsim::CoreKind::Boom => "3-wide BOOM".to_string(),
                rose_socsim::CoreKind::Rocket => "Rocket".to_string(),
            },
            if config.has_accelerator() {
                "Gemmini (4x4 FP32, 256KiB spad)".to_string()
            } else {
                "None".to_string()
            },
            config.clock.to_string(),
        ]);
    }
    t
}

/// One Table 3 row: measured latencies and validation accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// The DNN variant.
    pub model: DnnModel,
    /// Latency on config A (BOOM+Gemmini), ms.
    pub boom_ms: f64,
    /// Latency on config B (Rocket+Gemmini), ms.
    pub rocket_ms: f64,
    /// Validation accuracy (calibration input).
    pub accuracy: f64,
}

/// Table 3: DNN controller latency and accuracy.
pub fn table3() -> Vec<Table3Row> {
    let a = SocConfig::config_a();
    let b = SocConfig::config_b();
    DnnModel::all()
        .iter()
        .map(|&model| Table3Row {
            model,
            boom_ms: time_inference(&a, model) as f64 / 1e6,
            rocket_ms: time_inference(&b, model) as f64 / 1e6,
            accuracy: model.validation_accuracy(),
        })
        .collect()
}

/// One closed-loop run labeled by its sweep coordinates.
#[derive(Debug, Clone)]
pub struct LabeledRun {
    /// Sweep label (config name, model, velocity, ...).
    pub label: String,
    /// The mission outcome.
    pub report: MissionReport,
}

/// Synchronization periods in the shared fig10 boot prefix: 0.25 s of
/// simulated time, before the first inference lands a command — the UAV
/// still flies straight, so an in-place yaw rotation at the checkpoint is
/// equivalent to having launched at that heading.
const FIG10_BOOT_SYNCS: u64 = 15;

/// Figure 10: UAV trajectories for hardware configs A/B/C with initial
/// angles −20°/0°/+20° in `tunnel`, ResNet14 at 3 m/s.
///
/// The boot prefix (simulator reset, first frames, SoC cache and
/// cost-model warm-up) is identical across the yaw sweep, so each SoC
/// configuration boots **once**: the three yaw branches fork from a
/// shared [`MissionSnapshot`] and diverge via
/// [`Mission::perturb_yaw`], instead of re-simulating the boot once per
/// sweep point.
pub fn fig10() -> Vec<LabeledRun> {
    let configs = vec![
        SocConfig::config_a(),
        SocConfig::config_b(),
        SocConfig::config_c(),
    ];
    let boots = parallel_map(configs, default_jobs(), |config| {
        let mission = with_timing_cache(MissionConfig {
            soc: config.clone(),
            max_sim_seconds: 45.0,
            ..MissionConfig::default()
        });
        let mut boot = Mission::start(&mission);
        boot.run_syncs(FIG10_BOOT_SYNCS);
        (config, boot.snapshot())
    });
    let scenarios: Vec<(String, MissionSnapshot, f64)> = boots
        .into_iter()
        .flat_map(|(config, snap)| {
            [-20.0, 0.0, 20.0].map(|yaw| {
                (
                    format!("{}/yaw{:+.0}", config.name, yaw),
                    snap.clone(),
                    yaw,
                )
            })
        })
        .collect();
    parallel_map(scenarios, default_jobs(), |(label, snap, yaw)| {
        let mut branch = snap
            .resume()
            .expect("fig10 boot checkpoint must resume (snapshot round-trip bug)");
        branch.perturb_yaw(f64::to_radians(yaw));
        LabeledRun {
            label,
            report: branch.run_to_completion(),
        }
    })
}

/// Runs labeled mission configs on the sweep worker pool, keeping order.
/// Every point runs against the process-wide timing cache: sweeps revisit
/// the same kernels and accelerator shapes constantly, which is exactly
/// the reuse the cache converts into replays.
fn run_labeled(scenarios: Vec<(String, MissionConfig)>) -> Vec<LabeledRun> {
    parallel_map(scenarios, default_jobs(), |(label, mission)| LabeledRun {
        label,
        report: run_mission(&with_timing_cache(mission)),
    })
}

/// Figure 11: DNN architecture sweep in `s-shape` at 9 m/s on config A.
pub fn fig11() -> Vec<(DnnModel, MissionReport)> {
    let scenarios: Vec<DnnModel> = DnnModel::all().to_vec();
    parallel_map(scenarios, default_jobs(), |model| {
        let mission = with_timing_cache(MissionConfig {
            world: WorldKind::SShape,
            velocity: 9.0,
            controller: ControllerChoice::Static(model),
            max_sim_seconds: 60.0,
            ..MissionConfig::default()
        });
        (model, run_mission(&mission))
    })
}

/// Figure 12: velocity-target sweep (6/9/12 m/s), ResNet14 on A, `s-shape`.
pub fn fig12() -> Vec<(f64, MissionReport)> {
    parallel_map(vec![6.0, 9.0, 12.0], default_jobs(), |velocity| {
        let mission = with_timing_cache(MissionConfig {
            world: WorldKind::SShape,
            velocity,
            max_sim_seconds: 60.0,
            ..MissionConfig::default()
        });
        (velocity, run_mission(&mission))
    })
}

/// Figure 13: static vs dynamic DNN selection — application runtime and
/// accelerator activity factor.
pub fn fig13() -> Vec<LabeledRun> {
    let scenarios = [
        ("static-ResNet14", ControllerChoice::Static(DnnModel::ResNet14)),
        ("static-ResNet6", ControllerChoice::Static(DnnModel::ResNet6)),
        ("dynamic", ControllerChoice::dynamic_default()),
    ]
    .into_iter()
    .map(|(label, controller)| {
        let mission = MissionConfig {
            world: WorldKind::SShape,
            velocity: 9.0,
            controller,
            max_sim_seconds: 60.0,
            ..MissionConfig::default()
        };
        (label.to_string(), mission)
    })
    .collect();
    run_labeled(scenarios)
}

/// Figure 14: hardware × algorithm co-design sweep (BOOM+Gemmini and
/// Rocket+Gemmini across the DNN variants) in `s-shape` at 9 m/s.
pub fn fig14() -> Vec<LabeledRun> {
    let mut scenarios = Vec::new();
    for config in [SocConfig::config_a(), SocConfig::config_b()] {
        for model in [
            DnnModel::ResNet6,
            DnnModel::ResNet11,
            DnnModel::ResNet14,
            DnnModel::ResNet18,
        ] {
            let mission = MissionConfig {
                soc: config.clone(),
                world: WorldKind::SShape,
                velocity: 9.0,
                controller: ControllerChoice::Static(model),
                max_sim_seconds: 60.0,
                ..MissionConfig::default()
            };
            scenarios.push((format!("{}/{}", config.name, model), mission));
        }
    }
    run_labeled(scenarios)
}

/// One Figure 15 measurement point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig15Point {
    /// Environment frames per synchronization.
    pub frames_per_sync: u64,
    /// SoC cycles per synchronization.
    pub cycles_per_sync: u64,
    /// Simulation throughput: simulated SoC MHz per wall second.
    pub sim_mhz: f64,
    /// Wall seconds the environment spent stepping frames.
    pub env_wall_s: f64,
    /// Wall seconds the RTL side spent consuming cycle grants (for the
    /// TCP deployment this includes the per-sync round trips).
    pub rtl_wall_s: f64,
    /// Fraction of the cheaper side hidden behind the more expensive one
    /// by the parallel quantum (`SyncStats::overlap_efficiency`).
    pub overlap: f64,
}

/// Figure 15: co-simulation throughput vs synchronization granularity.
///
/// Runs the co-simulation with the RTL side behind a localhost TCP
/// transport (the paper's deployment), sweeping the synchronization
/// granularity from 10M to 400M cycles (1–40 frames at 100 fps / 1 GHz)
/// and measuring simulated-cycles-per-wall-second. Fine granularity is
/// bottlenecked by the per-sync round trip; coarse granularity approaches
/// the RTL simulator's native speed.
pub fn fig15(sim_seconds_per_point: f64) -> Vec<Fig15Point> {
    [1u64, 2, 4, 10, 20, 40]
        .iter()
        .map(|&frames_per_sync| {
            let mission = with_timing_cache(MissionConfig {
                frame_hz: 100,
                frames_per_sync,
                max_sim_seconds: sim_seconds_per_point,
                ..MissionConfig::default()
            });
            let (env, mut rtl, sync_config, _metrics) = mission_parts(&mission);

            // Serve the SoC behind TCP, as FireSim is in the paper.
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind fig15 listener");
            let addr = listener.local_addr().expect("listener addr");
            let server = thread::spawn(move || {
                let mut transport = TcpTransport::accept(&listener).expect("accept");
                serve_rtl(&mut transport, &mut rtl).expect("serve_rtl");
            });

            let remote = RemoteRtl::new(TcpTransport::connect(addr).expect("connect"));
            let mut sync = Synchronizer::new(sync_config, env, remote);
            let syncs =
                (sim_seconds_per_point * 100.0 / frames_per_sync as f64).ceil() as u64;
            sync.run_syncs(syncs.max(1));
            let stats = *sync.stats();
            let (_, remote) = sync.into_parts();
            remote.shutdown().expect("shutdown");
            server.join().expect("server thread");

            Fig15Point {
                frames_per_sync,
                cycles_per_sync: sync_config.cycles_per_sync(),
                sim_mhz: stats.throughput_hz() / 1e6,
                env_wall_s: stats.env_wall.as_secs_f64(),
                rtl_wall_s: stats.rtl_wall.as_secs_f64(),
                overlap: stats.overlap_efficiency(),
            }
        })
        .collect()
}

/// One Figure 16 measurement point.
#[derive(Debug, Clone)]
pub struct Fig16Run {
    /// Frames per synchronization.
    pub frames_per_sync: u64,
    /// Cycles per synchronization.
    pub cycles_per_sync: u64,
    /// The mission outcome (trajectory + latencies).
    pub report: MissionReport,
}

/// Figure 16: effect of synchronization granularity on trajectories and
/// on image-request → DNN-response latency. Same initial conditions
/// (tunnel, +20°, ResNet14 at 3 m/s); granularity swept 10M–400M cycles.
pub fn fig16() -> Vec<Fig16Run> {
    let granularities = vec![1u64, 2, 4, 10, 20, 40];
    parallel_map(granularities, default_jobs(), |frames_per_sync| {
        let mission = MissionConfig {
            frame_hz: 100,
            frames_per_sync,
            initial_yaw_deg: 20.0,
            max_sim_seconds: 45.0,
            ..MissionConfig::default()
        };
        let ratio = SyncRatio::new(mission.soc.clock, FrameSpec::from_hz(mission.frame_hz));
        let report = run_mission(&with_timing_cache(mission));
        Fig16Run {
            frames_per_sync,
            cycles_per_sync: ratio.cycles_for_frames(frames_per_sync),
            report,
        }
    })
}

/// Renders a set of labeled runs as the standard mission-metrics table.
pub fn mission_table(runs: &[LabeledRun]) -> TextTable {
    let mut t = TextTable::new(&[
        "run",
        "complete",
        "time_s",
        "collisions",
        "avg_v",
        "latency_ms",
        "activity",
        "inferences",
    ]);
    for run in runs {
        let r = &run.report;
        t.row(vec![
            run.label.clone(),
            r.completed.to_string(),
            r.mission_time_s.map_or("-".into(), |t| format!("{t:.2}")),
            r.collisions.to_string(),
            format!("{:.2}", r.avg_velocity),
            format!("{:.0}", r.mean_latency_ms),
            format!("{:.3}", r.activity_factor),
            r.inference_count.to_string(),
        ]);
    }
    t
}

/// Serializes trajectories of labeled runs into one long-format CSV
/// (`run_index,t,x,y`).
pub fn trajectories_csv(runs: &[LabeledRun]) -> CsvLog {
    let mut log = CsvLog::new(&["run", "t", "x", "y"]);
    for (i, run) in runs.iter().enumerate() {
        for p in &run.report.trajectory {
            log.row(&[i as f64, p.t, p.position.x, p.position.y]);
        }
    }
    log
}

/// Smoke configuration used by integration tests: a short mission that
/// exercises the full stack in under a second.
pub fn smoke_mission() -> MissionReport {
    let mission = MissionConfig {
        max_sim_seconds: 2.0,
        ..MissionConfig::default()
    };
    let (mut sync, metrics) = build_mission(&mission);
    sync.run_until(u64::MAX, |env, _| env.sim().time() >= 2.0);
    finish_report(&mission, sync, &metrics)
}
