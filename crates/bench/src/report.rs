//! Text-table printing and CSV output for the experiment binaries.

use rose_sim_core::csv::CsvLog;
use std::path::{Path, PathBuf};

/// A simple aligned text table for terminal output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Writes a CSV log under `results/`, creating the directory; returns the
/// path (or `None` if the filesystem refused, e.g. a read-only checkout —
/// the experiments still print their tables).
pub fn write_csv(name: &str, log: &CsvLog) -> Option<PathBuf> {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let path = dir.join(name);
    match log.write_to(&path) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["model", "ms"]);
        t.row(vec!["ResNet6".into(), "77".into()]);
        t.row(vec!["R34".into(), "225".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("model"));
        assert!(lines[2].ends_with("77"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        TextTable::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }
}
