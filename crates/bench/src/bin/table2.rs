//! Regenerates Table 2: the evaluated hardware configurations.
fn main() {
    rose_bench::table2().print("Table 2: hardware configurations");
}
