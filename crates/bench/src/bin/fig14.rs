//! Regenerates Figure 14: hardware x software co-design sweep.
use rose_bench::{mission_table, write_csv};
use rose_sim_core::csv::CsvLog;

fn main() {
    let runs = rose_bench::fig14();
    mission_table(&runs)
        .print("Figure 14: mission time / velocity / DNN activity, BOOM+Gemmini vs Rocket+Gemmini");
    let mut csv = CsvLog::new(&["run", "time_s", "avg_v", "activity", "collisions"]);
    for (i, run) in runs.iter().enumerate() {
        csv.row(&[
            i as f64,
            run.report.mission_time_s.unwrap_or(f64::NAN),
            run.report.avg_velocity,
            run.report.activity_factor,
            run.report.collisions as f64,
        ]);
    }
    println!("paper: with BOOM, ResNet14 is the optimal design point; with Rocket the SoC struggles (recovers from collisions), and low-latency DNNs gain value");
    if let Some(p) = write_csv("fig14.csv", &csv) {
        println!("wrote {}", p.display());
    }
    rose_bench::persist_timing_cache();
}
