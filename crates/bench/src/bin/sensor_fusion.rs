//! Extension experiment (paper §6): sensor-fusion controller with
//! separate per-sensor backbones executed at data-dependent rates. The
//! image branch only fires on aggressive maneuvers or stale features, so
//! the SoC sees an irregular, bimodal load.

use rose::fusion::{run_fusion_mission, FusionConfig};
use rose::mission::MissionConfig;
use rose_bench::{write_csv, TextTable};
use rose_envsim::WorldKind;
use rose_sim_core::csv::CsvLog;

fn main() {
    let mut t = TextTable::new(&[
        "world",
        "velocity",
        "complete",
        "time (s)",
        "collisions",
        "image-branch rate",
        "steps",
    ]);
    let mut csv = CsvLog::new(&["world", "velocity", "image_rate", "steps"]);
    for (wi, (world, velocity)) in [
        (WorldKind::Tunnel, 3.0),
        (WorldKind::SShape, 6.0),
        (WorldKind::Slalom, 4.0),
    ]
    .into_iter()
    .enumerate()
    {
        let mission = MissionConfig {
            world,
            velocity,
            max_sim_seconds: 60.0,
            ..MissionConfig::default()
        };
        let r = run_fusion_mission(&mission, FusionConfig::default());
        t.row(vec![
            world.to_string(),
            format!("{velocity}"),
            r.completed.to_string(),
            r.mission_time_s.map_or("-".into(), |x| format!("{x:.2}")),
            r.collisions.to_string(),
            format!("{:.2}", r.metrics.image_branch_rate()),
            r.metrics.steps.to_string(),
        ]);
        csv.row(&[
            wi as f64,
            velocity,
            r.metrics.image_branch_rate(),
            r.metrics.steps as f64,
        ]);
    }
    t.print("Extension: sensor fusion with data-dependent branch execution");
    println!("straight corridors mostly run the cheap IMU branch; curvy/obstacle worlds");
    println!("demand fresh vision more often — the irregular execution pattern of paper §6.");
    if let Some(p) = write_csv("sensor_fusion.csv", &csv) {
        println!("wrote {}", p.display());
    }
}
