//! Extension experiment: the `slalom` obstacle environment, stressing the
//! depth sensor and the dynamic runtime's deadline switching.

use rose::app::ControllerChoice;
use rose::mission::{run_mission, MissionConfig};
use rose_bench::{mission_table, write_csv, trajectories_csv, LabeledRun};
use rose_dnn::DnnModel;
use rose_envsim::WorldKind;

fn main() {
    let mut runs = Vec::new();
    for (label, controller) in [
        ("static-ResNet14", ControllerChoice::Static(DnnModel::ResNet14)),
        ("static-ResNet6", ControllerChoice::Static(DnnModel::ResNet6)),
        ("dynamic", ControllerChoice::dynamic_default()),
    ] {
        for velocity in [3.0, 5.0] {
            let mission = MissionConfig {
                world: WorldKind::Slalom,
                velocity,
                controller,
                max_sim_seconds: 60.0,
                ..MissionConfig::default()
            };
            runs.push(LabeledRun {
                label: format!("{label}/v{velocity}"),
                report: run_mission(&mission),
            });
        }
    }
    mission_table(&runs).print("Extension: slalom environment (pillar obstacles)");
    if let Some(p) = write_csv("slalom_trajectories.csv", &trajectories_csv(&runs)) {
        println!("wrote {}", p.display());
    }
}
