//! Chaos sweep: fly many missions over randomly fault-injected
//! transports and check the robustness invariants hold for every one.
//!
//! ```text
//! chaos_mission [--trials N] [--events N] [--seconds F] [--seed-base S]
//!               [--reproducer-out PATH] [--self-test]
//! ```
//!
//! Per trial `i`, a [`FaultPlan::random`] schedule is generated from
//! `seed_base + i` and the same mission is flown under both sync modes.
//! The invariants (DESIGN.md §4h):
//!
//! 1. **No panic.** Whatever the transport does, the stack latches faults
//!    and winds down; it never tears down the process.
//! 2. **Determinism.** Same seed ⇒ bit-identical [`MissionDigest`] under
//!    `Sequential` and `Parallel` — injected faults, retries, and
//!    watchdog-degraded iterations are all scheduled in sim time, so the
//!    host's thread interleaving must stay unobservable.
//! 3. **Orderly termination.** Every flight ends in one of: goal reached,
//!    sim-time budget expired, a deliberate mission abort, or a latched
//!    transport fault documented by a `transport-fault` postmortem. A
//!    latched flight never claims completion.
//!
//! On a violation the harness greedily **shrinks** the schedule — events
//! are removed one at a time while the violation persists — then prints
//! the minimal reproducer and writes its serialized form (loadable via
//! `FaultPlan::restore_state`) to `--reproducer-out`, exiting 1.
//!
//! `--self-test` exercises the shrinker against a synthetic oracle (no
//! missions flown) and proves a seeded multi-event violating schedule
//! reduces to its minimal core; CI runs this plus a small `--trials`
//! sweep.
//!
//! Exit codes: 0 = all trials clean (or self-test passed), 1 = a
//! violation survived shrinking, 2 = bad usage or a broken self-test.

use rose::audit::MissionDigest;
use rose::mission::{run_mission_with_faults, FaultedMissionReport, MissionConfig};
use rose_bridge::faults::{FaultKind, FaultPlan};
use rose_bridge::sync::SyncMode;
use rose_sim_core::snap::SnapWriter;
use rose_trace::json;
use std::path::PathBuf;
use std::process::ExitCode;

/// Sync quanta per simulated second (quantum = 2000 cycles at 75 kHz
/// control ticks — see `MissionConfig`); used to keep random fault
/// schedules inside the flown window.
const QUANTA_PER_SIM_SECOND: f64 = 30.0;

struct Args {
    trials: u64,
    events: usize,
    seconds: f64,
    seed_base: u64,
    reproducer_out: PathBuf,
    self_test: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos_mission [--trials N] [--events N] [--seconds F] \
         [--seed-base S] [--reproducer-out PATH] [--self-test]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        trials: 200,
        events: 6,
        seconds: 6.0,
        seed_base: 0xC4A0_5000,
        reproducer_out: PathBuf::from("chaos_reproducer.roseplan"),
        self_test: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--trials" => args.trials = value().parse().unwrap_or_else(|_| usage()),
            "--events" => args.events = value().parse().unwrap_or_else(|_| usage()),
            "--seconds" => args.seconds = value().parse().unwrap_or_else(|_| usage()),
            "--seed-base" => args.seed_base = value().parse().unwrap_or_else(|_| usage()),
            "--reproducer-out" => args.reproducer_out = value().into(),
            "--self-test" => args.self_test = true,
            _ => usage(),
        }
    }
    args
}

fn config(seconds: f64, sync_mode: SyncMode) -> MissionConfig {
    MissionConfig {
        max_sim_seconds: seconds,
        sync_mode,
        ..MissionConfig::default()
    }
}

/// Runs one mission under a fault plan, catching panics (invariant 1).
fn fly(seconds: f64, sync_mode: SyncMode, plan: &FaultPlan) -> Result<FaultedMissionReport, String> {
    let plan = plan.clone();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        run_mission_with_faults(&config(seconds, sync_mode), plan)
    }))
    .map_err(|cause| {
        let msg = cause
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| cause.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        format!("{sync_mode:?}: panicked: {msg}")
    })
}

/// Checks one flight's termination taxonomy (invariant 3).
fn check_termination(sync_mode: SyncMode, outcome: &FaultedMissionReport) -> Result<(), String> {
    if outcome.latched.is_some() {
        if outcome.report.completed {
            return Err(format!(
                "{sync_mode:?}: latched a transport fault yet claims completion"
            ));
        }
        let named = outcome.report.postmortems.iter().any(|pm| {
            json::parse(pm)
                .ok()
                .and_then(|doc| doc.get("reason").and_then(|v| v.as_str()).map(str::to_owned))
                .as_deref()
                == Some("transport-fault")
        });
        if !named {
            return Err(format!(
                "{sync_mode:?}: latched fault has no transport-fault postmortem"
            ));
        }
    }
    if outcome.aborted && outcome.report.completed {
        return Err(format!("{sync_mode:?}: aborted yet claims completion"));
    }
    Ok(())
}

/// The sweep's violation oracle: flies `plan` under both sync modes and
/// returns a description of the first broken invariant, if any.
fn violation(seconds: f64, plan: &FaultPlan) -> Option<String> {
    let mut digests = Vec::new();
    for sync_mode in [SyncMode::Sequential, SyncMode::Parallel] {
        let outcome = match fly(seconds, sync_mode, plan) {
            Ok(outcome) => outcome,
            Err(panic) => return Some(panic),
        };
        if let Err(broken) = check_termination(sync_mode, &outcome) {
            return Some(broken);
        }
        digests.push(MissionDigest::of(&outcome.report));
    }
    if digests[0] != digests[1] {
        return Some(format!(
            "sync modes diverged: sequential {:?} vs parallel {:?}",
            digests[0], digests[1]
        ));
    }
    None
}

/// Rebuilds `plan` without the event at `skip` (the shrink step).
fn without_event(plan: &FaultPlan, skip: usize) -> FaultPlan {
    let mut reduced = FaultPlan::new(plan.seed());
    for (i, e) in plan.events().iter().enumerate() {
        if i != skip {
            reduced.push(e.at_quantum, e.kind);
        }
    }
    reduced
}

/// Greedy shrink: repeatedly drops any single event whose removal keeps
/// the schedule violating, until the plan is 1-minimal (removing any one
/// remaining event makes the violation disappear).
fn shrink(plan: &FaultPlan, violates: &mut dyn FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut current = plan.clone();
    'progress: loop {
        for skip in 0..current.events().len() {
            let candidate = without_event(&current, skip);
            if violates(&candidate) {
                current = candidate;
                continue 'progress;
            }
        }
        return current;
    }
}

/// Renders a plan as the builder expression that reconstructs it, so a
/// reproducer pastes straight into a test.
fn render(plan: &FaultPlan) -> String {
    let mut out = format!("FaultPlan::new({:#x})", plan.seed());
    for e in plan.events() {
        out.push_str(&format!(
            "\n    .with_event({}, FaultKind::{:?})",
            e.at_quantum, e.kind
        ));
    }
    out
}

fn dump_reproducer(plan: &FaultPlan, path: &PathBuf) {
    let mut w = SnapWriter::new();
    plan.save_state(&mut w);
    if let Err(e) = std::fs::write(path, w.into_bytes()) {
        eprintln!("chaos_mission: could not write reproducer {}: {e}", path.display());
    } else {
        eprintln!("chaos_mission: reproducer written to {}", path.display());
    }
}

/// Proves the shrinker on a synthetic oracle: "violating" means the plan
/// still schedules both a `Drop` and a `Corrupt`. A seeded multi-event
/// schedule must reduce to exactly that two-event core.
fn self_test() -> ExitCode {
    let noisy = FaultPlan::random(0x5E1F, 400, 12)
        .with_event(50, FaultKind::Drop)
        .with_event(250, FaultKind::Corrupt);
    let mut oracle = |plan: &FaultPlan| {
        plan.events().iter().any(|e| e.kind == FaultKind::Drop)
            && plan.events().iter().any(|e| e.kind == FaultKind::Corrupt)
    };
    assert!(oracle(&noisy), "the seeded schedule must start out violating");
    let minimal = shrink(&noisy, &mut oracle);

    let mut broken = false;
    if !oracle(&minimal) {
        eprintln!("self-test BROKEN: shrinking lost the violation");
        broken = true;
    }
    if minimal.events().len() != 2 {
        eprintln!(
            "self-test BROKEN: expected a 2-event core, got {} events:\n{}",
            minimal.events().len(),
            render(&minimal)
        );
        broken = true;
    }
    for skip in 0..minimal.events().len() {
        if oracle(&without_event(&minimal, skip)) {
            eprintln!("self-test BROKEN: the shrunk plan is not 1-minimal");
            broken = true;
        }
    }
    if broken {
        return ExitCode::from(2);
    }
    eprintln!(
        "self-test: {}-event schedule shrank to its minimal core:\n{}",
        noisy.events().len(),
        render(&minimal)
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.self_test {
        return self_test();
    }

    // Keep every random fault inside the portion of the mission actually
    // flown, so no trial degenerates to a fault-free flight.
    let max_quantum = (args.seconds * QUANTA_PER_SIM_SECOND) as u64;
    for trial in 0..args.trials {
        let seed = args.seed_base.wrapping_add(trial);
        let plan = FaultPlan::random(seed, max_quantum, args.events);
        if let Some(broken) = violation(args.seconds, &plan) {
            eprintln!("chaos_mission: trial {trial} (seed {seed:#x}) VIOLATION: {broken}");
            eprintln!("chaos_mission: shrinking {} events...", plan.events().len());
            let minimal = shrink(&plan, &mut |candidate| {
                violation(args.seconds, candidate).is_some()
            });
            let last = violation(args.seconds, &minimal).unwrap_or_default();
            eprintln!(
                "chaos_mission: minimal reproducer ({} events, still: {last}):\n{}",
                minimal.events().len(),
                render(&minimal)
            );
            dump_reproducer(&minimal, &args.reproducer_out);
            return ExitCode::FAILURE;
        }
        if (trial + 1) % 25 == 0 || trial + 1 == args.trials {
            eprintln!("chaos_mission: {}/{} trials clean", trial + 1, args.trials);
        }
    }
    eprintln!(
        "chaos_mission: all {} trials held the invariants ({} faults each, {:.1} s sim)",
        args.trials, args.events, args.seconds
    );
    ExitCode::SUCCESS
}
