//! Regenerates Figure 10: trajectories per hardware config and initial angle.
use rose_bench::{mission_table, trajectories_csv, write_csv};

fn main() {
    let runs = rose_bench::fig10();
    mission_table(&runs).print(
        "Figure 10: tunnel, ResNet14 @ 3 m/s, configs A/B/C x initial angles -20/0/+20",
    );
    if let Some(p) = write_csv("fig10_trajectories.csv", &trajectories_csv(&runs)) {
        println!("wrote {}", p.display());
    }
    // Paper: A and B complete for all angles; C (no accelerator) collides
    // before corrections arrive at angled starts.
    for run in &runs {
        if run.label.starts_with("C/") && !run.label.ends_with("+0") {
            println!(
                "  C angled start: collisions = {} (paper: crashes before first inference)",
                run.report.collisions
            );
        }
    }
    rose_bench::persist_timing_cache();
}
