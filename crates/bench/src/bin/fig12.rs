//! Regenerates Figure 12: velocity-target sweep, ResNet14 on BOOM+Gemmini.
use rose_bench::{mission_table, trajectories_csv, write_csv, LabeledRun};

fn main() {
    let runs: Vec<LabeledRun> = rose_bench::fig12()
        .into_iter()
        .map(|(v, report)| LabeledRun {
            label: format!("v={v}"),
            report,
        })
        .collect();
    mission_table(&runs).print("Figure 12: s-shape, ResNet14 on A, velocity sweep 6/9/12 m/s");
    println!("paper: 6 m/s safest trajectory; 9 m/s shortest mission (12.14 s); 12 m/s collides after deadline violations");
    if let Some(p) = write_csv("fig12_trajectories.csv", &trajectories_csv(&runs)) {
        println!("wrote {}", p.display());
    }
    rose_bench::persist_timing_cache();
}
