//! Profile one mission: run it with tracing enabled, write a Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`) and a
//! metrics CSV snapshot of every counter in the stack.
//!
//! ```text
//! profile_mission [--trace out.json] [--metrics out.csv] [--seconds F]
//!                 [--check] [--determinism] [--profile]
//!                 [--snapshot-at F] [--snapshot-out PATH]
//!                 [--resume-from PATH]
//!                 [--deadline-budget F] [--postmortem-out PATH]
//!                 [--bench-json PATH] [--bench-gate BASELINE]
//! ```
//!
//! `ROSE_TRACE` / `ROSE_METRICS` environment variables are fallbacks for
//! the two output paths. `--check` re-parses the emitted JSON and
//! cross-checks the trace and registry against the mission's raw stats —
//! the CI smoke test — exiting nonzero on any inconsistency.
//! `--determinism` additionally runs the same config a second time and
//! compares FNV digests of the trajectory, SoC counters, and trace
//! ordering (see `rose::audit`), exiting nonzero on any divergence.
//!
//! `--snapshot-at F` pauses the mission at the first quantum boundary at
//! or after `F` simulated seconds, writes a [`rose::MissionSnapshot`]
//! checkpoint to `--snapshot-out` (default `mission.rosesnap`), verifies
//! in-process that resuming the checkpoint reproduces the straight run's
//! digest bit-exactly, and then continues to completion.
//! `--resume-from PATH` warm-starts from such a checkpoint instead of
//! booting a fresh mission; the checkpoint's embedded config (including
//! its simulated-time wall) replaces the defaults, so `--seconds` is
//! ignored on this path.
//!
//! Observability (DESIGN.md §4f):
//!
//! * `--profile` prints the host wall-clock self-attribution table
//!   (env step / RTL grant / transport / snapshot codec / trace overhead).
//! * `--deadline-budget F` arms the per-frame control deadline at `F`
//!   simulated seconds; misses trigger flight-recorder postmortems.
//! * `--postmortem-out PATH` writes any postmortems the flight recorder
//!   dumped (a JSON array) — CI uploads this as a failure artifact.
//! * `--bench-json PATH` writes the schema-versioned perf-trajectory
//!   record (simulated-µs per wall-second, per-phase wall breakdown,
//!   determinism digest).
//! * `--bench-gate BASELINE` compares this run's throughput against a
//!   committed bench JSON and exits nonzero on a >15% degradation. When
//!   BASELINE is a directory it is scanned for `BENCH_*.json` records and
//!   the gate runs against the best (highest-throughput) point of the
//!   trajectory, so past perf wins ratchet the floor.
//!
//! The mission runs against the persisted timing cache selected by
//! `ROSE_TIMING_CACHE` (set it to `0` to force a cold run) and persists
//! the cache on exit; digests are cache-invisible by contract.

use rose::audit::{audit_determinism, MissionDigest};
use rose::mission::{run_mission, MissionConfig, MissionReport};
use rose::snapshot::{Mission, MissionSnapshot};
use rose_trace::{json, Phase, Stopwatch, Track};
use std::path::PathBuf;
use std::process::ExitCode;

/// Schema tag stamped into every `--bench-json` record.
const BENCH_SCHEMA: &str = "rose-bench-v1";

/// `--bench-gate` fails when throughput drops below this fraction of the
/// baseline (a >15% degradation).
const BENCH_GATE_RATIO: f64 = 0.85;

struct Args {
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    seconds: f64,
    check: bool,
    determinism: bool,
    profile: bool,
    snapshot_at: Option<f64>,
    snapshot_out: PathBuf,
    resume_from: Option<PathBuf>,
    deadline_budget: Option<f64>,
    postmortem_out: Option<PathBuf>,
    bench_json: Option<PathBuf>,
    bench_gate: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: profile_mission [--trace out.json] [--metrics out.csv] \
         [--seconds F] [--check] [--determinism] [--profile] \
         [--snapshot-at F] [--snapshot-out PATH] [--resume-from PATH] \
         [--deadline-budget F] [--postmortem-out PATH] \
         [--bench-json PATH] [--bench-gate BASELINE]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        trace: std::env::var_os("ROSE_TRACE").map(PathBuf::from),
        metrics: std::env::var_os("ROSE_METRICS").map(PathBuf::from),
        seconds: 2.0,
        check: false,
        determinism: false,
        profile: false,
        snapshot_at: None,
        snapshot_out: PathBuf::from("mission.rosesnap"),
        resume_from: None,
        deadline_budget: None,
        postmortem_out: None,
        bench_json: None,
        bench_gate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => args.trace = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--metrics" => args.metrics = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--seconds" => {
                args.seconds = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--check" => args.check = true,
            "--determinism" => args.determinism = true,
            "--profile" => args.profile = true,
            "--deadline-budget" => {
                args.deadline_budget = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--postmortem-out" => {
                args.postmortem_out = Some(it.next().unwrap_or_else(|| usage()).into())
            }
            "--bench-json" => {
                args.bench_json = Some(it.next().unwrap_or_else(|| usage()).into())
            }
            "--bench-gate" => {
                args.bench_gate = Some(it.next().unwrap_or_else(|| usage()).into())
            }
            "--snapshot-at" => {
                args.snapshot_at = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--snapshot-out" => {
                args.snapshot_out = it.next().unwrap_or_else(|| usage()).into()
            }
            "--resume-from" => {
                args.resume_from = Some(it.next().unwrap_or_else(|| usage()).into())
            }
            _ => usage(),
        }
    }
    if args.snapshot_at.is_some() && args.resume_from.is_some() {
        eprintln!("error: --snapshot-at and --resume-from are mutually exclusive");
        usage()
    }
    args
}

/// The `--check` validation: the emitted JSON must parse, name every
/// track, contain the stack's event types, and agree with the raw stats.
fn check(report: &MissionReport) -> Result<(), String> {
    let log = report.trace.as_ref().expect("mission ran traced");
    let doc = json::parse(&log.to_chrome_json()).map_err(|e| format!("bad JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("traceEvents missing")?;

    let mut tracks = Vec::new();
    let mut names = Vec::new();
    for event in events {
        match event.get("name").and_then(|n| n.as_str()) {
            Some("thread_name") => {
                if let Some(t) = event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                {
                    tracks.push(t.to_string());
                }
            }
            Some(n) => names.push(n.to_string()),
            None => return Err("event without a name".into()),
        }
    }
    for track in Track::ALL {
        if !tracks.iter().any(|t| t == track.name()) {
            return Err(format!("track {:?} missing from metadata", track.name()));
        }
    }
    for required in ["env-frame", "sync-quantum", "bridge-packet", "gemmini-tile"] {
        if !names.iter().any(|n| n == required) {
            return Err(format!("no {required:?} events in trace"));
        }
    }

    // Event counts against the mission's own counters.
    let count = |name: &str| names.iter().filter(|n| *n == name).count() as u64;
    if count("env-frame") != report.trajectory.len() as u64 {
        return Err("env-frame count != trajectory length".into());
    }
    if count("sync-quantum") != report.sync_stats.syncs {
        return Err("sync-quantum count != sync_stats.syncs".into());
    }
    if count("bridge-packet") != report.sync_stats.data_to_env + report.sync_stats.data_to_rtl {
        return Err("bridge-packet count != data crossings".into());
    }

    // Registry totals must reproduce the pre-existing stats structs.
    let reg = report.metric_registry();
    let pairs = [
        ("soc.l1.misses", report.soc_stats.l1.misses),
        ("soc.l2.misses", report.soc_stats.l2.misses),
        ("soc.cycles", report.soc_stats.cycles),
        ("sync.syncs", report.sync_stats.syncs),
        ("sync.sim_cycles", report.sync_stats.sim_cycles),
        ("app.inferences", report.inference_count),
    ];
    for (name, expected) in pairs {
        if reg.counter_value(name) != Some(expected) {
            return Err(format!("registry {name} != stats value {expected}"));
        }
    }
    if reg.gauge_value("energy.total_mj") != Some(report.energy.total_mj()) {
        return Err("registry energy.total_mj != energy report".into());
    }
    Ok(())
}

/// The `--snapshot-at` path: run to the boundary, checkpoint, verify the
/// checkpoint resumes bit-identically, continue to completion. Snapshot
/// serialization and resume deserialization wall time is attributed to
/// [`Phase::SnapshotCodec`] in the returned report's profile.
fn run_with_snapshot(config: &MissionConfig, at: f64, out: &PathBuf) -> Result<MissionReport, String> {
    let boundary =
        ((at * config.frame_hz as f64 / config.frames_per_sync as f64).ceil() as u64)
            .min(config.max_syncs());
    let mut mission = Mission::start(config);
    mission.run_syncs(boundary);
    let sw = Stopwatch::start();
    let snap = mission.snapshot();
    let save_wall = sw.elapsed();
    std::fs::write(out, snap.bytes())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote snapshot {} ({} bytes at sync {}, encoded in {:.1} us)",
        out.display(),
        snap.bytes().len(),
        mission.syncs_executed(),
        save_wall.as_secs_f64() * 1e6,
    );
    let mut report = mission.run_to_completion();
    report.profile.add(Phase::SnapshotCodec, save_wall);

    // The checkpoint is only useful if it continues bit-identically.
    let sw = Stopwatch::start();
    let resumed_mission = snap
        .resume()
        .map_err(|e| format!("snapshot failed to resume: {e}"))?;
    report.profile.add(Phase::SnapshotCodec, sw.elapsed());
    let resumed = resumed_mission.run_to_completion();
    if MissionDigest::of(&resumed) != MissionDigest::of(&report) {
        return Err("resumed run diverged from the straight run".into());
    }
    println!("snapshot verified: resume is bit-identical to the straight run");
    Ok(report)
}

/// Renders the `--bench-json` perf-trajectory record: throughput, the
/// per-phase wall breakdown, and the run's determinism digest.
fn bench_record(report: &MissionReport) -> String {
    let wall_s = report.sync_stats.wall.as_secs_f64();
    let sim_us_per_wall_s = if wall_s > 0.0 {
        report.sim_time_s * 1e6 / wall_s
    } else {
        0.0
    };
    let mut phases = String::new();
    for (i, phase) in Phase::ALL.iter().enumerate() {
        if i > 0 {
            phases.push(',');
        }
        phases.push_str(&format!(
            "\"{}\":{{\"total_us\":{:.1},\"calls\":{}}}",
            phase.name(),
            report.profile.total(*phase).as_secs_f64() * 1e6,
            report.profile.count(*phase),
        ));
    }
    format!(
        "{{\"schema\":\"{BENCH_SCHEMA}\",\"sim_s\":{:.6},\"wall_s\":{:.6},\
         \"sim_us_per_wall_s\":{:.1},\"syncs\":{},\"digest\":\"{:#018x}\",\
         \"phases\":{{{phases}}}}}\n",
        report.sim_time_s,
        wall_s,
        sim_us_per_wall_s,
        report.sync_stats.syncs,
        MissionDigest::of(report).combined(),
    )
}

/// Extracts the schema-checked throughput from one bench JSON document.
fn bench_throughput(doc: &str, what: &str) -> Result<f64, String> {
    let parsed = json::parse(doc).map_err(|e| format!("{what}: bad JSON: {e}"))?;
    match parsed.get("schema").and_then(|s| s.as_str()) {
        Some(BENCH_SCHEMA) => {}
        other => return Err(format!("{what}: schema {other:?}, want {BENCH_SCHEMA:?}")),
    }
    parsed
        .get("sim_us_per_wall_s")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("{what}: sim_us_per_wall_s missing"))
}

/// Resolves the gate baseline: a single bench JSON, or a directory scanned
/// for `BENCH_*.json` records, in which case the best (highest-throughput)
/// point of the whole trajectory is the baseline — past perf wins ratchet
/// the floor instead of resetting it at every record.
fn bench_baseline(path: &PathBuf) -> Result<(f64, String), String> {
    if !path.is_dir() {
        let doc = std::fs::read_to_string(path)
            .map_err(|e| format!("reading baseline {}: {e}", path.display()))?;
        let label = path.display().to_string();
        return Ok((bench_throughput(&doc, &label)?, label));
    }
    let mut best: Option<(f64, String)> = None;
    let entries = std::fs::read_dir(path)
        .map_err(|e| format!("scanning baseline dir {}: {e}", path.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("scanning {}: {e}", path.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let doc = std::fs::read_to_string(entry.path())
            .map_err(|e| format!("reading {name}: {e}"))?;
        let throughput = bench_throughput(&doc, &name)?;
        if best.as_ref().is_none_or(|(b, _)| throughput > *b) {
            best = Some((throughput, name));
        }
    }
    best.ok_or_else(|| format!("no BENCH_*.json records in {}", path.display()))
}

/// The `--bench-gate` regression check: the current run's throughput must
/// stay within [`BENCH_GATE_RATIO`] of the baseline's (see
/// [`bench_baseline`] for how a directory baseline resolves).
fn bench_gate(current: &str, baseline_path: &PathBuf) -> Result<(), String> {
    let (base, label) = bench_baseline(baseline_path)?;
    let cur = bench_throughput(current, "current run")?;
    if cur < base * BENCH_GATE_RATIO {
        return Err(format!(
            "throughput regression: {cur:.1} sim-us/wall-s vs baseline {base:.1} \
             from {label} (floor {:.1}, -{:.1}%)",
            base * BENCH_GATE_RATIO,
            (1.0 - cur / base) * 100.0,
        ));
    }
    println!(
        "bench gate: {cur:.1} sim-us/wall-s vs baseline {base:.1} from {label} ({:+.1}%) — ok",
        (cur / base - 1.0) * 100.0,
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut config = MissionConfig {
        max_sim_seconds: args.seconds,
        trace: true,
        deadline_budget_s: args.deadline_budget.unwrap_or(0.0),
        // Digest-invisible by contract; `ROSE_TIMING_CACHE=0` forces a
        // cold run. Resumed missions rebuild their config from the
        // snapshot and therefore always run cold.
        timing_cache: rose_bench::shared_timing_cache().cloned(),
        ..MissionConfig::default()
    };
    let report = if let Some(path) = &args.resume_from {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("error: reading {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let snap = MissionSnapshot::from_bytes(bytes);
        let mission = match snap.resume() {
            Ok(mission) => mission,
            Err(e) => {
                eprintln!("error: resuming {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        // Reporting and the determinism audit must describe the resumed
        // mission, not the default config.
        config = mission.config().clone();
        println!(
            "resumed from {} at sync {}",
            path.display(),
            mission.syncs_executed(),
        );
        mission.run_to_completion()
    } else if let Some(at) = args.snapshot_at {
        match run_with_snapshot(&config, at, &args.snapshot_out) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        run_mission(&config)
    };
    let log = report.trace.as_ref().expect("trace was requested");
    println!(
        "mission: {:.1} sim-s, {} syncs, {} inferences, {} trace events",
        report.sim_time_s,
        report.sync_stats.syncs,
        report.inference_count,
        log.len(),
    );

    if let Some(path) = &args.trace {
        if let Err(e) = log.write_chrome_json(path) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} (load in ui.perfetto.dev)", path.display());
    }
    if let Some(path) = &args.metrics {
        if let Err(e) = report.metric_registry().to_csv().write_to(path) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    if args.profile {
        print!("{}", report.profile.render_table());
    }
    if !report.postmortems.is_empty() {
        println!(
            "flight recorder: {} postmortem(s) triggered",
            report.postmortems.len(),
        );
    }
    if let Some(path) = &args.postmortem_out {
        if report.postmortems.is_empty() {
            println!("no postmortems triggered; {} not written", path.display());
        } else {
            let doc = format!("[{}]\n", report.postmortems.join(","));
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("error: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
    }
    if args.bench_json.is_some() || args.bench_gate.is_some() {
        let record = bench_record(&report);
        if let Some(path) = &args.bench_json {
            if let Err(e) = std::fs::write(path, &record) {
                eprintln!("error: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
        if let Some(baseline) = &args.bench_gate {
            if let Err(e) = bench_gate(&record, baseline) {
                eprintln!("bench gate FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.check {
        match check(&report) {
            Ok(()) => println!("check: trace and registry consistent"),
            Err(e) => {
                eprintln!("check failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.determinism {
        let outcome = audit_determinism(&config);
        let digest = MissionDigest::of(&report);
        println!(
            "determinism: run1 {:#018x} run2 {:#018x} (trajectory {:#018x}, soc {:#018x}, trace {:#018x})",
            outcome.first.combined(),
            outcome.second.combined(),
            outcome.first.trajectory,
            outcome.first.soc,
            outcome.first.trace,
        );
        if !outcome.identical() || outcome.first != digest {
            let mut diverged = outcome.diverged_surfaces();
            if outcome.first != digest {
                diverged.push("vs-initial-run");
            }
            eprintln!("determinism audit FAILED: diverged on {}", diverged.join(", "));
            return ExitCode::FAILURE;
        }
        println!("determinism: bit-identical across runs (sync_mode {:?})", config.sync_mode);
    }
    rose_bench::persist_timing_cache();
    ExitCode::SUCCESS
}
