//! Profile one mission: run it with tracing enabled, write a Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`) and a
//! metrics CSV snapshot of every counter in the stack.
//!
//! ```text
//! profile_mission [--trace out.json] [--metrics out.csv] [--seconds F]
//!                 [--check] [--determinism]
//!                 [--snapshot-at F] [--snapshot-out PATH]
//!                 [--resume-from PATH]
//! ```
//!
//! `ROSE_TRACE` / `ROSE_METRICS` environment variables are fallbacks for
//! the two output paths. `--check` re-parses the emitted JSON and
//! cross-checks the trace and registry against the mission's raw stats —
//! the CI smoke test — exiting nonzero on any inconsistency.
//! `--determinism` additionally runs the same config a second time and
//! compares FNV digests of the trajectory, SoC counters, and trace
//! ordering (see `rose::audit`), exiting nonzero on any divergence.
//!
//! `--snapshot-at F` pauses the mission at the first quantum boundary at
//! or after `F` simulated seconds, writes a [`rose::MissionSnapshot`]
//! checkpoint to `--snapshot-out` (default `mission.rosesnap`), verifies
//! in-process that resuming the checkpoint reproduces the straight run's
//! digest bit-exactly, and then continues to completion.
//! `--resume-from PATH` warm-starts from such a checkpoint instead of
//! booting a fresh mission; the checkpoint's embedded config (including
//! its simulated-time wall) replaces the defaults, so `--seconds` is
//! ignored on this path.

use rose::audit::{audit_determinism, MissionDigest};
use rose::mission::{run_mission, MissionConfig, MissionReport};
use rose::snapshot::{Mission, MissionSnapshot};
use rose_trace::{json, Track};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    seconds: f64,
    check: bool,
    determinism: bool,
    snapshot_at: Option<f64>,
    snapshot_out: PathBuf,
    resume_from: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: profile_mission [--trace out.json] [--metrics out.csv] \
         [--seconds F] [--check] [--determinism] \
         [--snapshot-at F] [--snapshot-out PATH] [--resume-from PATH]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        trace: std::env::var_os("ROSE_TRACE").map(PathBuf::from),
        metrics: std::env::var_os("ROSE_METRICS").map(PathBuf::from),
        seconds: 2.0,
        check: false,
        determinism: false,
        snapshot_at: None,
        snapshot_out: PathBuf::from("mission.rosesnap"),
        resume_from: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => args.trace = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--metrics" => args.metrics = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--seconds" => {
                args.seconds = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--check" => args.check = true,
            "--determinism" => args.determinism = true,
            "--snapshot-at" => {
                args.snapshot_at = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--snapshot-out" => {
                args.snapshot_out = it.next().unwrap_or_else(|| usage()).into()
            }
            "--resume-from" => {
                args.resume_from = Some(it.next().unwrap_or_else(|| usage()).into())
            }
            _ => usage(),
        }
    }
    if args.snapshot_at.is_some() && args.resume_from.is_some() {
        eprintln!("error: --snapshot-at and --resume-from are mutually exclusive");
        usage()
    }
    args
}

/// The `--check` validation: the emitted JSON must parse, name every
/// track, contain the stack's event types, and agree with the raw stats.
fn check(report: &MissionReport) -> Result<(), String> {
    let log = report.trace.as_ref().expect("mission ran traced");
    let doc = json::parse(&log.to_chrome_json()).map_err(|e| format!("bad JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("traceEvents missing")?;

    let mut tracks = Vec::new();
    let mut names = Vec::new();
    for event in events {
        match event.get("name").and_then(|n| n.as_str()) {
            Some("thread_name") => {
                if let Some(t) = event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                {
                    tracks.push(t.to_string());
                }
            }
            Some(n) => names.push(n.to_string()),
            None => return Err("event without a name".into()),
        }
    }
    for track in Track::ALL {
        if !tracks.iter().any(|t| t == track.name()) {
            return Err(format!("track {:?} missing from metadata", track.name()));
        }
    }
    for required in ["env-frame", "sync-quantum", "bridge-packet", "gemmini-tile"] {
        if !names.iter().any(|n| n == required) {
            return Err(format!("no {required:?} events in trace"));
        }
    }

    // Event counts against the mission's own counters.
    let count = |name: &str| names.iter().filter(|n| *n == name).count() as u64;
    if count("env-frame") != report.trajectory.len() as u64 {
        return Err("env-frame count != trajectory length".into());
    }
    if count("sync-quantum") != report.sync_stats.syncs {
        return Err("sync-quantum count != sync_stats.syncs".into());
    }
    if count("bridge-packet") != report.sync_stats.data_to_env + report.sync_stats.data_to_rtl {
        return Err("bridge-packet count != data crossings".into());
    }

    // Registry totals must reproduce the pre-existing stats structs.
    let reg = report.metric_registry();
    let pairs = [
        ("soc.l1.misses", report.soc_stats.l1.misses),
        ("soc.l2.misses", report.soc_stats.l2.misses),
        ("soc.cycles", report.soc_stats.cycles),
        ("sync.syncs", report.sync_stats.syncs),
        ("sync.sim_cycles", report.sync_stats.sim_cycles),
        ("app.inferences", report.inference_count),
    ];
    for (name, expected) in pairs {
        if reg.counter_value(name) != Some(expected) {
            return Err(format!("registry {name} != stats value {expected}"));
        }
    }
    if reg.gauge_value("energy.total_mj") != Some(report.energy.total_mj()) {
        return Err("registry energy.total_mj != energy report".into());
    }
    Ok(())
}

/// The `--snapshot-at` path: run to the boundary, checkpoint, verify the
/// checkpoint resumes bit-identically, continue to completion.
fn run_with_snapshot(config: &MissionConfig, at: f64, out: &PathBuf) -> Result<MissionReport, String> {
    let boundary =
        ((at * config.frame_hz as f64 / config.frames_per_sync as f64).ceil() as u64)
            .min(config.max_syncs());
    let mut mission = Mission::start(config);
    mission.run_syncs(boundary);
    let snap = mission.snapshot();
    std::fs::write(out, snap.bytes())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote snapshot {} ({} bytes at sync {})",
        out.display(),
        snap.bytes().len(),
        mission.syncs_executed(),
    );
    let report = mission.run_to_completion();

    // The checkpoint is only useful if it continues bit-identically.
    let resumed = snap
        .resume()
        .map_err(|e| format!("snapshot failed to resume: {e}"))?
        .run_to_completion();
    if MissionDigest::of(&resumed) != MissionDigest::of(&report) {
        return Err("resumed run diverged from the straight run".into());
    }
    println!("snapshot verified: resume is bit-identical to the straight run");
    Ok(report)
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut config = MissionConfig {
        max_sim_seconds: args.seconds,
        trace: true,
        ..MissionConfig::default()
    };
    let report = if let Some(path) = &args.resume_from {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("error: reading {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let snap = MissionSnapshot::from_bytes(bytes);
        let mission = match snap.resume() {
            Ok(mission) => mission,
            Err(e) => {
                eprintln!("error: resuming {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        // Reporting and the determinism audit must describe the resumed
        // mission, not the default config.
        config = mission.config().clone();
        println!(
            "resumed from {} at sync {}",
            path.display(),
            mission.syncs_executed(),
        );
        mission.run_to_completion()
    } else if let Some(at) = args.snapshot_at {
        match run_with_snapshot(&config, at, &args.snapshot_out) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        run_mission(&config)
    };
    let log = report.trace.as_ref().expect("trace was requested");
    println!(
        "mission: {:.1} sim-s, {} syncs, {} inferences, {} trace events",
        report.sim_time_s,
        report.sync_stats.syncs,
        report.inference_count,
        log.len(),
    );

    if let Some(path) = &args.trace {
        if let Err(e) = log.write_chrome_json(path) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} (load in ui.perfetto.dev)", path.display());
    }
    if let Some(path) = &args.metrics {
        if let Err(e) = report.metric_registry().to_csv().write_to(path) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    if args.check {
        match check(&report) {
            Ok(()) => println!("check: trace and registry consistent"),
            Err(e) => {
                eprintln!("check failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.determinism {
        let outcome = audit_determinism(&config);
        let digest = MissionDigest::of(&report);
        println!(
            "determinism: run1 {:#018x} run2 {:#018x} (trajectory {:#018x}, soc {:#018x}, trace {:#018x})",
            outcome.first.combined(),
            outcome.second.combined(),
            outcome.first.trajectory,
            outcome.first.soc,
            outcome.first.trace,
        );
        if !outcome.identical() || outcome.first != digest {
            let mut diverged = outcome.diverged_surfaces();
            if outcome.first != digest {
                diverged.push("vs-initial-run");
            }
            eprintln!("determinism audit FAILED: diverged on {}", diverged.join(", "));
            return ExitCode::FAILURE;
        }
        println!("determinism: bit-identical across runs (sync_mode {:?})", config.sync_mode);
    }
    ExitCode::SUCCESS
}
