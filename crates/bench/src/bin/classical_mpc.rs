//! Extension experiment (paper §6, "Future Directions"): a classical
//! iterative-optimization workload — nonlinear-MPC-style corridor
//! tracking — whose solver iteration count, and therefore SoC compute
//! time, is data-dependent. RoSE captures the resulting coupling between
//! flight state and control latency end to end.

use rose::mission::MissionConfig;
use rose::mpc::{run_mpc_mission, MpcConfig};
use rose_bench::{write_csv, TextTable};
use rose_sim_core::csv::CsvLog;
use rose_socsim::SocConfig;

fn main() {
    let mut t = TextTable::new(&[
        "config",
        "initial yaw",
        "complete",
        "time (s)",
        "collisions",
        "mean iters",
        "max iters",
        "latency (ms)",
    ]);
    let mut csv = CsvLog::new(&["config_b", "yaw", "mean_iters", "latency_ms"]);
    for (i, soc) in [SocConfig::config_a(), SocConfig::config_b()].iter().enumerate() {
        for yaw in [0.0, 20.0] {
            let mission = MissionConfig {
                soc: soc.clone(),
                initial_yaw_deg: yaw,
                max_sim_seconds: 45.0,
                ..MissionConfig::default()
            };
            let r = run_mpc_mission(&mission, MpcConfig::default());
            let max_iters = r.metrics.iterations.iter().copied().max().unwrap_or(0);
            t.row(vec![
                soc.name.clone(),
                format!("{yaw:+.0}"),
                r.completed.to_string(),
                r.mission_time_s.map_or("-".into(), |x| format!("{x:.2}")),
                r.collisions.to_string(),
                format!("{:.1}", r.metrics.mean_iterations()),
                max_iters.to_string(),
                format!("{:.1}", r.mean_latency_ms),
            ]);
            csv.row(&[
                i as f64,
                yaw,
                r.metrics.mean_iterations(),
                r.mean_latency_ms,
            ]);
        }
    }
    t.print("Extension: classical MPC workload with data-dependent runtime (tunnel @ 3 m/s)");
    println!("angled starts force larger corrections -> more solver iterations -> longer");
    println!("SoC compute per control step; the effect compounds with the slower core.");
    if let Some(p) = write_csv("classical_mpc.csv", &csv) {
        println!("wrote {}", p.display());
    }
}
