//! Regenerates Figure 13: static vs dynamic DNN selection.
use rose_bench::{mission_table, write_csv};
use rose_sim_core::csv::CsvLog;

fn main() {
    let runs = rose_bench::fig13();
    mission_table(&runs).print("Figure 13: application runtime and accelerator activity factor");
    let mut csv = CsvLog::new(&["run", "time_s", "activity", "inferences", "fast_fraction"]);
    for (i, run) in runs.iter().enumerate() {
        csv.row(&[
            i as f64,
            run.report.mission_time_s.unwrap_or(f64::NAN),
            run.report.activity_factor,
            run.report.inference_count as f64,
            run.report.fast_fraction,
        ]);
    }
    println!("paper: the dynamic runtime achieves a lower activity factor than static ResNet14 while also improving mission time, with ~15% fewer inferences");
    if let Some(p) = write_csv("fig13.csv", &csv) {
        println!("wrote {}", p.display());
    }
    rose_bench::persist_timing_cache();
}
