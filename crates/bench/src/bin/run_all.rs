//! Runs every table/figure experiment in sequence (the artifact's
//! `run-all.sh`). Each mission sweep fans its independent scenarios out
//! over a worker pool; control the width with `--jobs N` or
//! `ROSE_BENCH_JOBS`.
fn main() {
    println!("sweep parallelism: {} jobs", rose_bench::default_jobs());
    for (name, f) in [
        ("table2", run_table2 as fn()),
        ("table3", run_table3),
        ("fig10", run_fig10),
        ("fig11", run_fig11),
        ("fig12", run_fig12),
        ("fig13", run_fig13),
        ("fig14", run_fig14),
        ("fig15", run_fig15),
        ("fig16", run_fig16),
    ] {
        println!("\n################ {name} ################");
        f();
    }
    rose_bench::persist_timing_cache();
}

fn run_table2() {
    rose_bench::table2().print("Table 2");
}
fn run_table3() {
    let rows = rose_bench::table3();
    for r in rows {
        println!(
            "{}: BOOM {:.0} ms, Rocket {:.0} ms, acc {:.0}%",
            r.model,
            r.boom_ms,
            r.rocket_ms,
            r.accuracy * 100.0
        );
    }
}
fn run_fig10() {
    rose_bench::mission_table(&rose_bench::fig10()).print("Figure 10");
}
fn run_fig11() {
    let runs: Vec<_> = rose_bench::fig11()
        .into_iter()
        .map(|(m, report)| rose_bench::LabeledRun {
            label: m.to_string(),
            report,
        })
        .collect();
    rose_bench::mission_table(&runs).print("Figure 11");
}
fn run_fig12() {
    let runs: Vec<_> = rose_bench::fig12()
        .into_iter()
        .map(|(v, report)| rose_bench::LabeledRun {
            label: format!("v={v}"),
            report,
        })
        .collect();
    rose_bench::mission_table(&runs).print("Figure 12");
}
fn run_fig13() {
    rose_bench::mission_table(&rose_bench::fig13()).print("Figure 13");
}
fn run_fig14() {
    rose_bench::mission_table(&rose_bench::fig14()).print("Figure 14");
}
fn run_fig15() {
    for p in rose_bench::fig15(2.0) {
        println!(
            "{} frames/sync ({}M cycles): {:.1} sim-MHz, env {:.2}s / rtl {:.2}s, overlap {:.2}",
            p.frames_per_sync,
            p.cycles_per_sync / 1_000_000,
            p.sim_mhz,
            p.env_wall_s,
            p.rtl_wall_s,
            p.overlap,
        );
    }
}
fn run_fig16() {
    for run in rose_bench::fig16() {
        println!(
            "{}M cycles/sync: latency {:.0} ms, time {:?}, collisions {}",
            run.cycles_per_sync / 1_000_000,
            run.report.mean_latency_ms,
            run.report.mission_time_s,
            run.report.collisions
        );
    }
}
