//! Extension experiment: multi-tenant execution (§1's motivation, after
//! MoCA). A best-effort telemetry task time-shares the companion core
//! with the DNN control loop; RoSE shows both the control loop's latency
//! inflation and the telemetry throughput the otherwise-idle core
//! recovers.

use rose::mission::{run_mission, run_mission_multitenant, MissionConfig};
use rose_bench::{write_csv, TextTable};
use rose_sim_core::csv::CsvLog;
use rose_socsim::multitenant::TimeSharedConfig;
use rose_socsim::SocConfig;

fn main() {
    let mut t = TextTable::new(&[
        "config",
        "sharing",
        "time (s)",
        "collisions",
        "latency (ms)",
        "idle frac",
        "telemetry blocks",
    ]);
    let mut csv = CsvLog::new(&["config_b", "bg_ops", "latency_ms", "telemetry"]);
    for (ci, soc) in [SocConfig::config_a(), SocConfig::config_b()].iter().enumerate() {
        let mission = MissionConfig {
            soc: soc.clone(),
            max_sim_seconds: 45.0,
            ..MissionConfig::default()
        };
        // Baseline: control loop alone.
        let solo = run_mission(&mission);
        let idle = solo.soc_stats.idle_cycles as f64 / solo.soc_stats.cycles as f64;
        t.row(vec![
            soc.name.clone(),
            "solo".into(),
            solo.mission_time_s.map_or("-".into(), |x| format!("{x:.2}")),
            solo.collisions.to_string(),
            format!("{:.0}", solo.mean_latency_ms),
            format!("{idle:.2}"),
            "0".into(),
        ]);
        csv.row(&[ci as f64, 0.0, solo.mean_latency_ms, 0.0]);
        for bg_ops in [1u32, 4] {
            let (r, telemetry) = run_mission_multitenant(
                &mission,
                TimeSharedConfig {
                    background_ops_per_fg: bg_ops,
                    ..TimeSharedConfig::default()
                },
                64 * 1024,
            );
            let idle = r.soc_stats.idle_cycles as f64 / r.soc_stats.cycles as f64;
            t.row(vec![
                soc.name.clone(),
                format!("+telemetry x{bg_ops}"),
                r.mission_time_s.map_or("-".into(), |x| format!("{x:.2}")),
                r.collisions.to_string(),
                format!("{:.0}", r.mean_latency_ms),
                format!("{idle:.2}"),
                telemetry.to_string(),
            ]);
            csv.row(&[ci as f64, bg_ops as f64, r.mean_latency_ms, telemetry as f64]);
        }
    }
    t.print("Extension: multi-tenant core sharing (tunnel, ResNet14 @ 3 m/s)");
    println!("the telemetry tenant recovers the control loop's idle cycles (idle frac");
    println!("drops to ~0) at the cost of control-latency inflation that grows with its");
    println!("scheduling share — the contention trade-off RoSE makes visible pre-silicon.");
    if let Some(p) = write_csv("multi_tenant.csv", &csv) {
        println!("wrote {}", p.display());
    }
}
