//! Extension experiment: multi-tenant execution (§1's motivation, after
//! MoCA). A best-effort telemetry task time-shares the companion core
//! with the DNN control loop; RoSE shows both the control loop's latency
//! inflation and the telemetry throughput the otherwise-idle core
//! recovers.

use rose::mission::{run_mission, run_mission_multitenant, MissionConfig};
use rose_bench::{default_jobs, parallel_map, write_csv, TextTable};
use rose_sim_core::csv::CsvLog;
use rose_socsim::multitenant::TimeSharedConfig;
use rose_socsim::SocConfig;

fn main() {
    let mut t = TextTable::new(&[
        "config",
        "sharing",
        "time (s)",
        "collisions",
        "latency (ms)",
        "idle frac",
        "telemetry blocks",
    ]);
    let mut csv = CsvLog::new(&["config_b", "bg_ops", "latency_ms", "telemetry"]);
    // One scenario per (config, scheduling share): bg_ops = 0 is the
    // control loop alone. All six runs are independent, so they share the
    // sweep worker pool.
    let mut scenarios = Vec::new();
    for (ci, soc) in [SocConfig::config_a(), SocConfig::config_b()].iter().enumerate() {
        for bg_ops in [0u32, 1, 4] {
            scenarios.push((ci, soc.clone(), bg_ops));
        }
    }
    let results = parallel_map(scenarios, default_jobs(), |(ci, soc, bg_ops)| {
        let mission = MissionConfig {
            soc,
            max_sim_seconds: 45.0,
            ..MissionConfig::default()
        };
        let (r, telemetry) = if bg_ops == 0 {
            (run_mission(&mission), 0)
        } else {
            run_mission_multitenant(
                &mission,
                TimeSharedConfig {
                    background_ops_per_fg: bg_ops,
                    ..TimeSharedConfig::default()
                },
                64 * 1024,
            )
        };
        (ci, mission.soc.name.clone(), bg_ops, r, telemetry)
    });
    for (ci, name, bg_ops, r, telemetry) in results {
        let idle = r.soc_stats.idle_cycles as f64 / r.soc_stats.cycles as f64;
        t.row(vec![
            name,
            if bg_ops == 0 {
                "solo".into()
            } else {
                format!("+telemetry x{bg_ops}")
            },
            r.mission_time_s.map_or("-".into(), |x| format!("{x:.2}")),
            r.collisions.to_string(),
            format!("{:.0}", r.mean_latency_ms),
            format!("{idle:.2}"),
            telemetry.to_string(),
        ]);
        csv.row(&[ci as f64, bg_ops as f64, r.mean_latency_ms, telemetry as f64]);
    }
    t.print("Extension: multi-tenant core sharing (tunnel, ResNet14 @ 3 m/s)");
    println!("the telemetry tenant recovers the control loop's idle cycles (idle frac");
    println!("drops to ~0) at the cost of control-latency inflation that grows with its");
    println!("scheduling share — the contention trade-off RoSE makes visible pre-silicon.");
    if let Some(p) = write_csv("multi_tenant.csv", &csv) {
        println!("wrote {}", p.display());
    }
}
