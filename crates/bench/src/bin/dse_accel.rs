//! Pre-silicon accelerator design-space exploration (the class of study
//! RoSE enables beyond the paper's figures, per Section 2.2: "access to a
//! wider range of microarchitectural parameters across accelerator design
//! and SoC integration").
//!
//! Sweeps the systolic mesh dimension and scratchpad capacity of the
//! Gemmini-class accelerator and reports both the isolated inference
//! latency AND the closed-loop mission outcome — demonstrating that
//! isolated speedups saturate in the end-to-end system (the paper's
//! motivating argument in Section 1).

use rose::app::ControllerChoice;
use rose::mission::{run_mission, MissionConfig};
use rose_bench::{default_jobs, parallel_map, with_timing_cache, write_csv, TextTable};
use rose_dnn::lower::time_inference;
use rose_dnn::DnnModel;
use rose_envsim::WorldKind;
use rose_sim_core::csv::CsvLog;
use rose_socsim::SocConfig;

fn main() {
    let model = DnnModel::ResNet14;
    let mut t = TextTable::new(&[
        "mesh",
        "scratchpad",
        "inference (ms)",
        "mission time (s)",
        "collisions",
        "activity",
    ]);
    let mut csv = CsvLog::new(&["mesh", "spad_kib", "inference_ms", "time_s", "collisions"]);

    let mut design_points = Vec::new();
    for mesh in [2usize, 4, 8, 16] {
        for spad_kib in [128usize, 256, 512] {
            design_points.push((mesh, spad_kib));
        }
    }
    let results = parallel_map(design_points, default_jobs(), |(mesh, spad_kib)| {
        let soc = SocConfig::config_a()
            .with_mesh(mesh)
            .with_scratchpad(spad_kib * 1024);
        let inference_ms = time_inference(&soc, model) as f64 / 1e6;
        // Each design point has its own cache fingerprint (the Gemmini
        // parameters are part of it), so entries never leak across points;
        // repeated sweeps of the same grid start fully warm.
        let mission = with_timing_cache(MissionConfig {
            soc,
            world: WorldKind::SShape,
            velocity: 9.0,
            controller: ControllerChoice::Static(model),
            max_sim_seconds: 60.0,
            ..MissionConfig::default()
        });
        (mesh, spad_kib, inference_ms, run_mission(&mission))
    });
    for (mesh, spad_kib, inference_ms, r) in results {
        t.row(vec![
            format!("{mesh}x{mesh}"),
            format!("{spad_kib} KiB"),
            format!("{inference_ms:.0}"),
            r.mission_time_s.map_or("-".into(), |x| format!("{x:.2}")),
            r.collisions.to_string(),
            format!("{:.3}", r.activity_factor),
        ]);
        csv.row(&[
            mesh as f64,
            spad_kib as f64,
            inference_ms,
            r.mission_time_s.unwrap_or(f64::NAN),
            r.collisions as f64,
        ]);
    }
    t.print("Accelerator DSE: mesh dimension x scratchpad (ResNet14, s-shape @ 9 m/s)");
    println!("isolated inference latency keeps improving with mesh size, but the");
    println!("closed-loop mission saturates once the control loop meets its deadline —");
    println!("the system-level effect RoSE exists to expose.");
    if let Some(p) = write_csv("dse_accel.csv", &csv) {
        println!("wrote {}", p.display());
    }
    rose_bench::persist_timing_cache();
}
