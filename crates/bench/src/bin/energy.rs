//! Extension experiment: mission energy across configurations, making
//! §5.3's claim quantitative — "a lower activity factor frees system
//! resources for other applications and reduces energy consumption."

use rose::app::ControllerChoice;
use rose::mission::{run_mission, MissionConfig};
use rose_bench::{write_csv, TextTable};
use rose_dnn::DnnModel;
use rose_envsim::WorldKind;
use rose_sim_core::csv::CsvLog;
use rose_socsim::SocConfig;

fn main() {
    let mut t = TextTable::new(&[
        "run",
        "time (s)",
        "activity",
        "core (mJ)",
        "accel (mJ)",
        "dram (mJ)",
        "static (mJ)",
        "total (mJ)",
        "avg power (mW)",
    ]);
    let mut csv = CsvLog::new(&["run", "total_mj", "avg_mw", "activity"]);
    let cases: Vec<(String, MissionConfig)> = vec![
        (
            "A static-R14".into(),
            MissionConfig {
                world: WorldKind::SShape,
                velocity: 9.0,
                max_sim_seconds: 60.0,
                ..MissionConfig::default()
            },
        ),
        (
            "A static-R6".into(),
            MissionConfig {
                world: WorldKind::SShape,
                velocity: 9.0,
                controller: ControllerChoice::Static(DnnModel::ResNet6),
                max_sim_seconds: 60.0,
                ..MissionConfig::default()
            },
        ),
        (
            "A dynamic".into(),
            MissionConfig {
                world: WorldKind::SShape,
                velocity: 9.0,
                controller: ControllerChoice::dynamic_default(),
                max_sim_seconds: 60.0,
                ..MissionConfig::default()
            },
        ),
        (
            "B static-R14".into(),
            MissionConfig {
                soc: SocConfig::config_b(),
                world: WorldKind::SShape,
                velocity: 9.0,
                max_sim_seconds: 60.0,
                ..MissionConfig::default()
            },
        ),
    ];
    for (i, (label, mission)) in cases.iter().enumerate() {
        let r = run_mission(mission);
        let e = r.energy;
        t.row(vec![
            label.clone(),
            r.mission_time_s.map_or("-".into(), |x| format!("{x:.2}")),
            format!("{:.3}", r.activity_factor),
            format!("{:.0}", e.core_mj),
            format!("{:.0}", e.accel_mj),
            format!("{:.0}", e.dram_mj),
            format!("{:.0}", e.static_mj),
            format!("{:.0}", e.total_mj()),
            format!("{:.0}", e.average_mw()),
        ]);
        csv.row(&[i as f64, e.total_mj(), e.average_mw(), r.activity_factor]);
    }
    t.print("Extension: mission energy (s-shape @ 9 m/s)");
    println!("the dynamic runtime's lower activity factor and shorter mission both cut");
    println!("energy relative to static ResNet14; Rocket trades core energy for time.");
    if let Some(p) = write_csv("energy.csv", &csv) {
        println!("wrote {}", p.display());
    }
}
