//! Regenerates Table 3: latency and accuracy of the DNN controllers.
use rose_bench::{write_csv, TextTable};
use rose_sim_core::csv::CsvLog;

fn main() {
    let rows = rose_bench::table3();
    let paper_a = [77.0, 83.0, 85.0, 130.0, 225.0];
    let paper_b = [101.0, 108.0, 125.0, 185.0, 300.0];
    let mut t = TextTable::new(&[
        "model",
        "BOOM+Gemmini (ms)",
        "paper",
        "Rocket+Gemmini (ms)",
        "paper",
        "val. accuracy",
    ]);
    let mut csv = CsvLog::new(&["depth", "boom_ms", "rocket_ms", "accuracy"]);
    for (i, row) in rows.iter().enumerate() {
        t.row(vec![
            row.model.to_string(),
            format!("{:.0}", row.boom_ms),
            format!("{:.0}", paper_a[i]),
            format!("{:.0}", row.rocket_ms),
            format!("{:.0}", paper_b[i]),
            format!("{:.0}%", row.accuracy * 100.0),
        ]);
        csv.row(&[
            row.model.depth() as f64,
            row.boom_ms,
            row.rocket_ms,
            row.accuracy,
        ]);
    }
    t.print("Table 3: DNN controller latency and accuracy (paper values inline)");
    if let Some(p) = write_csv("table3.csv", &csv) {
        println!("wrote {}", p.display());
    }
}
