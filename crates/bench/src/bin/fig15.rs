//! Regenerates Figure 15: co-simulation throughput vs sync granularity.
use rose_bench::{write_csv, TextTable};
use rose_sim_core::csv::CsvLog;

fn main() {
    let points = rose_bench::fig15(4.0);
    let mut t = TextTable::new(&[
        "frames/sync",
        "cycles/sync",
        "throughput (sim MHz)",
        "env wall (s)",
        "rtl wall (s)",
        "overlap",
    ]);
    let mut csv = CsvLog::new(&[
        "frames_per_sync",
        "cycles_per_sync",
        "sim_mhz",
        "env_wall_s",
        "rtl_wall_s",
        "overlap",
    ]);
    for p in &points {
        t.row(vec![
            p.frames_per_sync.to_string(),
            format!("{}M", p.cycles_per_sync / 1_000_000),
            format!("{:.1}", p.sim_mhz),
            format!("{:.3}", p.env_wall_s),
            format!("{:.3}", p.rtl_wall_s),
            format!("{:.2}", p.overlap),
        ]);
        csv.row(&[
            p.frames_per_sync as f64,
            p.cycles_per_sync as f64,
            p.sim_mhz,
            p.env_wall_s,
            p.rtl_wall_s,
            p.overlap,
        ]);
    }
    t.print("Figure 15: simulation throughput vs synchronization granularity (TCP deployment)");
    println!("paper: throughput grows with granularity, bottlenecked at fine granularity by per-sync polling and at coarse granularity by the RTL simulator's native speed");
    println!("overlap = fraction of the cheaper simulator hidden behind the other by the parallel quantum");
    if let Some(p) = write_csv("fig15.csv", &csv) {
        println!("wrote {}", p.display());
    }
    rose_bench::persist_timing_cache();
}
