//! Regenerates Figure 16: effect of synchronization granularity on
//! trajectories and on image-request -> DNN-response latency.
use rose_bench::{write_csv, TextTable};
use rose_sim_core::csv::CsvLog;

fn main() {
    let runs = rose_bench::fig16();
    let mut t = TextTable::new(&[
        "cycles/sync",
        "latency (ms)",
        "mission time (s)",
        "collisions",
        "final |y| (m)",
    ]);
    let mut csv = CsvLog::new(&["cycles_per_sync", "latency_ms", "time_s", "collisions"]);
    let mut traj = CsvLog::new(&["cycles_per_sync", "t", "x", "y"]);
    for run in &runs {
        let r = &run.report;
        let final_y = r.trajectory.last().map_or(0.0, |p| p.position.y.abs());
        t.row(vec![
            format!("{}M", run.cycles_per_sync / 1_000_000),
            format!("{:.0}", r.mean_latency_ms),
            r.mission_time_s.map_or("-".into(), |x| format!("{x:.2}")),
            r.collisions.to_string(),
            format!("{final_y:.2}"),
        ]);
        csv.row(&[
            run.cycles_per_sync as f64,
            r.mean_latency_ms,
            r.mission_time_s.unwrap_or(f64::NAN),
            r.collisions as f64,
        ]);
        for p in &r.trajectory {
            traj.row(&[run.cycles_per_sync as f64, p.t, p.position.x, p.position.y]);
        }
    }
    t.print("Figure 16: sync granularity sweep (tunnel, +20deg, ResNet14 @ 3 m/s)");
    println!("paper: at 10M cycles the latency sits slightly above the 125 ms compute latency; by 400M cycles the observed ~400 ms is >3x the ideal, and trajectories diverge");
    if let Some(p) = write_csv("fig16.csv", &csv) {
        println!("wrote {}", p.display());
    }
    if let Some(p) = write_csv("fig16_trajectories.csv", &traj) {
        println!("wrote {}", p.display());
    }
    rose_bench::persist_timing_cache();
}
