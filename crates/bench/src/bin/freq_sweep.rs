//! Extension experiment: clock-frequency scaling — the post-silicon
//! parameter MAVBench-style HIL evaluation is limited to (§2.2), here as
//! the baseline against which microarchitectural exploration is compared.

use rose::mission::{run_mission, MissionConfig};
use rose_bench::{default_jobs, parallel_map, with_timing_cache, write_csv, TextTable};
use rose_dnn::lower::time_inference;
use rose_dnn::DnnModel;
use rose_sim_core::cycles::ClockSpec;
use rose_sim_core::csv::CsvLog;
use rose_socsim::SocConfig;

fn main() {
    let mut t = TextTable::new(&[
        "clock",
        "inference (ms)",
        "mission time (s)",
        "collisions",
        "energy (mJ)",
    ]);
    let mut csv = CsvLog::new(&["mhz", "inference_ms", "time_s", "energy_mj"]);
    let results = parallel_map(vec![500u64, 1000, 1500, 2000], default_jobs(), |mhz| {
        let mut soc = SocConfig::config_a();
        soc.clock = ClockSpec::from_mhz(mhz);
        soc.name = format!("A@{mhz}MHz");
        let inference_ms =
            time_inference(&soc, DnnModel::ResNet14) as f64 / soc.clock.hz() as f64 * 1e3;
        // The cache fingerprint deliberately excludes the clock (kernel
        // expansion is entirely cycle-domain), so all four sweep points
        // replay one shared set of entries.
        let mission = with_timing_cache(MissionConfig {
            soc,
            world: rose_envsim::WorldKind::SShape,
            velocity: 9.0,
            max_sim_seconds: 60.0,
            ..MissionConfig::default()
        });
        (mhz, inference_ms, run_mission(&mission))
    });
    for (mhz, inference_ms, r) in results {
        t.row(vec![
            format!("{mhz} MHz"),
            format!("{inference_ms:.0}"),
            r.mission_time_s.map_or("-".into(), |x| format!("{x:.2}")),
            r.collisions.to_string(),
            format!("{:.0}", r.energy.total_mj()),
        ]);
        csv.row(&[
            mhz as f64,
            inference_ms,
            r.mission_time_s.unwrap_or(f64::NAN),
            r.energy.total_mj(),
        ]);
    }
    t.print("Extension: clock-frequency sweep (ResNet14, s-shape @ 9 m/s)");
    println!("frequency scaling alone moves inference latency linearly, but the mission");
    println!("saturates once deadlines are met — microarchitecture (Table 2 / DSE) and");
    println!("algorithm choice (Fig. 11) matter more than the post-silicon knob.");
    if let Some(p) = write_csv("freq_sweep.csv", &csv) {
        println!("wrote {}", p.display());
    }
    rose_bench::persist_timing_cache();
}
