//! Regenerates Figure 11: DNN sweep in s-shape at 9 m/s.
use rose_bench::{mission_table, trajectories_csv, write_csv, LabeledRun};

fn main() {
    let runs: Vec<LabeledRun> = rose_bench::fig11()
        .into_iter()
        .map(|(m, report)| LabeledRun {
            label: m.to_string(),
            report,
        })
        .collect();
    mission_table(&runs).print("Figure 11: s-shape @ 9 m/s, config A, DNN architecture sweep");
    println!("paper mission times: ResNet6 16.1 s (collides), ResNet11 12.94 s, ResNet14 12.32 s, ResNet18 35.68 s, ResNet34 fails");
    if let Some(p) = write_csv("fig11_trajectories.csv", &trajectories_csv(&runs)) {
        println!("wrote {}", p.display());
    }
    rose_bench::persist_timing_cache();
}
