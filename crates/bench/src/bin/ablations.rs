//! Microarchitectural ablations of the design choices DESIGN.md calls out:
//! the L2 stream prefetcher, the systolic dataflow, and bus contention.

use rose_bench::{write_csv, TextTable};
use rose_dnn::lower::time_inference;
use rose_dnn::DnnModel;
use rose_sim_core::csv::CsvLog;
use rose_socsim::gemmini::{ConvShape, Dataflow, GemminiConfig, GemminiModel};
use rose_socsim::mem::{MemConfig, MemSystem};
use rose_socsim::SocConfig;

fn main() {
    // 1. Prefetcher: inference latency with and without the L2 stream
    //    prefetcher, per core.
    let mut t = TextTable::new(&["config", "prefetch", "ResNet14 inference (ms)"]);
    let mut csv = CsvLog::new(&["config_b", "prefetch", "ms"]);
    for (i, base) in [SocConfig::config_a(), SocConfig::config_b()]
        .iter()
        .enumerate()
    {
        for prefetch in [true, false] {
            let mut soc = base.clone();
            soc.mem.prefetch = prefetch;
            let ms = time_inference(&soc, DnnModel::ResNet14) as f64 / 1e6;
            t.row(vec![
                base.to_string(),
                prefetch.to_string(),
                format!("{ms:.0}"),
            ]);
            csv.row(&[i as f64, prefetch as u8 as f64, ms]);
        }
    }
    t.print("Ablation 1: L2 stream prefetcher");
    if let Some(p) = write_csv("ablation_prefetch.csv", &csv) {
        println!("wrote {}", p.display());
    }

    // 2. Dataflow: weight-stationary vs output-stationary compute cycles
    //    across ResNet14's distinct conv shapes.
    let mut t = TextTable::new(&["conv shape", "WS cycles", "OS cycles", "WS/OS"]);
    let shapes = [
        ConvShape { in_c: 3, out_c: 48, out_h: 80, out_w: 80, ksize: 7 },
        ConvShape { in_c: 48, out_c: 48, out_h: 40, out_w: 40, ksize: 3 },
        ConvShape { in_c: 96, out_c: 96, out_h: 20, out_w: 20, ksize: 3 },
        ConvShape { in_c: 384, out_c: 384, out_h: 5, out_w: 5, ksize: 3 },
    ];
    for shape in shapes {
        let run = |dataflow| {
            let mut g = GemminiModel::new(GemminiConfig {
                dataflow,
                ..GemminiConfig::default()
            });
            let mut m = MemSystem::new(MemConfig::default());
            g.conv(shape, &mut m).compute_cycles
        };
        let ws = run(Dataflow::WeightStationary);
        let os = run(Dataflow::OutputStationary);
        t.row(vec![
            format!(
                "{}x{}x{}x{} k{}",
                shape.in_c, shape.out_c, shape.out_h, shape.out_w, shape.ksize
            ),
            ws.to_string(),
            os.to_string(),
            format!("{:.2}", ws as f64 / os as f64),
        ]);
    }
    t.print("Ablation 2: systolic dataflow (the paper picks WS to match the workload)");

    // 3. Bus contention: CPU miss latency under accelerator DMA pressure.
    let mut t = TextTable::new(&["dma utilization", "cold miss latency (cycles)"]);
    for util in [0.0, 0.4, 0.8] {
        let mut m = MemSystem::new(MemConfig::default());
        m.bus_mut().set_dma_utilization(util);
        let lat = m.access(0xdead_0000, false);
        t.row(vec![format!("{util:.1}"), lat.to_string()]);
    }
    t.print("Ablation 3: shared-bus contention on CPU misses");
}
