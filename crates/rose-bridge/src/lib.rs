//! The RoSÉ bridge protocol and synchronizer.
//!
//! This crate implements the co-simulation plumbing of Section 3.4:
//!
//! * [`packet`] — the wire protocol: packets consist of a header
//!   (packet type + byte count) and a serialized payload. **Synchronization
//!   packets** communicate simulation state (cycle grants and completions)
//!   with the RoSÉ BRIDGE but are never visible to the modeled SoC;
//!   **data packets** carry sensor/actuator data and are the only packets
//!   the simulated SoC can observe.
//! * [`transport`] — packet transports: an in-process channel pair and a
//!   TCP transport matching the paper's deployment (the synchronizer talks
//!   to FireSim through a TCP listener).
//! * [`sync`] — the lockstep synchronizer implementing Algorithm 1 over
//!   two abstract simulator interfaces ([`sync::EnvSide`] /
//!   [`sync::RtlSide`]), plus a remote RTL adapter that runs the RTL side
//!   of the protocol over any [`transport::Transport`].
//! * [`faults`] — a deterministic fault-injection engine: a seeded,
//!   sim-time-scheduled [`faults::FaultPlan`] and a
//!   [`faults::FaultyTransport`] decorator that perturbs any transport
//!   (drops, duplicates, reorders, corruption, stalls, transient
//!   disconnects) replayably.

#![deny(missing_docs)]

pub mod faults;
pub mod packet;
pub mod sync;
pub mod transport;

pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultStats, FaultyTransport};
pub use packet::{DecodeError, Packet};
pub use sync::{
    EnvSide, RecoveryPolicy, RecoveryStats, RtlSide, SyncConfig, SyncMode, SyncStats, Synchronizer,
};
pub use transport::{ChannelTransport, TcpTransport, Transport};
