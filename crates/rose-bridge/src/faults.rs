//! Deterministic fault injection for packet transports.
//!
//! A [`FaultPlan`] schedules fault events against the quantum timeline
//! (the count of `GrantCycles` packets that have crossed the wrapper — a
//! pure function of simulated progress, never of wall time), and a
//! [`FaultyTransport`] decorator injects them into any [`Transport`].
//! Every choice the injector makes flows from the plan and its seeded
//! [`SimRng`], so the same plan over the same traffic produces the same
//! faults byte-for-byte — missions under fault injection stay replayable
//! and forkable (DESIGN.md §4h).
//!
//! Two fault families exist, matching how real deployments fail:
//!
//! * **Silent data faults** ([`FaultKind::Drop`], [`FaultKind::Duplicate`],
//!   [`FaultKind::Reorder`], [`FaultKind::Corrupt`]) perturb only
//!   [`Packet::Data`] payloads on the send path. Synchronization packets
//!   are never silently dropped — swallowing a `GrantCycles` or
//!   `CyclesDone` would deadlock the blocking completion wait rather than
//!   model a lossy link. These faults are absorbed by the application
//!   layers (sequence-number dedupe, request timeouts, sensor fallback).
//! * **Connection faults** ([`FaultKind::Stall`],
//!   [`FaultKind::Disconnect`]) surface as [`TransportError`]s and
//!   exercise the synchronizer's retry/reconnect/resync recovery
//!   machinery. Both are bounded in *operations*, not wall time, so a
//!   sufficiently patient [`RecoveryPolicy`](crate::sync::RecoveryPolicy)
//!   always outlasts them.

use crate::packet::Packet;
use crate::transport::{Transport, TransportError};
use bytes::BytesMut;
use rose_sim_core::rng::SimRng;
use rose_sim_core::snap::{SnapError, SnapReader, SnapWriter};
use std::io;

/// Section magic guarding the serialized injector state ("FLT1").
const SNAP_SECTION: u32 = 0x464c_5431;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silently swallow the next outbound data packet.
    Drop,
    /// Send the next outbound data packet twice (same sequence number —
    /// the receiver's dedupe must discard the copy).
    Duplicate,
    /// Hold the next outbound data packet and release it after the one
    /// that follows (a bounded, single-packet reorder). The hold flushes
    /// before any synchronization packet so framing is preserved.
    Reorder,
    /// Flip one deterministically chosen byte of the next outbound data
    /// payload (exercises the receiver's decode-error tolerance).
    Corrupt,
    /// The next `ops` receive operations fail with a timed-out I/O error
    /// (a latency spike: the link is alive but unresponsive).
    Stall {
        /// Receive operations that will time out.
        ops: u32,
    },
    /// The next `ops` transport operations (send, receive, or reconnect)
    /// fail with [`TransportError::Disconnected`], then the link heals.
    Disconnect {
        /// Operations that will fail before the link recovers.
        ops: u32,
    },
}

impl FaultKind {
    fn tag(self) -> u8 {
        match self {
            FaultKind::Drop => 0,
            FaultKind::Duplicate => 1,
            FaultKind::Reorder => 2,
            FaultKind::Corrupt => 3,
            FaultKind::Stall { .. } => 4,
            FaultKind::Disconnect { .. } => 5,
        }
    }

    fn ops(self) -> u32 {
        match self {
            FaultKind::Stall { ops } | FaultKind::Disconnect { ops } => ops,
            _ => 0,
        }
    }

    fn from_parts(tag: u8, ops: u32) -> Result<FaultKind, SnapError> {
        Ok(match tag {
            0 => FaultKind::Drop,
            1 => FaultKind::Duplicate,
            2 => FaultKind::Reorder,
            3 => FaultKind::Corrupt,
            4 => FaultKind::Stall { ops },
            5 => FaultKind::Disconnect { ops },
            t => {
                return Err(SnapError::BadTag {
                    context: "fault kind",
                    tag: t,
                })
            }
        })
    }

    /// A short static label (postmortems, reproducer dumps).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Stall { .. } => "stall",
            FaultKind::Disconnect { .. } => "disconnect",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The quantum index at which the fault arms: the event fires on the
    /// first transport operation after `at_quantum` cycle grants have
    /// crossed the wrapper.
    pub at_quantum: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// A seeded, sim-time-scheduled fault schedule.
///
/// Plans are data: construct one, hand it to
/// [`FaultyTransport::new`], and the same plan injects the same faults on
/// every run. Events are kept sorted by `at_quantum` (stable for ties) so
/// the arming order is part of the plan's identity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty plan with the given corruption-choice seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds one event (builder style). Events may be added in any order;
    /// the plan keeps them sorted by quantum.
    #[must_use]
    pub fn with_event(mut self, at_quantum: u64, kind: FaultKind) -> FaultPlan {
        self.push(at_quantum, kind);
        self
    }

    /// Adds one event in place.
    pub fn push(&mut self, at_quantum: u64, kind: FaultKind) {
        let idx = self
            .events
            .partition_point(|e| e.at_quantum <= at_quantum);
        self.events.insert(idx, FaultEvent { at_quantum, kind });
    }

    /// The schedule, sorted by quantum.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The seed for the injector's deterministic choices.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the plan schedules nothing — the wrapper then passes
    /// every operation straight through.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a random schedule of `count` events over quanta
    /// `[0, max_quantum)`, derived entirely from `seed` (the chaos-mission
    /// generator). Connection faults get small bounded windows so any
    /// reasonable recovery policy can outlast them.
    pub fn random(seed: u64, max_quantum: u64, count: usize) -> FaultPlan {
        let mut rng = SimRng::new(seed).split("fault-plan");
        let mut plan = FaultPlan::new(seed);
        for _ in 0..count {
            let at_quantum = rng.below(max_quantum.max(1));
            let kind = match rng.below(6) {
                0 => FaultKind::Drop,
                1 => FaultKind::Duplicate,
                2 => FaultKind::Reorder,
                3 => FaultKind::Corrupt,
                4 => FaultKind::Stall {
                    // rose-lint: allow(CAST001, below(3) fits in u32)
                    ops: 1 + rng.below(3) as u32,
                },
                _ => FaultKind::Disconnect {
                    // rose-lint: allow(CAST001, below(4) fits in u32)
                    ops: 1 + rng.below(4) as u32,
                },
            };
            plan.push(at_quantum, kind);
        }
        plan
    }

    /// Serializes the schedule itself (chaos-mission reproducer dumps,
    /// embedding a plan inside a mission snapshot).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.seed);
        w.usize(self.events.len());
        for e in &self.events {
            w.u64(e.at_quantum);
            w.u8(e.kind.tag());
            w.u32(e.kind.ops());
        }
    }

    /// Deserializes a schedule written by [`save_state`](FaultPlan::save_state).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on truncation or an unknown fault tag.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<FaultPlan, SnapError> {
        let seed = r.u64()?;
        let n = r.usize()?;
        let mut plan = FaultPlan::new(seed);
        for _ in 0..n {
            let at_quantum = r.u64()?;
            let tag = r.u8()?;
            let ops = r.u32()?;
            plan.push(at_quantum, FaultKind::from_parts(tag, ops)?);
        }
        Ok(plan)
    }
}

/// Per-kind injection counters — deterministic (they follow the plan), so
/// they are serialized with the injector and can be asserted across a
/// fork/resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Data packets silently swallowed.
    pub dropped: u64,
    /// Data packets sent twice.
    pub duplicated: u64,
    /// Data packet pairs swapped.
    pub reordered: u64,
    /// Data payloads with a flipped byte.
    pub corrupted: u64,
    /// Receive operations failed with a timeout.
    pub stalled_ops: u64,
    /// Operations failed with a disconnect.
    pub disconnected_ops: u64,
}

impl FaultStats {
    /// Total injected perturbations across every kind.
    pub fn total(&self) -> u64 {
        let FaultStats {
            dropped,
            duplicated,
            reordered,
            corrupted,
            stalled_ops,
            disconnected_ops,
        } = self;
        dropped + duplicated + reordered + corrupted + stalled_ops + disconnected_ops
    }
}

/// A [`Transport`] decorator that injects the faults a [`FaultPlan`]
/// schedules, deterministically.
///
/// Wrap the *synchronizer's* transport: silent data faults apply to the
/// send direction (environment → SoC sensor traffic), connection faults
/// to every operation. The server side stays pristine — it only needs the
/// resync protocol, not an injector of its own.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    /// Next plan event not yet armed.
    cursor: usize,
    rng: SimRng,
    /// `GrantCycles` packets that have crossed the wrapper.
    quantum: u64,
    /// Armed silent faults (counts; multiple events may stack).
    drop_data: u32,
    dup_data: u32,
    corrupt_data: u32,
    reorder_data: u32,
    /// A data packet held back by an armed reorder.
    held: Option<Packet>,
    /// Remaining receive operations that fail with a timeout.
    stall_ops: u32,
    /// Remaining operations that fail with a disconnect.
    fail_ops: u32,
    stats: FaultStats,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the given schedule.
    pub fn new(inner: T, plan: FaultPlan) -> FaultyTransport<T> {
        let rng = SimRng::new(plan.seed()).split("fault-inject");
        FaultyTransport {
            inner,
            plan,
            cursor: 0,
            rng,
            quantum: 0,
            drop_data: 0,
            dup_data: 0,
            corrupt_data: 0,
            reorder_data: 0,
            held: None,
            stall_ops: 0,
            fail_ops: 0,
            stats: FaultStats::default(),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// The schedule driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Quanta observed so far (grants sent through the wrapper).
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Arms every plan event whose quantum has been reached.
    fn arm(&mut self) {
        while self.cursor < self.plan.events.len()
            && self.plan.events[self.cursor].at_quantum <= self.quantum
        {
            match self.plan.events[self.cursor].kind {
                FaultKind::Drop => self.drop_data += 1,
                FaultKind::Duplicate => self.dup_data += 1,
                FaultKind::Reorder => self.reorder_data += 1,
                FaultKind::Corrupt => self.corrupt_data += 1,
                FaultKind::Stall { ops } => self.stall_ops += ops,
                FaultKind::Disconnect { ops } => self.fail_ops += ops,
            }
            self.cursor += 1;
        }
    }

    /// Consumes one operation from the disconnect window, if open.
    fn disconnect_op(&mut self) -> Result<(), TransportError> {
        if self.fail_ops > 0 {
            self.fail_ops -= 1;
            self.stats.disconnected_ops += 1;
            return Err(TransportError::Disconnected);
        }
        Ok(())
    }

    /// Sends any held (reordered) packet before a packet that must not
    /// overtake data.
    fn flush_held(&mut self) -> Result<(), TransportError> {
        if let Some(held) = self.held.take() {
            self.inner.send(&held)?;
        }
        Ok(())
    }

    /// Serializes the injector's dynamic position: plan cursor, RNG, the
    /// quantum counter, armed fault state (including a held reordered
    /// packet), and the injection counters. The plan itself is
    /// configuration — the restoring side must construct the wrapper with
    /// an identical plan, exactly as it must reconstruct the mission
    /// config.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let FaultyTransport {
            inner: _,
            plan,
            cursor,
            rng,
            quantum,
            drop_data,
            dup_data,
            corrupt_data,
            reorder_data,
            held,
            stall_ops,
            fail_ops,
            stats,
        } = self;
        w.section(SNAP_SECTION);
        // A plan fingerprint so a restore onto the wrong schedule fails
        // loudly instead of silently diverging.
        w.u64(plan.seed);
        w.usize(plan.events.len());
        w.usize(*cursor);
        rng.save_state(w);
        w.u64(*quantum);
        w.u32(*drop_data);
        w.u32(*dup_data);
        w.u32(*corrupt_data);
        w.u32(*reorder_data);
        match held {
            Some(p) => w.opt_bytes(Some(&p.to_bytes())),
            None => w.opt_bytes(None),
        }
        w.u32(*stall_ops);
        w.u32(*fail_ops);
        let FaultStats {
            dropped,
            duplicated,
            reordered,
            corrupted,
            stalled_ops,
            disconnected_ops,
        } = stats;
        w.u64(*dropped);
        w.u64(*duplicated);
        w.u64(*reordered);
        w.u64(*corrupted);
        w.u64(*stalled_ops);
        w.u64(*disconnected_ops);
    }

    /// Restores the injector's position. The wrapper must have been
    /// constructed with the same [`FaultPlan`] that produced the snapshot.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot, and reports
    /// [`SnapError::BadSection`] when the plan fingerprint does not match
    /// this wrapper's plan.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section(SNAP_SECTION)?;
        let seed = r.u64()?;
        let n_events = r.usize()?;
        if seed != self.plan.seed || n_events != self.plan.events.len() {
            return Err(SnapError::BadSection {
                expected: SNAP_SECTION,
                // rose-lint: allow(CAST001, diagnostic truncation of the mismatched event count into the error report)
                found: n_events as u32,
            });
        }
        self.cursor = r.usize()?;
        self.rng.restore_state(r)?;
        self.quantum = r.u64()?;
        self.drop_data = r.u32()?;
        self.dup_data = r.u32()?;
        self.corrupt_data = r.u32()?;
        self.reorder_data = r.u32()?;
        self.held = match r.opt_bytes()? {
            Some(bytes) => {
                let mut buf = BytesMut::from(&bytes[..]);
                match Packet::decode(&mut buf) {
                    Ok(p) => Some(p),
                    Err(_) => {
                        return Err(SnapError::BadTag {
                            context: "held reorder packet",
                            tag: bytes.first().copied().unwrap_or(0),
                        })
                    }
                }
            }
            None => None,
        };
        self.stall_ops = r.u32()?;
        self.fail_ops = r.u32()?;
        self.stats = FaultStats {
            dropped: r.u64()?,
            duplicated: r.u64()?,
            reordered: r.u64()?,
            corrupted: r.u64()?,
            stalled_ops: r.u64()?,
            disconnected_ops: r.u64()?,
        };
        Ok(())
    }

    /// Applies armed silent faults to one outbound data packet. Returns
    /// `Ok(None)` when the packet was swallowed or held.
    fn filter_data(&mut self, packet: &Packet) -> Result<Option<Packet>, TransportError> {
        let Packet::Data { seq, payload } = packet else {
            return Ok(Some(packet.clone()));
        };
        if self.drop_data > 0 {
            self.drop_data -= 1;
            self.stats.dropped += 1;
            return Ok(None);
        }
        let mut out = Packet::Data {
            seq: *seq,
            payload: payload.clone(),
        };
        if self.corrupt_data > 0 {
            self.corrupt_data -= 1;
            if let Packet::Data { payload, .. } = &mut out {
                if !payload.is_empty() {
                    // rose-lint: allow(CAST001, below(len) is bounded by the payload length and fits usize)
                    let idx = self.rng.below(payload.len() as u64) as usize;
                    // rose-lint: allow(CAST001, deliberate truncation into a byte-flip mask)
                    let mask = (self.rng.next_u64() as u8) | 1;
                    payload[idx] ^= mask;
                    self.stats.corrupted += 1;
                }
            }
        }
        if self.dup_data > 0 {
            self.dup_data -= 1;
            self.stats.duplicated += 1;
            self.inner.send(&out)?;
        }
        if self.reorder_data > 0 {
            if let Some(earlier) = self.held.take() {
                // Partner arrived: emit the newer packet first, then the
                // held one — a single bounded swap.
                self.reorder_data -= 1;
                self.stats.reordered += 1;
                self.inner.send(&out)?;
                self.inner.send(&earlier)?;
                return Ok(None);
            }
            self.held = Some(out);
            return Ok(None);
        }
        Ok(Some(out))
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, packet: &Packet) -> Result<(), TransportError> {
        self.arm();
        self.disconnect_op()?;
        match packet {
            Packet::Data { .. } => {
                if let Some(out) = self.filter_data(packet)? {
                    self.inner.send(&out)?;
                }
                Ok(())
            }
            sync_packet => {
                // Data must not overtake synchronization packets: flush any
                // held reorder before the boundary crosses.
                self.flush_held()?;
                self.inner.send(sync_packet)?;
                if matches!(sync_packet, Packet::GrantCycles { .. }) {
                    self.quantum += 1;
                }
                Ok(())
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<Packet>, TransportError> {
        self.arm();
        self.disconnect_op()?;
        if self.stall_ops > 0 {
            self.stall_ops -= 1;
            self.stats.stalled_ops += 1;
            return Err(TransportError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected stall",
            )));
        }
        self.inner.try_recv()
    }

    fn recv(&mut self) -> Result<Packet, TransportError> {
        self.arm();
        self.disconnect_op()?;
        if self.stall_ops > 0 {
            self.stall_ops -= 1;
            self.stats.stalled_ops += 1;
            return Err(TransportError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected stall",
            )));
        }
        self.inner.recv()
    }

    fn reconnect(&mut self) -> Result<(), TransportError> {
        self.arm();
        self.disconnect_op()?;
        self.inner.reconnect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;

    fn data(seq: u32, byte: u8) -> Packet {
        Packet::Data {
            seq,
            payload: vec![byte; 4],
        }
    }

    fn grant(quantum: u64) -> Packet {
        Packet::GrantCycles {
            cycles: 10,
            quantum,
        }
    }

    #[test]
    fn empty_plan_is_transparent() {
        let (a, mut b) = ChannelTransport::pair();
        let mut faulty = FaultyTransport::new(a, FaultPlan::new(1));
        faulty.send(&data(0, 1)).unwrap();
        faulty.send(&grant(0)).unwrap();
        assert_eq!(b.recv().unwrap(), data(0, 1));
        assert_eq!(b.recv().unwrap(), grant(0));
        b.send(&Packet::CyclesDone {
            cycles: 10,
            quantum: 0,
        })
        .unwrap();
        assert!(matches!(faulty.recv().unwrap(), Packet::CyclesDone { .. }));
        assert_eq!(faulty.stats().total(), 0);
        assert_eq!(faulty.quantum(), 1);
    }

    #[test]
    fn drop_swallows_only_data() {
        let (a, mut b) = ChannelTransport::pair();
        let plan = FaultPlan::new(2).with_event(0, FaultKind::Drop);
        let mut faulty = FaultyTransport::new(a, plan);
        faulty.send(&data(0, 1)).unwrap(); // swallowed
        faulty.send(&data(1, 2)).unwrap(); // passes
        faulty.send(&grant(0)).unwrap(); // sync never dropped
        assert_eq!(b.recv().unwrap(), data(1, 2));
        assert_eq!(b.recv().unwrap(), grant(0));
        assert_eq!(faulty.stats().dropped, 1);
    }

    #[test]
    fn duplicate_sends_twice_with_same_seq() {
        let (a, mut b) = ChannelTransport::pair();
        let plan = FaultPlan::new(3).with_event(0, FaultKind::Duplicate);
        let mut faulty = FaultyTransport::new(a, plan);
        faulty.send(&data(5, 9)).unwrap();
        assert_eq!(b.recv().unwrap(), data(5, 9));
        assert_eq!(b.recv().unwrap(), data(5, 9));
        assert_eq!(faulty.stats().duplicated, 1);
    }

    #[test]
    fn reorder_swaps_adjacent_data_and_flushes_before_sync() {
        let (a, mut b) = ChannelTransport::pair();
        let plan = FaultPlan::new(4).with_event(0, FaultKind::Reorder);
        let mut faulty = FaultyTransport::new(a, plan);
        faulty.send(&data(0, 1)).unwrap(); // held
        faulty.send(&data(1, 2)).unwrap(); // emits 1 then 0
        assert_eq!(b.recv().unwrap(), data(1, 2));
        assert_eq!(b.recv().unwrap(), data(0, 1));
        assert_eq!(faulty.stats().reordered, 1);

        // A hold with no partner flushes before the next sync packet.
        let (a, mut b) = ChannelTransport::pair();
        let plan = FaultPlan::new(4).with_event(0, FaultKind::Reorder);
        let mut faulty = FaultyTransport::new(a, plan);
        faulty.send(&data(0, 1)).unwrap(); // held
        faulty.send(&grant(0)).unwrap();
        assert_eq!(b.recv().unwrap(), data(0, 1));
        assert_eq!(b.recv().unwrap(), grant(0));
    }

    #[test]
    fn corrupt_flips_exactly_one_byte() {
        let (a, mut b) = ChannelTransport::pair();
        let plan = FaultPlan::new(5).with_event(0, FaultKind::Corrupt);
        let mut faulty = FaultyTransport::new(a, plan);
        faulty.send(&data(0, 0x55)).unwrap();
        let got = b.recv().unwrap();
        let Packet::Data { seq, payload } = got else {
            panic!("expected data");
        };
        assert_eq!(seq, 0, "corruption must not touch the sequence number");
        let clean = vec![0x55u8; 4];
        let diffs = payload
            .iter()
            .zip(&clean)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1, "exactly one byte flipped");
        assert_eq!(faulty.stats().corrupted, 1);
    }

    #[test]
    fn disconnect_window_is_bounded_in_operations() {
        let (a, mut b) = ChannelTransport::pair();
        let plan = FaultPlan::new(6).with_event(0, FaultKind::Disconnect { ops: 3 });
        let mut faulty = FaultyTransport::new(a, plan);
        for _ in 0..3 {
            assert!(matches!(
                faulty.send(&grant(0)),
                Err(TransportError::Disconnected)
            ));
        }
        // Window exhausted: the link heals.
        faulty.reconnect().unwrap();
        faulty.send(&grant(0)).unwrap();
        assert_eq!(b.recv().unwrap(), grant(0));
        assert_eq!(faulty.stats().disconnected_ops, 3);
    }

    #[test]
    fn stall_times_out_recvs_then_recovers() {
        let (a, mut b) = ChannelTransport::pair();
        let plan = FaultPlan::new(7).with_event(0, FaultKind::Stall { ops: 2 });
        let mut faulty = FaultyTransport::new(a, plan);
        b.send(&Packet::Shutdown).unwrap();
        for _ in 0..2 {
            match faulty.recv() {
                Err(TransportError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::TimedOut)
                }
                other => panic!("expected stall, got {other:?}"),
            }
        }
        assert_eq!(faulty.recv().unwrap(), Packet::Shutdown);
        assert_eq!(faulty.stats().stalled_ops, 2);
    }

    #[test]
    fn events_arm_at_their_quantum() {
        let (a, mut b) = ChannelTransport::pair();
        let plan = FaultPlan::new(8).with_event(2, FaultKind::Drop);
        let mut faulty = FaultyTransport::new(a, plan);
        // Quanta 0 and 1: data passes untouched.
        faulty.send(&data(0, 1)).unwrap();
        faulty.send(&grant(0)).unwrap();
        faulty.send(&data(1, 2)).unwrap();
        faulty.send(&grant(1)).unwrap();
        // Quantum 2: the drop arms.
        faulty.send(&data(2, 3)).unwrap();
        faulty.send(&grant(2)).unwrap();
        assert_eq!(b.recv().unwrap(), data(0, 1));
        assert_eq!(b.recv().unwrap(), grant(0));
        assert_eq!(b.recv().unwrap(), data(1, 2));
        assert_eq!(b.recv().unwrap(), grant(1));
        assert_eq!(b.recv().unwrap(), grant(2), "quantum-2 data was dropped");
    }

    #[test]
    fn injection_is_deterministic_across_runs() {
        fn run() -> (Vec<Packet>, FaultStats) {
            let (a, mut b) = ChannelTransport::pair();
            let plan = FaultPlan::random(0xC0FFEE, 8, 6);
            let mut faulty = FaultyTransport::new(a, plan);
            let mut delivered = Vec::new();
            for q in 0..8u64 {
                for i in 0..3u32 {
                    // rose-lint: allow(CAST001, test sequence arithmetic)
                    let _ = faulty.send(&data(q as u32 * 3 + i, i as u8));
                }
                let _ = faulty.send(&grant(q));
                let _ = faulty.reconnect();
                while let Ok(Some(p)) = b.try_recv() {
                    delivered.push(p);
                }
            }
            (delivered, *faulty.stats())
        }
        let (d1, s1) = run();
        let (d2, s2) = run();
        assert_eq!(d1, d2);
        assert_eq!(s1, s2);
        assert!(s1.total() > 0, "the random plan must actually inject");
    }

    #[test]
    fn snapshot_roundtrips_mid_window() {
        let (a, _b) = ChannelTransport::pair();
        let plan = FaultPlan::new(9)
            .with_event(0, FaultKind::Disconnect { ops: 5 })
            .with_event(0, FaultKind::Reorder);
        let mut faulty = FaultyTransport::new(a, plan.clone());
        // Burn two of the five failing ops and leave three pending.
        assert!(faulty.send(&data(0, 1)).is_err());
        assert!(faulty.recv().is_err());

        let mut w = SnapWriter::new();
        faulty.save_state(&mut w);
        let bytes = w.into_bytes();

        let (a2, _b2) = ChannelTransport::pair();
        let mut restored = FaultyTransport::new(a2, plan);
        let mut r = SnapReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.stats(), faulty.stats());
        assert_eq!(restored.quantum(), faulty.quantum());
        // The restored wrapper continues the same window: exactly three
        // more ops fail, then the link heals.
        let mut failures = 0;
        for _ in 0..10 {
            if restored.send(&data(9, 9)).is_err() {
                failures += 1;
            } else {
                break;
            }
        }
        assert_eq!(failures, 3);
    }

    #[test]
    fn restore_rejects_mismatched_plan() {
        let (a, _b) = ChannelTransport::pair();
        let faulty = FaultyTransport::new(a, FaultPlan::new(1).with_event(0, FaultKind::Drop));
        let mut w = SnapWriter::new();
        faulty.save_state(&mut w);
        let bytes = w.into_bytes();

        let (a2, _b2) = ChannelTransport::pair();
        let mut wrong = FaultyTransport::new(a2, FaultPlan::new(2));
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            wrong.restore_state(&mut r),
            Err(SnapError::BadSection { .. })
        ));
    }

    #[test]
    fn plan_serialization_roundtrips_every_kind() {
        let plan = FaultPlan::new(77)
            .with_event(0, FaultKind::Drop)
            .with_event(1, FaultKind::Duplicate)
            .with_event(2, FaultKind::Reorder)
            .with_event(3, FaultKind::Corrupt)
            .with_event(4, FaultKind::Stall { ops: 2 })
            .with_event(5, FaultKind::Disconnect { ops: 7 });
        let mut w = SnapWriter::new();
        plan.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = FaultPlan::restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn random_plans_are_sorted_and_seed_stable() {
        let p1 = FaultPlan::random(42, 100, 20);
        let p2 = FaultPlan::random(42, 100, 20);
        assert_eq!(p1, p2);
        assert!(p1
            .events()
            .windows(2)
            .all(|w| w[0].at_quantum <= w[1].at_quantum));
        assert_ne!(p1, FaultPlan::random(43, 100, 20));
    }
}
