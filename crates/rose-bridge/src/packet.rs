//! The RoSÉ wire protocol.
//!
//! "Packets consist of a header, containing the packet type and number of
//! bytes, as well as a payload containing the serialized contents of the
//! message" (Section 3.4.1). Two families exist:
//!
//! * **synchronization packets** ([`Packet::GrantCycles`],
//!   [`Packet::CyclesDone`], [`Packet::FramesDone`], [`Packet::Resync`],
//!   [`Packet::Shutdown`]) — simulator control, invisible to the modeled
//!   SoC;
//! * **data packets** ([`Packet::Data`]) — sensor and actuator payloads,
//!   the only packets exposed through the RoSÉ BRIDGE queues.
//!
//! Recovery additions (DESIGN.md §4h): data packets carry a sequence
//! number so either side can deduplicate retransmissions after a
//! reconnect; grants and completions carry the quantum index so a
//! re-delivered grant for an already-completed quantum is answered from
//! the server's retransmit buffer instead of re-running the RTL (which
//! would diverge the simulated state). [`Packet::Resync`] opens that
//! handshake: each side announces the next data sequence number it
//! expects and the last quantum it has completed.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Wire packet type tags.
const TAG_GRANT: u8 = 0x01;
const TAG_CYCLES_DONE: u8 = 0x02;
const TAG_FRAMES_DONE: u8 = 0x03;
const TAG_DATA: u8 = 0x04;
const TAG_SHUTDOWN: u8 = 0x05;
const TAG_RESYNC: u8 = 0x06;

/// Header length: 1 tag byte + 4 length bytes.
pub const HEADER_LEN: usize = 5;

/// Maximum accepted payload (prevents unbounded allocation on a corrupt
/// length field).
pub const MAX_PAYLOAD: usize = 16 << 20;

/// A protocol packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Sync: grant the RTL simulation `cycles` of execution
    /// (`set_firesim_steps` / `allocate_rtl_frames` in Algorithm 1).
    GrantCycles {
        /// Cycles granted for the coming synchronization period.
        cycles: u64,
        /// Index of the quantum this grant opens (0-based). A server that
        /// already completed this quantum retransmits its buffered results
        /// instead of re-running the grant.
        quantum: u64,
    },
    /// Sync: the RTL side reports it has consumed its grant.
    CyclesDone {
        /// Cycles actually executed.
        cycles: u64,
        /// Index of the quantum this completion closes.
        quantum: u64,
    },
    /// Sync: the environment side reports it finished its frames.
    FramesDone {
        /// Frames executed.
        frames: u64,
    },
    /// A data packet: serialized sensor/actuator message, opaque here.
    Data {
        /// Per-direction sequence number (each sender numbers its own
        /// stream from 0). Receivers drop `seq < expected` as
        /// retransmitted duplicates.
        seq: u32,
        /// The serialized message.
        payload: Vec<u8>,
    },
    /// Sync: orderly end of simulation.
    Shutdown,
    /// Sync: sequence-resync handshake after a reconnect. Each side sends
    /// one `Resync` announcing what it already holds; the peer then
    /// retransmits exactly the gap.
    Resync {
        /// The next data sequence number the sender expects to receive
        /// (everything below it has been delivered and processed).
        expect_rx: u32,
        /// The last quantum index the sender has fully completed, plus
        /// one; 0 when none has completed yet.
        quantum: u64,
    },
}

/// A packet decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not yet hold a complete packet (read more bytes).
    Incomplete,
    /// Unknown packet tag.
    BadTag(u8),
    /// Length field exceeds [`MAX_PAYLOAD`] or mismatches the tag.
    BadLength(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Incomplete => write!(f, "incomplete packet"),
            DecodeError::BadTag(t) => write!(f, "unknown packet tag {t:#04x}"),
            DecodeError::BadLength(n) => write!(f, "invalid payload length {n}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Packet {
    /// Serializes the packet into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            Packet::GrantCycles { cycles, quantum } => {
                buf.put_u8(TAG_GRANT);
                buf.put_u32_le(16);
                buf.put_u64_le(*cycles);
                buf.put_u64_le(*quantum);
            }
            Packet::CyclesDone { cycles, quantum } => {
                buf.put_u8(TAG_CYCLES_DONE);
                buf.put_u32_le(16);
                buf.put_u64_le(*cycles);
                buf.put_u64_le(*quantum);
            }
            Packet::FramesDone { frames } => {
                buf.put_u8(TAG_FRAMES_DONE);
                buf.put_u32_le(8);
                buf.put_u64_le(*frames);
            }
            Packet::Data { seq, payload } => {
                buf.put_u8(TAG_DATA);
                // rose-lint: allow(CAST001, payload length is bounded by MAX_PAYLOAD well below u32::MAX)
                buf.put_u32_le(4 + payload.len() as u32);
                buf.put_u32_le(*seq);
                buf.put_slice(payload);
            }
            Packet::Shutdown => {
                buf.put_u8(TAG_SHUTDOWN);
                buf.put_u32_le(0);
            }
            Packet::Resync { expect_rx, quantum } => {
                buf.put_u8(TAG_RESYNC);
                buf.put_u32_le(12);
                buf.put_u32_le(*expect_rx);
                buf.put_u64_le(*quantum);
            }
        }
    }

    /// Serializes to a standalone byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.to_vec()
    }

    /// Attempts to decode one packet from the front of `buf`, consuming it
    /// on success.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Incomplete`] if more bytes are needed (buffer is left
    /// untouched); [`DecodeError::BadTag`]/[`DecodeError::BadLength`] on
    /// corrupt input.
    pub fn decode(buf: &mut BytesMut) -> Result<Packet, DecodeError> {
        if buf.len() < HEADER_LEN {
            return Err(DecodeError::Incomplete);
        }
        let tag = buf[0];
        // rose-lint: allow(CAST001, u32 to usize widens on supported targets and len is bounds-checked on the next line)
        let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(DecodeError::BadLength(len));
        }
        let fixed = |expected: usize| {
            if len == expected {
                Ok(())
            } else {
                Err(DecodeError::BadLength(len))
            }
        };
        match tag {
            TAG_GRANT | TAG_CYCLES_DONE => fixed(16)?,
            TAG_FRAMES_DONE => fixed(8)?,
            TAG_RESYNC => fixed(12)?,
            TAG_SHUTDOWN => fixed(0)?,
            // A data packet carries at least its 4-byte sequence number.
            TAG_DATA if len < 4 => return Err(DecodeError::BadLength(len)),
            TAG_DATA => {}
            t => return Err(DecodeError::BadTag(t)),
        }
        if buf.len() < HEADER_LEN + len {
            return Err(DecodeError::Incomplete);
        }
        buf.advance(HEADER_LEN);
        let mut payload: Bytes = buf.split_to(len).freeze();
        Ok(match tag {
            TAG_GRANT => Packet::GrantCycles {
                cycles: payload.get_u64_le(),
                quantum: payload.get_u64_le(),
            },
            TAG_CYCLES_DONE => Packet::CyclesDone {
                cycles: payload.get_u64_le(),
                quantum: payload.get_u64_le(),
            },
            TAG_FRAMES_DONE => Packet::FramesDone {
                frames: payload.get_u64_le(),
            },
            TAG_DATA => Packet::Data {
                seq: payload.get_u32_le(),
                payload: payload.to_vec(),
            },
            TAG_SHUTDOWN => Packet::Shutdown,
            TAG_RESYNC => Packet::Resync {
                expect_rx: payload.get_u32_le(),
                quantum: payload.get_u64_le(),
            },
            // rose-lint: allow(PANIC001, the match above already rejected every tag outside this set via DecodeError::BadTag)
            _ => unreachable!("tag validated above"),
        })
    }

    /// True for synchronization packets (invisible to the modeled SoC).
    pub fn is_sync(&self) -> bool {
        !matches!(self, Packet::Data { .. })
    }

    /// The packet kind as a static label (protocol-error reporting).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Packet::GrantCycles { .. } => "GrantCycles",
            Packet::CyclesDone { .. } => "CyclesDone",
            Packet::FramesDone { .. } => "FramesDone",
            Packet::Data { .. } => "Data",
            Packet::Shutdown => "Shutdown",
            Packet::Resync { .. } => "Resync",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(pkt: Packet) {
        let mut buf = BytesMut::new();
        pkt.encode(&mut buf);
        let decoded = Packet::decode(&mut buf).expect("decode");
        assert_eq!(decoded, pkt);
        assert!(buf.is_empty(), "decode must consume the packet");
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(Packet::GrantCycles {
            cycles: 16_666_666,
            quantum: 0,
        });
        roundtrip(Packet::CyclesDone {
            cycles: 1,
            quantum: u64::MAX,
        });
        roundtrip(Packet::FramesDone { frames: 40 });
        roundtrip(Packet::Data {
            seq: 7,
            payload: vec![1, 2, 3, 4, 5],
        });
        roundtrip(Packet::Data {
            seq: u32::MAX,
            payload: vec![],
        });
        roundtrip(Packet::Shutdown);
        roundtrip(Packet::Resync {
            expect_rx: 42,
            quantum: 9,
        });
    }

    #[test]
    fn incomplete_buffers_wait_for_more() {
        let full = Packet::Data {
            seq: 3,
            payload: vec![7; 100],
        }
        .to_bytes();
        for cut in [0, 1, 4, HEADER_LEN, HEADER_LEN + 50] {
            let mut buf = BytesMut::from(&full[..cut]);
            assert_eq!(Packet::decode(&mut buf), Err(DecodeError::Incomplete));
            assert_eq!(buf.len(), cut, "incomplete decode must not consume");
        }
    }

    #[test]
    fn back_to_back_packets_stream() {
        let mut buf = BytesMut::new();
        Packet::GrantCycles {
            cycles: 5,
            quantum: 2,
        }
        .encode(&mut buf);
        Packet::Data {
            seq: 0,
            payload: vec![9, 9],
        }
        .encode(&mut buf);
        Packet::Shutdown.encode(&mut buf);
        assert_eq!(
            Packet::decode(&mut buf).unwrap(),
            Packet::GrantCycles {
                cycles: 5,
                quantum: 2
            }
        );
        assert_eq!(
            Packet::decode(&mut buf).unwrap(),
            Packet::Data {
                seq: 0,
                payload: vec![9, 9]
            }
        );
        assert_eq!(Packet::decode(&mut buf).unwrap(), Packet::Shutdown);
        assert_eq!(Packet::decode(&mut buf), Err(DecodeError::Incomplete));
    }

    #[test]
    fn corrupt_tag_rejected() {
        let mut raw = Packet::Shutdown.to_bytes();
        raw[0] = 0x7f;
        let mut buf = BytesMut::from(&raw[..]);
        assert_eq!(Packet::decode(&mut buf), Err(DecodeError::BadTag(0x7f)));
    }

    #[test]
    fn corrupt_length_rejected() {
        let mut raw = Packet::GrantCycles {
            cycles: 1,
            quantum: 0,
        }
        .to_bytes();
        raw[1] = 9; // length must be exactly 16
        let mut buf = BytesMut::from(&raw[..]);
        assert_eq!(Packet::decode(&mut buf), Err(DecodeError::BadLength(9)));
        // Oversized data payload length.
        let mut raw = Packet::Data {
            seq: 0,
            payload: vec![],
        }
        .to_bytes();
        raw[1..5].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut buf = BytesMut::from(&raw[..]);
        assert!(matches!(
            Packet::decode(&mut buf),
            Err(DecodeError::BadLength(_))
        ));
        // A data packet shorter than its sequence number is malformed —
        // it must be rejected, not decoded with garbage seq.
        let mut raw = Packet::Data {
            seq: 0,
            payload: vec![],
        }
        .to_bytes();
        raw[1..5].copy_from_slice(&3u32.to_le_bytes());
        let mut buf = BytesMut::from(&raw[..4 + 1]);
        assert_eq!(Packet::decode(&mut buf), Err(DecodeError::BadLength(3)));
        // Resync with a truncated length field.
        let mut raw = Packet::Resync {
            expect_rx: 1,
            quantum: 1,
        }
        .to_bytes();
        raw[1] = 4;
        let mut buf = BytesMut::from(&raw[..]);
        assert_eq!(Packet::decode(&mut buf), Err(DecodeError::BadLength(4)));
    }

    #[test]
    fn sync_vs_data_classification() {
        assert!(Packet::GrantCycles {
            cycles: 0,
            quantum: 0
        }
        .is_sync());
        assert!(Packet::Shutdown.is_sync());
        assert!(Packet::Resync {
            expect_rx: 0,
            quantum: 0
        }
        .is_sync());
        assert!(!Packet::Data {
            seq: 0,
            payload: vec![]
        }
        .is_sync());
    }

    #[test]
    fn kind_names_cover_every_variant() {
        assert_eq!(
            Packet::GrantCycles {
                cycles: 0,
                quantum: 0
            }
            .kind_name(),
            "GrantCycles"
        );
        assert_eq!(
            Packet::Resync {
                expect_rx: 0,
                quantum: 0
            }
            .kind_name(),
            "Resync"
        );
        assert_eq!(
            Packet::Data {
                seq: 0,
                payload: vec![]
            }
            .kind_name(),
            "Data"
        );
    }

    #[test]
    fn data_wire_length_includes_sequence_number() {
        let raw = Packet::Data {
            seq: 1,
            payload: vec![0xAA; 10],
        }
        .to_bytes();
        assert_eq!(raw.len(), HEADER_LEN + 4 + 10);
        let len = u32::from_le_bytes([raw[1], raw[2], raw[3], raw[4]]);
        assert_eq!(len, 14);
    }
}
