//! The lockstep synchronizer (Algorithm 1).
//!
//! "RoSÉ implements a lockstep synchronization method... A synchronization
//! period is defined between both simulators in terms of AirSim frames and
//! SoC clock cycles" (Section 3.4.1). The [`Synchronizer`] owns both
//! simulator endpoints through the [`EnvSide`] / [`RtlSide`] traits and
//! advances them one sync period at a time:
//!
//! 1. poll the RTL side for I/O data and translate each datum into
//!    environment API calls,
//! 2. forward the responses (and any unsolicited sensor data) to the RTL
//!    side's RX queue,
//! 3. allocate tokens: grant the RTL simulation its cycle budget and the
//!    environment its frames,
//! 4. wait for both to finish, and advance simulation time.
//!
//! Data crossing between simulators is therefore only visible at sync
//! boundaries — coarser synchronization induces artificial latency, the
//! effect measured in Figure 16.

use crate::packet::Packet;
use crate::transport::{Transport, TransportError};
use rose_sim_core::cycles::{Cycle, Frame, SimTime, SyncRatio};
use rose_sim_core::snap::{SnapError, SnapReader, SnapWriter};
use rose_trace::{
    ArgValue, LogHistogram, MetricRegistry, MetricSource, Phase, Profiler, Track, TraceEvent,
    Tracer,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The environment-simulator side of the co-simulation (AirSim's role).
pub trait EnvSide {
    /// Advances the environment by `frames` physics/render steps.
    fn step_frames(&mut self, frames: u64);

    /// Decodes one data payload from the SoC, performs the corresponding
    /// simulator API call, and returns any response payloads.
    fn handle_data(&mut self, payload: &[u8]) -> Vec<Vec<u8>>;

    /// Unsolicited data the environment wants to push this period
    /// (e.g. streamed sensors). Default: none.
    fn poll_data(&mut self) -> Vec<Vec<u8>> {
        Vec::new()
    }
}

/// The RTL-simulator side of the co-simulation (FireSim's role).
pub trait RtlSide {
    /// Grants `cycles` of execution and runs the simulation until the
    /// grant is consumed.
    fn grant_and_run(&mut self, cycles: u64);

    /// Enqueues a data payload into the SoC-bound bridge queue.
    fn push_data(&mut self, payload: Vec<u8>);

    /// Drains every payload the SoC produced.
    fn drain_tx(&mut self) -> Vec<Vec<u8>>;

    /// True once the target program has halted (ends the mission loop).
    fn halted(&self) -> bool {
        false
    }

    /// Takes the fault latched by the endpoint, if any.
    ///
    /// Endpoints that can fail mid-quantum (e.g. [`RemoteRtl`] losing its
    /// transport) latch the error, report [`halted`](RtlSide::halted) so
    /// the mission loop winds down, and surface the cause here. Default:
    /// the endpoint never faults.
    fn take_fault(&mut self) -> Option<TransportError> {
        None
    }

    /// Drains the wall time the endpoint spent recovering from transport
    /// faults since the last call (retries, reconnects, resyncs). The
    /// synchronizer attributes it to [`Phase::Recovery`], carved out of
    /// the grant it interrupted. Default: the endpoint never recovers.
    fn take_recovery_wall(&mut self) -> Duration {
        Duration::ZERO
    }

    /// Drains the wall time the endpoint spent evaluating timing models
    /// during the grants since the last call (kernel expansion,
    /// closed-form accelerator costing, timing-cache lookups). The
    /// synchronizer attributes it to [`Phase::CostModel`], carved out of
    /// the grant that triggered it. Default: no cost-model work.
    fn take_cost_model_wall(&mut self) -> Duration {
        Duration::ZERO
    }
}

/// Bounded-retry recovery configuration for [`RemoteRtl`].
///
/// A transient transport error ([`TransportError::is_transient`]) inside
/// a quantum is retried up to `max_retries` times before the endpoint
/// latches it. Each attempt accrues a deterministic backoff cost
/// (`backoff_base << attempt`, capped at `backoff_cap`) counted in
/// [`RecoveryStats::backoff_units`] — sim-deterministic bookkeeping of
/// how patient the policy was, independent of host scheduling. Disconnect
/// errors additionally trigger [`Transport::reconnect`] plus the
/// sequence-resync handshake before the retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Transient failures absorbed per quantum before latching.
    pub max_retries: u32,
    /// Backoff units charged for the first retry.
    pub backoff_base: u32,
    /// Ceiling on the per-retry backoff charge.
    pub backoff_cap: u32,
}

impl RecoveryPolicy {
    /// No recovery: the first error latches (the pre-recovery behavior).
    pub fn disabled() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 0,
            backoff_base: 1,
            backoff_cap: 1,
        }
    }

    /// The backoff charge for retry `attempt` (0-based), doubling from
    /// `backoff_base` up to `backoff_cap`.
    pub fn backoff_units(&self, attempt: u32) -> u64 {
        let shifted = u64::from(self.backoff_base) << attempt.min(32);
        shifted.min(u64::from(self.backoff_cap.max(1)))
    }
}

impl Default for RecoveryPolicy {
    /// Eight retries with 1→16 unit exponential backoff: comfortably
    /// outlasts any single bounded fault window while still latching a
    /// genuinely dead peer quickly.
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 8,
            backoff_base: 1,
            backoff_cap: 16,
        }
    }
}

/// Host-side recovery telemetry: how much absorbing faults cost. Like
/// the wall-time stats, this is excluded from snapshots and the
/// determinism digest (DESIGN.md §4f) — it describes the host's luck,
/// not the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Fault episodes fully absorbed (the quantum eventually completed).
    pub recovered: u64,
    /// Individual transient failures retried.
    pub retries: u64,
    /// Successful [`Transport::reconnect`] calls.
    pub reconnects: u64,
    /// Sequence-resync handshakes completed.
    pub resyncs: u64,
    /// Episodes that exhausted the policy and latched.
    pub exhausted: u64,
    /// Deterministic backoff charge accumulated across all retries.
    pub backoff_units: u64,
}

/// How the two simulators execute within one synchronization period.
///
/// Either way, data crosses only at sync boundaries: the exchange phase of
/// [`Synchronizer::step_sync`] runs single-threaded before any token is
/// granted, so the mode is unobservable to the simulated system — it only
/// changes wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncMode {
    /// Grant the RTL simulation, then step the environment, on one thread.
    Sequential,
    /// Run the RTL grant and the environment frames concurrently and join
    /// at the sync boundary, hiding the shorter side's latency behind the
    /// longer (the co-simulation analogue of the paper's decoupled
    /// simulator processes).
    Parallel,
}

/// Synchronization configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncConfig {
    /// The clock-domain ratio (Equation 1).
    pub ratio: SyncRatio,
    /// Environment frames per synchronization period (the granularity
    /// swept in Figures 15/16).
    pub frames_per_sync: u64,
    /// Intra-period execution mode.
    pub mode: SyncMode,
}

impl SyncConfig {
    /// Creates a config; `frames_per_sync` must be nonzero. The execution
    /// mode defaults to [`SyncMode::Parallel`].
    ///
    /// # Panics
    ///
    /// Panics if `frames_per_sync` is zero.
    pub fn new(ratio: SyncRatio, frames_per_sync: u64) -> SyncConfig {
        assert!(frames_per_sync > 0, "sync period must cover >= 1 frame");
        SyncConfig {
            ratio,
            frames_per_sync,
            mode: SyncMode::Parallel,
        }
    }

    /// Returns the config with a different execution mode.
    pub fn with_mode(mut self, mode: SyncMode) -> SyncConfig {
        self.mode = mode;
        self
    }

    /// Nominal SoC cycles per synchronization period (the period starting
    /// at frame 0). Periods later in the mission may be granted one cycle
    /// more or fewer so that the cycle timeline tracks the frame timeline
    /// exactly; see [`SyncRatio::cycles_for_span`].
    pub fn cycles_per_sync(&self) -> u64 {
        self.ratio.cycles_for_frames(self.frames_per_sync)
    }
}

impl Default for SyncConfig {
    /// 1 frame per sync at the default 1 GHz / 60 fps ratio (≈16.7M
    /// cycles), the fine-granularity end of Figure 15.
    fn default() -> SyncConfig {
        SyncConfig::new(SyncRatio::default(), 1)
    }
}

/// Synchronizer progress counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SyncStats {
    /// Synchronization periods completed.
    pub syncs: u64,
    /// Simulated SoC cycles.
    pub sim_cycles: u64,
    /// Simulated environment frames.
    pub sim_frames: u64,
    /// Data payloads delivered SoC → environment.
    pub data_to_env: u64,
    /// Data payloads delivered environment → SoC.
    pub data_to_rtl: u64,
    /// Wall-clock time spent inside `step_sync`.
    pub wall: Duration,
    /// Wall-clock time the environment spent stepping frames.
    pub env_wall: Duration,
    /// Wall-clock time the RTL simulation spent consuming cycle grants.
    pub rtl_wall: Duration,
    /// Wall-clock time of the token-consumption phase of each period (both
    /// sides together — equals `env_wall + rtl_wall` when sequential, the
    /// slower side plus join overhead when parallel).
    pub quantum_wall: Duration,
}

impl SyncStats {
    /// Co-simulation throughput in simulated cycles per wall second
    /// (Figure 15's y-axis).
    pub fn throughput_hz(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / secs
        }
    }

    /// Fraction of the cheaper side's work hidden behind the more
    /// expensive side: `(env_wall + rtl_wall - quantum_wall) /
    /// min(env_wall, rtl_wall)`.
    ///
    /// 1.0 means the shorter side was entirely overlapped (ideal parallel
    /// quantum); 0.0 means fully serial execution. Clamped to `[0, 1]`;
    /// returns 0.0 before any period has run (both the quantum wall and
    /// the shorter side are guarded — a division by a zero duration would
    /// yield NaN, and `f64::clamp` propagates NaN into the fig15 CSV).
    pub fn overlap_efficiency(&self) -> f64 {
        if self.quantum_wall.is_zero() {
            return 0.0;
        }
        let shorter = self.env_wall.min(self.rtl_wall).as_secs_f64();
        if shorter == 0.0 {
            return 0.0;
        }
        let hidden =
            (self.env_wall + self.rtl_wall).as_secs_f64() - self.quantum_wall.as_secs_f64();
        (hidden / shorter).clamp(0.0, 1.0)
    }
}

impl MetricSource for SyncStats {
    fn record_metrics(&self, registry: &mut MetricRegistry) {
        registry.set_counter("sync.syncs", self.syncs);
        registry.set_counter("sync.sim_cycles", self.sim_cycles);
        registry.set_counter("sync.sim_frames", self.sim_frames);
        registry.set_counter("sync.data_to_env", self.data_to_env);
        registry.set_counter("sync.data_to_rtl", self.data_to_rtl);
        registry.gauge("sync.wall_s", self.wall.as_secs_f64());
        registry.gauge("sync.env_wall_s", self.env_wall.as_secs_f64());
        registry.gauge("sync.rtl_wall_s", self.rtl_wall.as_secs_f64());
        registry.gauge("sync.quantum_wall_s", self.quantum_wall.as_secs_f64());
        registry.gauge("sync.throughput_hz", self.throughput_hz());
        registry.gauge("sync.overlap_efficiency", self.overlap_efficiency());
    }
}

/// Always-on per-quantum latency and queue-depth distributions.
///
/// Unlike the cumulative [`SyncStats`] durations, these keep the full
/// per-period shape (p50/p90/p99/p99.9 through [`LogHistogram`]). They
/// are host-side telemetry: excluded from mission snapshots and never an
/// input to the determinism digest, like the wall-time args on the
/// `sync-quantum` trace spans (DESIGN.md §4f).
#[derive(Debug, Clone, Default)]
pub struct SyncTelemetry {
    /// Host wall time of each full quantum (both sides), µs.
    pub quantum_wall_us: LogHistogram,
    /// Host wall time of each RTL cycle grant (the grant latency), µs.
    pub grant_latency_us: LogHistogram,
    /// Bridge inbound queue depth observed at each sync boundary (payloads
    /// drained from the RTL side during the exchange phase).
    pub queue_depth: LogHistogram,
}

impl MetricSource for SyncTelemetry {
    fn record_metrics(&self, registry: &mut MetricRegistry) {
        registry.record_histogram("sync.quantum_wall_us", &self.quantum_wall_us);
        registry.record_histogram("sync.grant_latency_us", &self.grant_latency_us);
        registry.record_histogram("bridge.queue_depth", &self.queue_depth);
    }
}

/// The lockstep synchronizer.
#[derive(Debug)]
pub struct Synchronizer<E, R> {
    env: E,
    rtl: R,
    config: SyncConfig,
    time: SimTime,
    stats: SyncStats,
    tracer: Tracer,
    telemetry: SyncTelemetry,
    profiler: Profiler,
}

impl<E: EnvSide, R: RtlSide> Synchronizer<E, R> {
    /// Creates a synchronizer owning both simulator endpoints.
    pub fn new(config: SyncConfig, env: E, rtl: R) -> Synchronizer<E, R> {
        Synchronizer {
            env,
            rtl,
            config,
            time: SimTime::ZERO,
            stats: SyncStats::default(),
            tracer: Tracer::disabled(),
            telemetry: SyncTelemetry::default(),
            profiler: Profiler::new(),
        }
    }

    /// Installs an event recorder; quantum boundaries, grants, and bridge
    /// packet crossings are traced from the next period on.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The synchronizer's tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Drains the synchronizer's recorded trace events.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.tracer.take_events()
    }

    /// The synchronization configuration.
    pub fn config(&self) -> &SyncConfig {
        &self.config
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Progress counters.
    pub fn stats(&self) -> &SyncStats {
        &self.stats
    }

    /// Always-on per-quantum latency/depth histograms.
    pub fn telemetry(&self) -> &SyncTelemetry {
        &self.telemetry
    }

    /// Host wall-time attribution accumulated so far.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The environment endpoint.
    pub fn env(&self) -> &E {
        &self.env
    }

    /// Mutable environment endpoint access (between sync periods).
    pub fn env_mut(&mut self) -> &mut E {
        &mut self.env
    }

    /// The RTL endpoint.
    pub fn rtl(&self) -> &R {
        &self.rtl
    }

    /// Mutable RTL endpoint access (between sync periods).
    pub fn rtl_mut(&mut self) -> &mut R {
        &mut self.rtl
    }

    /// Consumes the synchronizer, returning the endpoints.
    pub fn into_parts(self) -> (E, R) {
        (self.env, self.rtl)
    }

    /// Serializes the synchronizer's own position: the simulation clock,
    /// the deterministic progress counters, and the trace prefix.
    ///
    /// The endpoints serialize separately — the mission layer owns their
    /// concrete types. The next grant is a pure function of the frame
    /// counter ([`Synchronizer::next_grant`] sizes grants cumulatively), so
    /// `time` alone pins the synchronizer's position in the quantum
    /// schedule. Wall-clock durations, the telemetry histograms, and the
    /// profiler are host measurements, not simulated state: they are
    /// excluded and restart from zero on resume (DESIGN.md §4f).
    pub fn save_state(&self, w: &mut SnapWriter) {
        let Synchronizer {
            env: _,
            rtl: _,
            config: _,
            time,
            stats,
            tracer,
            telemetry: _,
            profiler: _,
        } = self;
        w.u64(time.cycle.raw());
        w.u64(time.frame.raw());
        let SyncStats {
            syncs,
            sim_cycles,
            sim_frames,
            data_to_env,
            data_to_rtl,
            wall: _,
            env_wall: _,
            rtl_wall: _,
            quantum_wall: _,
        } = stats;
        w.u64(*syncs);
        w.u64(*sim_cycles);
        w.u64(*sim_frames);
        w.u64(*data_to_env);
        w.u64(*data_to_rtl);
        tracer.save_state(w);
    }

    /// Restores the synchronizer's position. Wall-clock counters, the
    /// telemetry histograms, and the profiler reset.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.time = SimTime {
            cycle: Cycle(r.u64()?),
            frame: Frame(r.u64()?),
        };
        self.telemetry = SyncTelemetry::default();
        self.profiler = Profiler::new();
        self.stats = SyncStats::default();
        self.stats.syncs = r.u64()?;
        self.stats.sim_cycles = r.u64()?;
        self.stats.sim_frames = r.u64()?;
        self.stats.data_to_env = r.u64()?;
        self.stats.data_to_rtl = r.u64()?;
        self.tracer.restore_state(r)
    }

    /// The single-threaded exchange phase of Algorithm 1: translate I/O
    /// packets from the SoC into environment API calls, and queue the
    /// responses (plus any unsolicited sensor data) towards the SoC.
    ///
    /// This runs before any token is granted, so everything either side
    /// observes during the following quantum was committed at the sync
    /// boundary — the invariant that makes [`SyncMode::Parallel`]
    /// indistinguishable from [`SyncMode::Sequential`].
    fn exchange(&mut self) {
        let boundary = self.time.cycle.raw();
        let drained = self.rtl.drain_tx();
        // rose-lint: allow(CAST001, usize -> u64 queue length widens on every supported target)
        self.telemetry.queue_depth.record_u64(drained.len() as u64);
        for datum in drained {
            self.stats.data_to_env += 1;
            self.trace_packet(boundary, "to-env", datum.len());
            for response in self.env.handle_data(&datum) {
                self.stats.data_to_rtl += 1;
                self.trace_packet(boundary, "to-rtl", response.len());
                self.rtl.push_data(response);
            }
        }
        for datum in self.env.poll_data() {
            self.stats.data_to_rtl += 1;
            self.trace_packet(boundary, "to-rtl", datum.len());
            self.rtl.push_data(datum);
        }
    }

    /// Records one bridge packet crossing at the sync boundary.
    fn trace_packet(&mut self, boundary: u64, dir: &'static str, bytes: usize) {
        if self.tracer.is_enabled() {
            self.tracer.instant_cycles(
                Track::Bridge,
                "bridge-packet",
                boundary,
                vec![
                    ("dir", ArgValue::Str(dir)),
                    // rose-lint: allow(CAST001, usize payload length widens into u64 on every supported target)
                    ("bytes", ArgValue::U64(bytes as u64)),
                ],
            );
        }
    }

    /// Records the period's grant and quantum span (called before the
    /// clock advances, so `self.time` is still the period start).
    fn trace_quantum(
        &mut self,
        cycles: u64,
        frames: u64,
        env_wall: Duration,
        rtl_wall: Duration,
        quantum_wall: Duration,
    ) {
        if !self.tracer.is_enabled() {
            return;
        }
        let start = self.time.cycle.raw();
        self.tracer.instant_cycles(
            Track::Sync,
            "sync-grant",
            start,
            vec![
                ("cycles", ArgValue::U64(cycles)),
                ("frames", ArgValue::U64(frames)),
            ],
        );
        self.tracer.complete_cycles(
            Track::Sync,
            "sync-quantum",
            start,
            start + cycles,
            vec![
                ("cycles", ArgValue::U64(cycles)),
                ("frames", ArgValue::U64(frames)),
                ("env_wall_us", ArgValue::F64(env_wall.as_secs_f64() * 1e6)),
                ("rtl_wall_us", ArgValue::F64(rtl_wall.as_secs_f64() * 1e6)),
                (
                    "quantum_wall_us",
                    ArgValue::F64(quantum_wall.as_secs_f64() * 1e6),
                ),
            ],
        );
    }

    /// The cycle grant for the period starting at the current frame,
    /// sized cumulatively so no drift accumulates (Equation 1, exact).
    fn next_grant(&self) -> (u64, u64) {
        let frames = self.config.frames_per_sync;
        let start = self.time.frame.raw();
        let cycles = self.config.ratio.cycles_for_span(start, start + frames);
        (cycles, frames)
    }

    fn finish_period(&mut self, cycles: u64, frames: u64, started: Instant) {
        self.time.advance(frames, cycles);
        self.stats.syncs += 1;
        self.stats.sim_cycles += cycles;
        self.stats.sim_frames += frames;
        self.stats.wall += started.elapsed();
    }

    /// Executes one synchronization period on the calling thread,
    /// regardless of the configured [`SyncMode`]. Available for endpoints
    /// that are not [`Send`]; prefer [`step_sync`](Synchronizer::step_sync).
    pub fn step_sync_sequential(&mut self) {
        let started = Instant::now();
        self.exchange();
        self.profiler.add(Phase::Transport, started.elapsed());
        let (cycles, frames) = self.next_grant();

        let quantum_started = Instant::now();
        self.rtl.grant_and_run(cycles);
        let rtl_done = Instant::now();
        self.env.step_frames(frames);
        let env_done = Instant::now();
        self.stats.rtl_wall += rtl_done - quantum_started;
        self.stats.env_wall += env_done - rtl_done;
        self.stats.quantum_wall += env_done - quantum_started;
        let recovery = self.rtl.take_recovery_wall();
        let cost_model = self.rtl.take_cost_model_wall();
        self.profiler.add(
            Phase::RtlGrant,
            (rtl_done - quantum_started)
                .saturating_sub(recovery)
                .saturating_sub(cost_model),
        );
        if !recovery.is_zero() {
            self.profiler.add(Phase::Recovery, recovery);
        }
        if !cost_model.is_zero() {
            self.profiler.add(Phase::CostModel, cost_model);
        }
        self.profiler.add(Phase::EnvStep, env_done - rtl_done);
        self.observe_quantum(rtl_done - quantum_started, env_done - quantum_started);
        let trace_started = Instant::now();
        self.trace_quantum(
            cycles,
            frames,
            env_done - rtl_done,
            rtl_done - quantum_started,
            env_done - quantum_started,
        );
        self.profiler.add(Phase::TraceOverhead, trace_started.elapsed());

        self.finish_period(cycles, frames, started);
    }

    /// Feeds the period's wall measurements into the always-on histograms.
    fn observe_quantum(&mut self, rtl_wall: Duration, quantum_wall: Duration) {
        self.telemetry
            .grant_latency_us
            .record(rtl_wall.as_secs_f64() * 1e6);
        self.telemetry
            .quantum_wall_us
            .record(quantum_wall.as_secs_f64() * 1e6);
    }
}

/// Driving methods. The RTL grant runs on a scoped worker thread when the
/// mode is [`SyncMode::Parallel`], hence the [`Send`] bound; the
/// environment always steps on the calling thread, so `E` needs none.
impl<E: EnvSide, R: RtlSide + Send> Synchronizer<E, R> {
    /// Executes one synchronization period (the body of Algorithm 1).
    ///
    /// With [`SyncMode::Parallel`], the RTL cycle grant and the
    /// environment frames run concurrently and join before time advances;
    /// the preceding exchange phase is single-threaded either way, so data
    /// still crosses only at sync boundaries.
    pub fn step_sync(&mut self) {
        match self.config.mode {
            SyncMode::Sequential => self.step_sync_sequential(),
            SyncMode::Parallel => self.step_sync_parallel(),
        }
    }

    fn step_sync_parallel(&mut self) {
        let started = Instant::now();
        self.exchange();
        self.profiler.add(Phase::Transport, started.elapsed());
        let (cycles, frames) = self.next_grant();

        let quantum_started = Instant::now();
        let rtl = &mut self.rtl;
        let env = &mut self.env;
        let (env_wall, rtl_wall) = std::thread::scope(|scope| {
            let worker = scope.spawn(move || {
                let t0 = Instant::now();
                rtl.grant_and_run(cycles);
                t0.elapsed()
            });
            let t0 = Instant::now();
            env.step_frames(frames);
            let env_wall = t0.elapsed();
            // A panicking RTL endpoint re-raises its own payload on the
            // driving thread rather than a second, less informative panic
            // from expect() (PANIC001: no new panic sites in the quantum).
            let rtl_wall = worker
                .join()
                .unwrap_or_else(|cause| std::panic::resume_unwind(cause));
            (env_wall, rtl_wall)
        });
        let quantum_wall = quantum_started.elapsed();
        self.stats.env_wall += env_wall;
        self.stats.rtl_wall += rtl_wall;
        self.stats.quantum_wall += quantum_wall;
        let recovery = self.rtl.take_recovery_wall();
        let cost_model = self.rtl.take_cost_model_wall();
        self.profiler.add(
            Phase::RtlGrant,
            rtl_wall.saturating_sub(recovery).saturating_sub(cost_model),
        );
        if !recovery.is_zero() {
            self.profiler.add(Phase::Recovery, recovery);
        }
        if !cost_model.is_zero() {
            self.profiler.add(Phase::CostModel, cost_model);
        }
        self.profiler.add(Phase::EnvStep, env_wall);
        self.observe_quantum(rtl_wall, quantum_wall);
        let trace_started = Instant::now();
        self.trace_quantum(cycles, frames, env_wall, rtl_wall, quantum_wall);
        self.profiler.add(Phase::TraceOverhead, trace_started.elapsed());

        self.finish_period(cycles, frames, started);
    }

    /// Runs `n` synchronization periods.
    pub fn run_syncs(&mut self, n: u64) {
        for _ in 0..n {
            self.step_sync();
        }
    }

    /// Runs until `done(env, time)` returns true, the RTL program halts, or
    /// `max_syncs` elapse. Returns the number of periods executed.
    ///
    /// A transport fault on the RTL side reports as a halt; callers that
    /// need to distinguish an orderly halt from a fault should use
    /// [`try_run_until`](Synchronizer::try_run_until).
    pub fn run_until(
        &mut self,
        max_syncs: u64,
        mut done: impl FnMut(&E, SimTime) -> bool,
    ) -> u64 {
        let mut executed = 0;
        while executed < max_syncs && !self.rtl.halted() && !done(&self.env, self.time) {
            self.step_sync();
            executed += 1;
        }
        executed
    }

    /// Like [`run_until`](Synchronizer::run_until), but surfaces a fault
    /// the RTL endpoint latched (e.g. the remote simulator's transport
    /// dying mid-mission) instead of folding it into an orderly halt.
    ///
    /// # Errors
    ///
    /// The latched [`TransportError`], with the synchronizer left in a
    /// consistent state at the last completed sync boundary.
    pub fn try_run_until(
        &mut self,
        max_syncs: u64,
        done: impl FnMut(&E, SimTime) -> bool,
    ) -> Result<u64, TransportError> {
        let executed = self.run_until(max_syncs, done);
        match self.rtl.take_fault() {
            Some(fault) => Err(fault),
            None => Ok(executed),
        }
    }
}

/// An [`RtlSide`] living behind a packet transport (the paper's TCP
/// deployment: the synchronizer drives a remote FireSim instance).
///
/// Since the recovery work (DESIGN.md §4h) this endpoint speaks the
/// sequenced protocol: every outbound data payload carries a sequence
/// number and stays buffered until the quantum's `CyclesDone` acknowledges
/// it, inbound data is deduplicated by sequence number, and transient
/// transport errors are absorbed by a [`RecoveryPolicy`] (retry →
/// reconnect → resync) instead of latching immediately.
#[derive(Debug)]
pub struct RemoteRtl<T> {
    transport: T,
    policy: RecoveryPolicy,
    /// Payloads to deliver with the next grant.
    outbox: Vec<Vec<u8>>,
    /// Payloads received from the remote SoC.
    inbox: Vec<Vec<u8>>,
    /// Sequence number for the next outbound data packet.
    next_tx_seq: u32,
    /// Next inbound data sequence number expected (dedupe floor).
    expect_rx: u32,
    /// Index of the quantum the next grant opens.
    quantum: u64,
    /// This quantum's outbound data, kept for retransmission until the
    /// `CyclesDone` acknowledgment clears it.
    unacked: Vec<(u32, Vec<u8>)>,
    halted: bool,
    /// First transport failure, latched until taken.
    fault: Option<TransportError>,
    /// True when `halted` was latched by a transport fault rather than an
    /// orderly remote shutdown. Outlives `take_fault` so a snapshot taken
    /// after the fault was surfaced still knows the halt is host-side
    /// (and must not persist into a resume).
    fault_halt: bool,
    /// Host-side recovery telemetry (never snapshotted or digested).
    recovery: RecoveryStats,
    /// Wall time spent in recovery since the synchronizer last drained it.
    recovery_wall: Duration,
}

impl<T: Transport> RemoteRtl<T> {
    /// Wraps a connected transport with the default [`RecoveryPolicy`].
    pub fn new(transport: T) -> RemoteRtl<T> {
        RemoteRtl::with_policy(transport, RecoveryPolicy::default())
    }

    /// Wraps a connected transport with an explicit recovery policy.
    pub fn with_policy(transport: T, policy: RecoveryPolicy) -> RemoteRtl<T> {
        RemoteRtl {
            transport,
            policy,
            outbox: Vec::new(),
            inbox: Vec::new(),
            next_tx_seq: 0,
            expect_rx: 0,
            quantum: 0,
            unacked: Vec::new(),
            halted: false,
            fault: None,
            fault_halt: false,
            recovery: RecoveryStats::default(),
            recovery_wall: Duration::ZERO,
        }
    }

    /// The latched transport fault, if the remote side has failed.
    pub fn fault(&self) -> Option<&TransportError> {
        self.fault.as_ref()
    }

    /// The recovery policy in force.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// The wrapped transport (for reading decorator telemetry such as
    /// [`FaultStats`](crate::faults::FaultStats) before shutdown).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Host-side recovery telemetry accumulated so far.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Payloads queued towards the remote SoC but not yet sent (bridge TX
    /// occupancy from the synchronizer's point of view). After a fault this
    /// still counts payloads whose send never succeeded, so
    /// `data_to_rtl == delivered + pending_tx()` stays consistent.
    pub fn pending_tx(&self) -> usize {
        self.outbox.len()
    }

    /// Payloads received from the remote SoC awaiting `drain_tx`.
    pub fn pending_rx(&self) -> usize {
        self.inbox.len()
    }

    /// Records a transport failure: the endpoint reports halted so the
    /// mission loop winds down at the next sync boundary, and the error is
    /// surfaced through [`RtlSide::take_fault`]. Only the first fault is
    /// kept — later errors are consequences of the same dead peer.
    fn latch_fault(&mut self, error: TransportError) {
        self.halted = true;
        self.fault_halt = true;
        if self.fault.is_none() {
            self.fault = Some(error);
        }
    }

    /// Serializes the endpoint's queue occupancy and halt latch.
    ///
    /// Both directions' pending payloads round-trip: a resumed mission must
    /// re-send exactly the packets the straight run would have sent (the
    /// occupancy invariant `data_to_rtl == delivered + pending_tx()`). The
    /// latched fault is deliberately *not* serialized — it names a dead
    /// host-side transport, which is meaningless to the fresh transport a
    /// resume attaches. A halt that the fault latched (as opposed to an
    /// orderly remote shutdown) is likewise host-side: it is not persisted,
    /// so resuming onto a live transport continues the mission from the
    /// last completed sync boundary.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let RemoteRtl {
            transport: _,
            policy: _,
            outbox,
            inbox,
            next_tx_seq,
            expect_rx,
            quantum,
            unacked,
            halted,
            fault: _,
            fault_halt,
            recovery: _,
            recovery_wall: _,
        } = self;
        w.usize(outbox.len());
        for payload in outbox {
            w.bytes(payload);
        }
        w.usize(inbox.len());
        for payload in inbox {
            w.bytes(payload);
        }
        w.bool(*halted && !fault_halt);
        w.u32(*next_tx_seq);
        w.u32(*expect_rx);
        w.u64(*quantum);
        w.usize(unacked.len());
        for (seq, payload) in unacked {
            w.u32(*seq);
            w.bytes(payload);
        }
    }

    /// Restores queue occupancy, the sequencing position, and the halt
    /// latch onto this endpoint's (fresh) transport. Any latched fault is
    /// cleared; the recovery telemetry resets (host-side).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n_out = r.usize()?;
        self.outbox.clear();
        for _ in 0..n_out {
            self.outbox.push(r.bytes()?);
        }
        let n_in = r.usize()?;
        self.inbox.clear();
        for _ in 0..n_in {
            self.inbox.push(r.bytes()?);
        }
        self.halted = r.bool()?;
        self.next_tx_seq = r.u32()?;
        self.expect_rx = r.u32()?;
        self.quantum = r.u64()?;
        let n_unacked = r.usize()?;
        self.unacked.clear();
        for _ in 0..n_unacked {
            let seq = r.u32()?;
            self.unacked.push((seq, r.bytes()?));
        }
        self.fault = None;
        self.fault_halt = false;
        self.recovery = RecoveryStats::default();
        self.recovery_wall = Duration::ZERO;
        Ok(())
    }

    /// Sends an orderly shutdown to the remote server.
    ///
    /// # Errors
    ///
    /// The latched fault if the session already failed, or any error from
    /// sending the shutdown packet.
    pub fn shutdown(mut self) -> Result<(), TransportError> {
        if let Some(fault) = self.fault.take() {
            return Err(fault);
        }
        self.transport.send(&Packet::Shutdown)
    }

    /// Moves queued payloads into the retransmit buffer, assigning
    /// sequence numbers. Staged payloads stay buffered (and are re-sent on
    /// every retry — the server deduplicates) until the quantum's
    /// `CyclesDone` acknowledges them.
    fn stage_outbox(&mut self) {
        for payload in self.outbox.drain(..) {
            self.unacked.push((self.next_tx_seq, payload));
            self.next_tx_seq = self.next_tx_seq.wrapping_add(1);
        }
    }

    /// One attempt at the current quantum: (re)transmit buffered data,
    /// send the grant, and wait for the completion. Safe to repeat — the
    /// server deduplicates data by sequence number and answers a repeated
    /// grant from its retransmit buffer without re-running the RTL.
    fn try_quantum(&mut self, cycles: u64) -> Result<QuantumOutcome, TransportError> {
        for (seq, payload) in &self.unacked {
            self.transport.send(&Packet::Data {
                seq: *seq,
                payload: payload.clone(),
            })?;
        }
        self.transport.send(&Packet::GrantCycles {
            cycles,
            quantum: self.quantum,
        })?;
        // Wait for completion, collecting data the SoC emitted. A packet
        // the protocol does not accept here latches a fault like any other
        // transport failure — the peer is confused or hostile either way,
        // and a panic would tear down the whole co-simulation instead of
        // winding the mission down at the next sync boundary.
        loop {
            match self.transport.recv()? {
                Packet::Data { seq, payload } => {
                    if seq >= self.expect_rx {
                        self.inbox.push(payload);
                        self.expect_rx = seq.wrapping_add(1);
                    }
                    // seq < expect_rx: a retransmitted duplicate — drop.
                }
                Packet::CyclesDone { quantum, .. } => {
                    if quantum == self.quantum {
                        return Ok(QuantumOutcome::Done);
                    }
                    if quantum > self.quantum {
                        return Err(TransportError::Protocol {
                            got: "CyclesDone",
                            at: "synchronizer",
                        });
                    }
                    // Stale completion retransmitted for an earlier
                    // quantum — ignore and keep waiting.
                }
                Packet::Shutdown => return Ok(QuantumOutcome::Halted),
                Packet::Resync { .. } => {
                    // Leftover reply from a handshake a retry repeated —
                    // stale, ignore.
                }
                other => {
                    return Err(TransportError::Protocol {
                        got: other.kind_name(),
                        at: "synchronizer",
                    })
                }
            }
        }
    }

    /// The sequence-resync handshake: announce what this side holds, wait
    /// for the server's counterpart announcement, and prune the
    /// retransmit buffer down to what the server has not yet seen. Data
    /// and stale completions already in flight are absorbed along the
    /// way.
    fn resync(&mut self) -> Result<(), TransportError> {
        self.transport.send(&Packet::Resync {
            expect_rx: self.expect_rx,
            quantum: self.quantum,
        })?;
        loop {
            match self.transport.recv()? {
                Packet::Resync {
                    expect_rx: peer_expect,
                    quantum: _,
                } => {
                    self.unacked.retain(|(seq, _)| *seq >= peer_expect);
                    return Ok(());
                }
                Packet::Data { seq, payload } => {
                    if seq >= self.expect_rx {
                        self.inbox.push(payload);
                        self.expect_rx = seq.wrapping_add(1);
                    }
                }
                Packet::CyclesDone { .. } => {}
                Packet::Shutdown => {
                    self.halted = true;
                    return Ok(());
                }
                other => {
                    return Err(TransportError::Protocol {
                        got: other.kind_name(),
                        at: "synchronizer",
                    })
                }
            }
        }
    }

    /// The recovery ladder for one transient error: charge the
    /// deterministic backoff, and on a disconnect attempt reconnect +
    /// resync. Failures inside the ladder are absorbed — they consume the
    /// attempt and the outer retry loop decides whether to go again.
    fn recover(&mut self, error: &TransportError, attempt: u32) {
        self.recovery.retries += 1;
        self.recovery.backoff_units += self.policy.backoff_units(attempt);
        if matches!(error, TransportError::Disconnected) && self.transport.reconnect().is_ok() {
            self.recovery.reconnects += 1;
            if self.resync().is_ok() {
                self.recovery.resyncs += 1;
            }
        }
    }
}

/// Outcome of one completed quantum attempt.
enum QuantumOutcome {
    /// The completion arrived.
    Done,
    /// The server shut down mid-quantum.
    Halted,
}

impl<T: Transport> RtlSide for RemoteRtl<T> {
    fn grant_and_run(&mut self, cycles: u64) {
        if self.halted {
            return;
        }
        self.stage_outbox();
        let mut attempt = 0u32;
        let mut episode: Option<Instant> = None;
        loop {
            match self.try_quantum(cycles) {
                Ok(outcome) => {
                    self.quantum += 1;
                    self.unacked.clear();
                    if matches!(outcome, QuantumOutcome::Halted) {
                        self.halted = true;
                    }
                    if let Some(t0) = episode {
                        self.recovery_wall += t0.elapsed();
                        self.recovery.recovered += 1;
                    }
                    return;
                }
                Err(e) => {
                    let t0 = *episode.get_or_insert_with(Instant::now);
                    if !e.is_transient() || attempt >= self.policy.max_retries {
                        self.recovery.exhausted += 1;
                        self.recovery_wall += t0.elapsed();
                        // Return staged payloads to the outbox front so
                        // the occupancy counters stay consistent
                        // (`data_to_rtl == delivered + pending_tx()`).
                        let mut requeue: Vec<Vec<u8>> =
                            self.unacked.drain(..).map(|(_, p)| p).collect();
                        requeue.append(&mut self.outbox);
                        self.outbox = requeue;
                        self.latch_fault(e);
                        return;
                    }
                    self.recover(&e, attempt);
                    attempt += 1;
                }
            }
        }
    }

    fn push_data(&mut self, payload: Vec<u8>) {
        self.outbox.push(payload);
    }

    fn drain_tx(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.inbox)
    }

    fn halted(&self) -> bool {
        self.halted
    }

    fn take_fault(&mut self) -> Option<TransportError> {
        self.fault.take()
    }

    fn take_recovery_wall(&mut self) -> Duration {
        std::mem::take(&mut self.recovery_wall)
    }
}

/// Serves a local [`RtlSide`] implementation over a transport: the
/// counterpart of [`RemoteRtl`], running next to the RTL simulation (the
/// bridge-driver process in the paper's deployment).
///
/// Processes grants until a [`Packet::Shutdown`] arrives or the transport
/// disconnects. The server speaks the sequenced recovery protocol
/// (DESIGN.md §4h):
///
/// * inbound data is deduplicated by sequence number, so a synchronizer
///   retrying a quantum can blindly retransmit;
/// * grants are idempotent — a repeated grant for the just-completed
///   quantum is answered from the retransmit buffer *without* re-running
///   the RTL (re-running would diverge the simulated state);
/// * a [`Packet::Resync`] is answered with the server's own position and
///   a retransmission of whatever completed-quantum data the client has
///   not acknowledged seeing.
///
/// # Errors
///
/// Returns the first transport error other than an orderly disconnect,
/// including [`TransportError::Protocol`] when the client sends a packet
/// the server role does not accept (the server must never panic on peer
/// input — it is the long-lived process next to the RTL simulation).
/// A [`TransportError::Disconnected`] is an orderly end of session no
/// matter which half of the exchange observes it first: a `recv` after
/// the client is gone, or a `send` racing the synchronizer's wind-down
/// drop after a latched fault.
pub fn serve_rtl<T: Transport, R: RtlSide>(
    transport: &mut T,
    rtl: &mut R,
) -> Result<(), TransportError> {
    match serve_rtl_inner(transport, rtl) {
        Err(TransportError::Disconnected) => Ok(()),
        other => other,
    }
}

fn serve_rtl_inner<T: Transport, R: RtlSide>(
    transport: &mut T,
    rtl: &mut R,
) -> Result<(), TransportError> {
    // Next inbound data sequence expected (the dedupe floor). A gap means
    // the link lost a packet in flight; the payload is gone, which the
    // application layer absorbs — the floor jumps forward so later data
    // still flows.
    let mut expect_rx: u32 = 0;
    // Sequence numbering for server → synchronizer data.
    let mut next_tx_seq: u32 = 0;
    // Quanta completed so far == the quantum index the next fresh grant
    // must carry.
    let mut completed: u64 = 0;
    // The last completed quantum's results, buffered for retransmission
    // until the next fresh grant implicitly acknowledges them.
    let mut last_results: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut last_cycles: u64 = 0;
    loop {
        match transport.recv() {
            Ok(Packet::Data { seq, payload }) => {
                if seq >= expect_rx {
                    rtl.push_data(payload);
                    expect_rx = seq.wrapping_add(1);
                }
                // seq < expect_rx: retransmitted duplicate — drop.
            }
            Ok(Packet::GrantCycles { cycles, quantum }) => {
                if quantum.wrapping_add(1) == completed {
                    // Re-delivered grant for the quantum just completed:
                    // answer from the buffer, do NOT re-run the RTL.
                    for (seq, payload) in &last_results {
                        transport.send(&Packet::Data {
                            seq: *seq,
                            payload: payload.clone(),
                        })?;
                    }
                    transport.send(&Packet::CyclesDone {
                        cycles: last_cycles,
                        quantum,
                    })?;
                } else if quantum == completed {
                    rtl.grant_and_run(cycles);
                    last_results.clear();
                    for payload in rtl.drain_tx() {
                        last_results.push((next_tx_seq, payload));
                        next_tx_seq = next_tx_seq.wrapping_add(1);
                    }
                    for (seq, payload) in &last_results {
                        transport.send(&Packet::Data {
                            seq: *seq,
                            payload: payload.clone(),
                        })?;
                    }
                    last_cycles = cycles;
                    transport.send(&Packet::CyclesDone { cycles, quantum })?;
                    completed += 1;
                } else {
                    // A grant from the far past (results no longer
                    // buffered) or the future (the client skipped ahead):
                    // the session cannot converge.
                    return Err(TransportError::Protocol {
                        got: "GrantCycles",
                        at: "RTL server",
                    });
                }
            }
            Ok(Packet::Resync {
                expect_rx: peer_expect,
                quantum: _,
            }) => {
                transport.send(&Packet::Resync {
                    expect_rx,
                    quantum: completed,
                })?;
                for (seq, payload) in &last_results {
                    if *seq >= peer_expect {
                        transport.send(&Packet::Data {
                            seq: *seq,
                            payload: payload.clone(),
                        })?;
                    }
                }
            }
            Ok(Packet::Shutdown) => return Ok(()),
            Ok(other) => {
                return Err(TransportError::Protocol {
                    got: other.kind_name(),
                    at: "RTL server",
                })
            }
            Err(TransportError::Disconnected) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use rose_sim_core::cycles::{ClockSpec, FrameSpec};
    use std::thread;

    /// Echo environment: replies to each datum with the same bytes + 1,
    /// logging every payload it handles in order.
    #[derive(Default)]
    struct EchoEnv {
        frames: u64,
        handled: u64,
        seen: Vec<Vec<u8>>,
    }

    impl EnvSide for EchoEnv {
        fn step_frames(&mut self, frames: u64) {
            self.frames += frames;
        }

        fn handle_data(&mut self, payload: &[u8]) -> Vec<Vec<u8>> {
            self.handled += 1;
            self.seen.push(payload.to_vec());
            vec![payload.iter().map(|b| b.wrapping_add(1)).collect()]
        }
    }

    /// Loopback RTL: every pushed payload is emitted back on the next
    /// quantum; counts granted cycles and logs every received payload.
    #[derive(Default)]
    struct LoopRtl {
        cycles: u64,
        rx: Vec<Vec<u8>>,
        tx: Vec<Vec<u8>>,
        received: Vec<Vec<u8>>,
    }

    impl RtlSide for LoopRtl {
        fn grant_and_run(&mut self, cycles: u64) {
            self.cycles += cycles;
            self.tx.append(&mut self.rx);
        }

        fn push_data(&mut self, payload: Vec<u8>) {
            self.received.push(payload.clone());
            self.rx.push(payload);
        }

        fn drain_tx(&mut self) -> Vec<Vec<u8>> {
            std::mem::take(&mut self.tx)
        }
    }

    fn config(frames_per_sync: u64) -> SyncConfig {
        SyncConfig::new(
            SyncRatio::new(ClockSpec::from_hz(600), FrameSpec::from_hz(60)),
            frames_per_sync,
        )
    }

    #[test]
    fn lockstep_advances_both_domains() {
        let mut sync = Synchronizer::new(config(2), EchoEnv::default(), LoopRtl::default());
        sync.run_syncs(5);
        assert_eq!(sync.env().frames, 10);
        assert_eq!(sync.rtl().cycles, 5 * 2 * 10); // 10 cycles/frame
        assert_eq!(sync.time().frame.raw(), 10);
        assert_eq!(sync.time().cycle.raw(), 100);
        assert_eq!(sync.stats().syncs, 5);
    }

    #[test]
    fn data_crosses_at_sync_boundaries() {
        let mut sync = Synchronizer::new(config(1), EchoEnv::default(), LoopRtl::default());
        // Seed a message in the RTL TX path.
        sync.rtl_mut().tx.push(vec![1, 2, 3]);
        sync.step_sync();
        // Sync 1: message went to env, echo (+1) queued into RTL rx and
        // emitted into tx by the same grant.
        assert_eq!(sync.env().handled, 1);
        sync.step_sync();
        // Sync 2: echoed message [2,3,4] reached the env and re-echoed.
        assert_eq!(sync.env().handled, 2);
        assert_eq!(sync.stats().data_to_env, 2);
        assert_eq!(sync.stats().data_to_rtl, 2);
    }

    #[test]
    fn run_until_predicate_stops() {
        let mut sync = Synchronizer::new(config(1), EchoEnv::default(), LoopRtl::default());
        let executed = sync.run_until(100, |env, _| env.frames >= 7);
        assert_eq!(executed, 7);
        assert_eq!(sync.env().frames, 7);
    }

    #[test]
    fn equation_1_cycles_per_sync() {
        let cfg = SyncConfig::new(
            SyncRatio::new(ClockSpec::from_hz(1_000_000_000), FrameSpec::from_hz(60)),
            1,
        );
        assert_eq!(cfg.cycles_per_sync(), 16_666_666);
        // Exact, not 40 * 16_666_666 = 666_666_640: the coarse period is
        // sized so its grants carry the fractional cycles every frame
        // would otherwise drop.
        let coarse = SyncConfig::new(cfg.ratio, 40);
        assert_eq!(coarse.cycles_per_sync(), 666_666_666);
    }

    /// Acceptance criterion for the drift fix: at 1 GHz / 60 fps the cycle
    /// timeline must stay within one frame's worth of cycles of the frame
    /// timeline over >= 10^4 sync periods, for every sync granularity.
    #[test]
    fn grants_do_not_drift_over_many_periods() {
        let ratio = SyncRatio::new(ClockSpec::from_hz(1_000_000_000), FrameSpec::from_hz(60));
        for frames_per_sync in [1u64, 10, 40] {
            let cfg = SyncConfig::new(ratio, frames_per_sync).with_mode(SyncMode::Sequential);
            let mut sync = Synchronizer::new(cfg, EchoEnv::default(), LoopRtl::default());
            sync.run_syncs(10_000);

            let frames = sync.time().frame.raw();
            let cycles = sync.time().cycle.raw();
            assert_eq!(frames, 10_000 * frames_per_sync);
            // The granted cycles telescope to the exact conversion...
            assert_eq!(cycles, ratio.cycles_for_frames(frames));
            assert_eq!(sync.rtl().cycles, cycles);
            // ...so the divergence from the ideal rational timeline stays
            // under one cycle — far inside the one-frame budget. The naive
            // per-frame truncation would be 40 cycles/frame off (16 M
            // cycles adrift by the end at frames_per_sync = 1).
            let ideal = frames as u128 * 1_000_000_000 / 60;
            let drift = ideal - cycles as u128;
            assert!(
                drift < ratio.cycles_per_frame() as u128,
                "drift {drift} cycles at frames_per_sync={frames_per_sync}"
            );
            assert!(drift <= 1, "span sizing should be cycle-exact: {drift}");
        }
    }

    /// The parallel quantum must be unobservable: identical progress
    /// counters and identical message contents *and ordering* on both
    /// endpoints, versus the sequential reference.
    #[test]
    fn parallel_mode_matches_sequential_exactly() {
        fn run(mode: SyncMode) -> (SyncStats, Vec<Vec<u8>>, Vec<Vec<u8>>) {
            let cfg = config(2).with_mode(mode);
            let mut sync = Synchronizer::new(cfg, EchoEnv::default(), LoopRtl::default());
            // Seed traffic so data crosses in both directions every period.
            sync.rtl_mut().tx.push(vec![1]);
            sync.rtl_mut().tx.push(vec![2, 3]);
            sync.run_syncs(50);
            let stats = *sync.stats();
            let (env, rtl) = sync.into_parts();
            (stats, env.seen, rtl.received)
        }

        let (seq_stats, seq_env_seen, seq_rtl_rx) = run(SyncMode::Sequential);
        let (par_stats, par_env_seen, par_rtl_rx) = run(SyncMode::Parallel);

        assert_eq!(seq_stats.syncs, par_stats.syncs);
        assert_eq!(seq_stats.sim_cycles, par_stats.sim_cycles);
        assert_eq!(seq_stats.sim_frames, par_stats.sim_frames);
        assert_eq!(seq_stats.data_to_env, par_stats.data_to_env);
        assert_eq!(seq_stats.data_to_rtl, par_stats.data_to_rtl);
        assert_eq!(seq_env_seen, par_env_seen);
        assert_eq!(seq_rtl_rx, par_rtl_rx);
        assert!(seq_env_seen.len() > 50, "scenario should move real data");
    }

    /// A dead peer mid-mission must latch a fault and halt, not panic.
    #[test]
    fn dropped_peer_latches_fault_instead_of_panicking() {
        let (client, server) = ChannelTransport::pair();
        let mut sync = Synchronizer::new(config(1), EchoEnv::default(), RemoteRtl::new(client));
        drop(server); // peer dies before the first grant

        let result = sync.try_run_until(100, |_, _| false);
        assert!(matches!(result, Err(TransportError::Disconnected)));
        assert!(sync.rtl().halted());
        // The fault was taken by try_run_until; the halt latch keeps the
        // mission loop from re-entering the dead transport.
        assert_eq!(sync.run_until(100, |_, _| false), 0);
        assert!(sync.rtl_mut().take_fault().is_none());
    }

    #[test]
    fn remote_rtl_matches_local_behavior() {
        // Serve a LoopRtl over an in-process transport on another thread,
        // then run the same scenario as `data_crosses_at_sync_boundaries`.
        let (client, mut server) = ChannelTransport::pair();
        let server_thread = thread::spawn(move || {
            let mut rtl = LoopRtl::default();
            serve_rtl(&mut server, &mut rtl).unwrap();
            rtl
        });

        let mut remote = RemoteRtl::new(client);
        remote.push_data(vec![9]);
        let mut sync = Synchronizer::new(config(1), EchoEnv::default(), remote);
        sync.step_sync(); // delivers [9]; loopback emits it
        sync.step_sync(); // env receives [9], echoes [10]
        assert_eq!(sync.env().handled, 1);
        sync.step_sync(); // loopback emitted [10] during sync 2's grant...
        assert_eq!(sync.env().handled, 2); // ...so env handles it here
        sync.step_sync();
        assert_eq!(sync.env().handled, 3);

        let (_, remote) = sync.into_parts();
        remote.shutdown().unwrap();
        let rtl = server_thread.join().unwrap();
        assert!(rtl.cycles > 0);
    }

    /// The satellite bugfix: a zero `quantum_wall` (zero-period runs, or
    /// stats snapshotted before any period) must report 0.0, never NaN —
    /// `f64::clamp` propagates NaN straight into the fig15 CSV.
    #[test]
    fn overlap_efficiency_is_zero_not_nan_for_zero_durations() {
        let fresh = SyncStats::default();
        assert_eq!(fresh.overlap_efficiency(), 0.0);

        // Degenerate but possible on coarse clocks: both sides measured
        // 0 ns yet the counters advanced.
        let zero_walls = SyncStats {
            syncs: 3,
            sim_cycles: 300,
            ..SyncStats::default()
        };
        let eff = zero_walls.overlap_efficiency();
        assert!(!eff.is_nan(), "got NaN");
        assert_eq!(eff, 0.0);

        // Sanity: a genuine half-overlapped period still reports normally.
        let real = SyncStats {
            env_wall: Duration::from_millis(10),
            rtl_wall: Duration::from_millis(10),
            quantum_wall: Duration::from_millis(15),
            ..SyncStats::default()
        };
        assert!((real.overlap_efficiency() - 0.5).abs() < 1e-9);
    }

    /// Tracing a run records quantum spans, grants, and packet crossings
    /// stamped in simulated time; an untraced run records nothing.
    #[test]
    fn synchronizer_traces_quanta_and_packets() {
        use rose_trace::{EventKind, TraceClock};
        use rose_sim_core::cycles::{ClockSpec, FrameSpec};

        let mut sync = Synchronizer::new(config(2), EchoEnv::default(), LoopRtl::default());
        sync.set_tracer(Tracer::enabled(TraceClock::new(
            ClockSpec::from_hz(600),
            FrameSpec::from_hz(60),
        )));
        sync.rtl_mut().tx.push(vec![1, 2, 3]);
        sync.run_syncs(3);

        let events = sync.take_trace_events();
        let quanta: Vec<_> = events.iter().filter(|e| e.name == "sync-quantum").collect();
        let grants = events.iter().filter(|e| e.name == "sync-grant").count();
        let packets = events.iter().filter(|e| e.name == "bridge-packet").count();
        assert_eq!(quanta.len(), 3);
        assert_eq!(grants, 3);
        // Seeded packet to env + its echo back, then the echo round-trips
        // again on later periods.
        assert_eq!(packets as u64, sync.stats().data_to_env + sync.stats().data_to_rtl);
        // Quantum spans tile the cycle timeline: 20 cycles per period at
        // 600 Hz / 60 fps × 2 frames = 33_333.3 µs each.
        assert_eq!(quanta[0].ts_us, 0.0);
        let EventKind::Complete { dur_us } = quanta[0].kind else {
            panic!("sync-quantum must be a span");
        };
        assert!((dur_us - 2e6 / 60.0).abs() < 1e-6);
        assert!((quanta[1].ts_us - dur_us).abs() < 1e-6);

        // Untraced runs pay the branch and record nothing.
        let mut quiet = Synchronizer::new(config(2), EchoEnv::default(), LoopRtl::default());
        quiet.run_syncs(3);
        assert!(quiet.take_trace_events().is_empty());
    }

    /// A transport dying *mid-mission* — after successful periods — must
    /// surface through `try_run_until`/`take_fault`, and the occupancy
    /// counters must stay consistent: every payload counted towards the
    /// RTL is either delivered to the server or still queued, never lost
    /// or double-counted.
    #[test]
    fn mid_mission_fault_surfaces_with_consistent_occupancy() {
        /// Streams one sensor payload towards the SoC every period.
        struct StreamEnv;
        impl EnvSide for StreamEnv {
            fn step_frames(&mut self, _frames: u64) {}
            fn handle_data(&mut self, _payload: &[u8]) -> Vec<Vec<u8>> {
                Vec::new()
            }
            fn poll_data(&mut self) -> Vec<Vec<u8>> {
                vec![vec![0xAB; 8]]
            }
        }

        let (client, mut server) = ChannelTransport::pair();
        // A server that completes exactly two grants, then dies without an
        // orderly shutdown.
        let server_thread = thread::spawn(move || {
            let mut delivered = 0u64;
            for _ in 0..2 {
                loop {
                    match server.recv().unwrap() {
                        Packet::Data { .. } => delivered += 1,
                        Packet::GrantCycles { cycles, quantum } => {
                            server.send(&Packet::CyclesDone { cycles, quantum }).unwrap();
                            break;
                        }
                        other => panic!("unexpected packet {other:?}"),
                    }
                }
            }
            delivered
        });

        let mut sync = Synchronizer::new(config(1), StreamEnv, RemoteRtl::new(client));
        assert_eq!(sync.run_until(2, |_, _| false), 2);
        // Join before the next period so the transport is deterministically
        // dead (not merely buffering into a channel nobody reads).
        let delivered = server_thread.join().unwrap();
        assert_eq!(delivered, 2);

        let result = sync.try_run_until(10, |_, _| false);
        assert!(matches!(result, Err(TransportError::Disconnected)));

        let stats = *sync.stats();
        let (_, remote) = sync.into_parts();
        assert_eq!(
            stats.data_to_rtl,
            delivered + remote.pending_tx() as u64,
            "fault must not lose or double-count queued packets"
        );
        assert_eq!(remote.pending_tx(), 1, "the failed period's payload stays queued");
    }

    /// The satellite bugfix scenario: a transport dies mid-mission, the
    /// synchronizer + `RemoteRtl` state is snapshotted, and the mission
    /// resumes onto a *fresh* transport. Queue occupancy must round-trip
    /// (the payload whose send failed is re-sent, none lost or duplicated),
    /// the fault-latched halt must not persist, and the synchronizer
    /// continues from the last completed boundary.
    #[test]
    fn fault_then_resume_restores_queue_occupancy() {
        struct StreamEnv;
        impl EnvSide for StreamEnv {
            fn step_frames(&mut self, _frames: u64) {}
            fn handle_data(&mut self, _payload: &[u8]) -> Vec<Vec<u8>> {
                Vec::new()
            }
            fn poll_data(&mut self) -> Vec<Vec<u8>> {
                vec![vec![0xCD; 4]]
            }
        }

        /// Serves `grants` periods, counting delivered data payloads.
        fn spawn_server(mut server: ChannelTransport, grants: u64) -> thread::JoinHandle<u64> {
            thread::spawn(move || {
                let mut delivered = 0u64;
                for _ in 0..grants {
                    loop {
                        match server.recv().unwrap() {
                            Packet::Data { .. } => delivered += 1,
                            Packet::GrantCycles { cycles, quantum } => {
                                server.send(&Packet::CyclesDone { cycles, quantum }).unwrap();
                                break;
                            }
                            other => panic!("unexpected packet {other:?}"),
                        }
                    }
                }
                delivered
            })
        }

        // Phase 1: two clean periods, then the peer dies mid-mission.
        let (client, server) = ChannelTransport::pair();
        let server_thread = spawn_server(server, 2);
        let mut sync = Synchronizer::new(config(1), StreamEnv, RemoteRtl::new(client));
        assert_eq!(sync.run_until(2, |_, _| false), 2);
        let delivered_before = server_thread.join().unwrap();
        assert!(matches!(
            sync.try_run_until(10, |_, _| false),
            Err(TransportError::Disconnected)
        ));
        assert_eq!(sync.rtl().pending_tx(), 1, "failed send stays queued");
        let boundary_time = sync.time();

        // Snapshot: synchronizer position + endpoint queue occupancy.
        let mut w = SnapWriter::new();
        sync.save_state(&mut w);
        sync.rtl().save_state(&mut w);
        let snapshot = w.into_bytes();

        // Phase 2: fresh transport, fresh synchronizer, state restored.
        let (client, server) = ChannelTransport::pair();
        let server_thread = spawn_server(server, 3);
        let mut resumed = Synchronizer::new(config(1), StreamEnv, RemoteRtl::new(client));
        let mut r = SnapReader::new(&snapshot);
        resumed.restore_state(&mut r).unwrap();
        resumed.rtl_mut().restore_state(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(resumed.time(), boundary_time, "resume at the boundary");
        assert!(!resumed.rtl().halted(), "fault-latched halt must not persist");
        assert_eq!(resumed.rtl().pending_tx(), 1, "occupancy round-trips");

        assert_eq!(resumed.run_until(3, |_, _| false), 3);
        let delivered_after = server_thread.join().unwrap();

        // End-to-end conservation across the fault + resume: every payload
        // counted towards the RTL was delivered on one of the transports
        // or is still queued — never lost, never double-counted.
        assert_eq!(
            resumed.stats().data_to_rtl,
            delivered_before + delivered_after + resumed.rtl().pending_tx() as u64,
            "occupancy invariant must survive fault + resume"
        );
        assert!(
            delivered_after > 3,
            "the re-sent payload plus new traffic reached the new server"
        );
    }

    /// A peer that answers a grant with a packet the synchronizer role
    /// never accepts must latch a `Protocol` fault and wind down — not
    /// panic (PANIC001: peer input is never trusted).
    #[test]
    fn unexpected_packet_latches_protocol_fault() {
        let (client, mut server) = ChannelTransport::pair();
        let server_thread = thread::spawn(move || {
            // Answer the first grant with a grant of our own.
            loop {
                match server.recv() {
                    Ok(Packet::GrantCycles { .. }) => {
                        let _ = server.send(&Packet::GrantCycles {
                            cycles: 1,
                            quantum: 0,
                        });
                        break;
                    }
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
            server
        });

        let mut sync = Synchronizer::new(config(1), EchoEnv::default(), RemoteRtl::new(client));
        let result = sync.try_run_until(10, |_, _| false);
        assert!(
            matches!(
                result,
                Err(TransportError::Protocol {
                    got: "GrantCycles",
                    ..
                })
            ),
            "got {result:?}"
        );
        assert!(sync.rtl().halted(), "protocol fault halts the mission loop");
        drop(server_thread.join());
    }

    /// The server side mirrors the same contract: a client speaking the
    /// wrong role returns a `Protocol` error from `serve_rtl` instead of
    /// killing the bridge-driver process.
    #[test]
    fn serve_rtl_rejects_wrong_role_packets() {
        let (mut client, mut server) = ChannelTransport::pair();
        client
            .send(&Packet::CyclesDone {
                cycles: 7,
                quantum: 0,
            })
            .unwrap();
        let mut rtl = LoopRtl::default();
        let result = serve_rtl(&mut server, &mut rtl);
        assert!(
            matches!(
                result,
                Err(TransportError::Protocol {
                    got: "CyclesDone",
                    at: "RTL server",
                })
            ),
            "got {result:?}"
        );
    }

    /// Telemetry histograms and the profiler accumulate one entry per
    /// quantum, stay out of snapshots (restore resets them), and flatten
    /// into the metric registry through `MetricSource`.
    #[test]
    fn telemetry_and_profiler_accumulate_and_stay_out_of_snapshots() {
        let mut sync = Synchronizer::new(config(1), EchoEnv::default(), LoopRtl::default());
        sync.rtl_mut().tx.push(vec![1, 2]);
        sync.run_syncs(10);

        let telemetry = sync.telemetry().clone();
        assert_eq!(telemetry.quantum_wall_us.count(), 10);
        assert_eq!(telemetry.grant_latency_us.count(), 10);
        assert_eq!(telemetry.queue_depth.count(), 10);
        assert!(telemetry.queue_depth.max().unwrap() >= 1.0, "seeded packet crossed");

        let profiler = sync.profiler().clone();
        for phase in [Phase::Transport, Phase::RtlGrant, Phase::EnvStep, Phase::TraceOverhead] {
            assert_eq!(profiler.count(phase), 10, "phase {}", phase.name());
        }

        let mut registry = MetricRegistry::new();
        registry.record(&telemetry);
        assert_eq!(
            registry.histogram("sync.quantum_wall_us").unwrap().count(),
            10
        );
        assert_eq!(registry.histogram("bridge.queue_depth").unwrap().count(), 10);

        // Host telemetry is excluded from snapshots: the byte stream is
        // identical with or without it, and restore resets both.
        let mut w = SnapWriter::new();
        sync.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        sync.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert!(sync.telemetry().quantum_wall_us.is_empty());
        assert!(sync.telemetry().queue_depth.is_empty());
        assert!(sync.profiler().is_empty());
    }

    /// A transport that dies mid-outbox must keep the unsent payloads
    /// queued (counted by `pending_tx`), not silently drop them.
    #[test]
    fn faulted_send_retains_unsent_outbox() {
        let (client, server) = ChannelTransport::pair();
        let mut remote = RemoteRtl::new(client);
        remote.push_data(vec![1]);
        remote.push_data(vec![2]);
        remote.push_data(vec![3]);
        assert_eq!(remote.pending_tx(), 3);
        drop(server);

        remote.grant_and_run(100);
        assert!(remote.halted());
        // The dead channel accepted nothing: all three remain queued.
        assert_eq!(remote.pending_tx(), 3);
        assert!(matches!(
            remote.take_fault(),
            Some(TransportError::Disconnected)
        ));
        // The dead peer exhausted the default policy before latching.
        assert_eq!(remote.recovery_stats().exhausted, 1);
        assert_eq!(
            remote.recovery_stats().retries,
            u64::from(RecoveryPolicy::default().max_retries)
        );
    }

    /// The recovery tentpole: a scheduled transient disconnect mid-mission
    /// is absorbed by the retry/reconnect/resync ladder — the mission
    /// completes with no latched fault and the endpoints see exactly the
    /// traffic of a fault-free run.
    #[test]
    fn transient_disconnect_recovers_without_latching() {
        use crate::faults::{FaultKind, FaultPlan, FaultyTransport};

        fn run(plan: FaultPlan) -> (SyncStats, Vec<Vec<u8>>, RecoveryStats) {
            let (client, mut server) = ChannelTransport::pair();
            let server_thread = thread::spawn(move || {
                let mut rtl = LoopRtl::default();
                serve_rtl(&mut server, &mut rtl).unwrap();
                rtl
            });
            let faulty = FaultyTransport::new(client, plan);
            let mut sync =
                Synchronizer::new(config(1), EchoEnv::default(), RemoteRtl::new(faulty));
            sync.rtl_mut().push_data(vec![1, 2, 3]);
            let executed = sync
                .try_run_until(10, |_, _| false)
                .expect("transient fault must not latch");
            assert_eq!(executed, 10);
            let stats = *sync.stats();
            let recovery = *sync.rtl().recovery_stats();
            let (env, remote) = sync.into_parts();
            remote.shutdown().unwrap();
            server_thread.join().unwrap();
            (stats, env.seen, recovery)
        }

        let plan = FaultPlan::new(11).with_event(3, FaultKind::Disconnect { ops: 3 });
        let (f_stats, f_seen, recovery) = run(plan);
        assert!(recovery.retries >= 1, "{recovery:?}");
        assert!(recovery.reconnects >= 1, "{recovery:?}");
        assert_eq!(recovery.recovered, 1, "{recovery:?}");
        assert_eq!(recovery.exhausted, 0, "{recovery:?}");

        // Fault-free reference: the recovered run moved identical data.
        let (c_stats, c_seen, clean_recovery) = run(FaultPlan::new(11));
        assert_eq!(clean_recovery.retries, 0);
        assert_eq!(f_stats.data_to_env, c_stats.data_to_env);
        assert_eq!(f_stats.data_to_rtl, c_stats.data_to_rtl);
        assert_eq!(f_seen, c_seen, "recovery must be invisible to the env");
    }

    /// A stall (timeouts without disconnect) is absorbed by plain retries
    /// — no reconnect needed.
    #[test]
    fn stall_recovers_with_retries_alone() {
        use crate::faults::{FaultKind, FaultPlan, FaultyTransport};

        let (client, mut server) = ChannelTransport::pair();
        let server_thread = thread::spawn(move || {
            let mut rtl = LoopRtl::default();
            serve_rtl(&mut server, &mut rtl).unwrap();
        });
        let plan = FaultPlan::new(12).with_event(1, FaultKind::Stall { ops: 2 });
        let faulty = FaultyTransport::new(client, plan);
        let mut sync = Synchronizer::new(config(1), EchoEnv::default(), RemoteRtl::new(faulty));
        sync.rtl_mut().push_data(vec![7]);
        assert_eq!(sync.try_run_until(5, |_, _| false).unwrap(), 5);
        let recovery = *sync.rtl().recovery_stats();
        assert!(recovery.retries >= 2, "{recovery:?}");
        assert_eq!(recovery.exhausted, 0, "{recovery:?}");
        assert!(recovery.backoff_units >= 2, "{recovery:?}");
        let (_, remote) = sync.into_parts();
        remote.shutdown().unwrap();
        server_thread.join().unwrap();
    }

    #[test]
    fn backoff_schedule_doubles_to_the_cap() {
        let policy = RecoveryPolicy::default();
        assert_eq!(policy.backoff_units(0), 1);
        assert_eq!(policy.backoff_units(1), 2);
        assert_eq!(policy.backoff_units(3), 8);
        assert_eq!(policy.backoff_units(10), 16, "capped");
        let off = RecoveryPolicy::disabled();
        assert_eq!(off.max_retries, 0);
    }
}

#[cfg(test)]
mod poll_tests {
    use super::*;
    use rose_sim_core::cycles::{ClockSpec, FrameSpec};

    /// An environment that streams one unsolicited sensor sample per sync
    /// (the `poll_data` path, used for pushed sensor streams).
    #[derive(Default)]
    struct StreamingEnv {
        frame: u64,
    }

    impl EnvSide for StreamingEnv {
        fn step_frames(&mut self, frames: u64) {
            self.frame += frames;
        }

        fn handle_data(&mut self, _payload: &[u8]) -> Vec<Vec<u8>> {
            Vec::new()
        }

        fn poll_data(&mut self) -> Vec<Vec<u8>> {
            vec![self.frame.to_le_bytes().to_vec()]
        }
    }

    #[derive(Default)]
    struct SinkRtl {
        received: Vec<Vec<u8>>,
    }

    impl RtlSide for SinkRtl {
        fn grant_and_run(&mut self, _cycles: u64) {}
        fn push_data(&mut self, payload: Vec<u8>) {
            self.received.push(payload);
        }
        fn drain_tx(&mut self) -> Vec<Vec<u8>> {
            Vec::new()
        }
    }

    #[test]
    fn unsolicited_env_data_streams_to_the_rtl() {
        let config = SyncConfig::new(
            SyncRatio::new(ClockSpec::from_hz(600), FrameSpec::from_hz(60)),
            1,
        );
        let mut sync = Synchronizer::new(config, StreamingEnv::default(), SinkRtl::default());
        sync.run_syncs(5);
        assert_eq!(sync.rtl().received.len(), 5);
        // Samples carry the frame count at push time (before the step).
        assert_eq!(sync.rtl().received[0], 0u64.to_le_bytes().to_vec());
        assert_eq!(sync.rtl().received[4], 4u64.to_le_bytes().to_vec());
        assert_eq!(sync.stats().data_to_rtl, 5);
    }
}
