//! The lockstep synchronizer (Algorithm 1).
//!
//! "RoSÉ implements a lockstep synchronization method... A synchronization
//! period is defined between both simulators in terms of AirSim frames and
//! SoC clock cycles" (Section 3.4.1). The [`Synchronizer`] owns both
//! simulator endpoints through the [`EnvSide`] / [`RtlSide`] traits and
//! advances them one sync period at a time:
//!
//! 1. poll the RTL side for I/O data and translate each datum into
//!    environment API calls,
//! 2. forward the responses (and any unsolicited sensor data) to the RTL
//!    side's RX queue,
//! 3. allocate tokens: grant the RTL simulation its cycle budget and the
//!    environment its frames,
//! 4. wait for both to finish, and advance simulation time.
//!
//! Data crossing between simulators is therefore only visible at sync
//! boundaries — coarser synchronization induces artificial latency, the
//! effect measured in Figure 16.

use crate::packet::Packet;
use crate::transport::{Transport, TransportError};
use rose_sim_core::cycles::{SimTime, SyncRatio};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The environment-simulator side of the co-simulation (AirSim's role).
pub trait EnvSide {
    /// Advances the environment by `frames` physics/render steps.
    fn step_frames(&mut self, frames: u64);

    /// Decodes one data payload from the SoC, performs the corresponding
    /// simulator API call, and returns any response payloads.
    fn handle_data(&mut self, payload: &[u8]) -> Vec<Vec<u8>>;

    /// Unsolicited data the environment wants to push this period
    /// (e.g. streamed sensors). Default: none.
    fn poll_data(&mut self) -> Vec<Vec<u8>> {
        Vec::new()
    }
}

/// The RTL-simulator side of the co-simulation (FireSim's role).
pub trait RtlSide {
    /// Grants `cycles` of execution and runs the simulation until the
    /// grant is consumed.
    fn grant_and_run(&mut self, cycles: u64);

    /// Enqueues a data payload into the SoC-bound bridge queue.
    fn push_data(&mut self, payload: Vec<u8>);

    /// Drains every payload the SoC produced.
    fn drain_tx(&mut self) -> Vec<Vec<u8>>;

    /// True once the target program has halted (ends the mission loop).
    fn halted(&self) -> bool {
        false
    }
}

/// Synchronization configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncConfig {
    /// The clock-domain ratio (Equation 1).
    pub ratio: SyncRatio,
    /// Environment frames per synchronization period (the granularity
    /// swept in Figures 15/16).
    pub frames_per_sync: u64,
}

impl SyncConfig {
    /// Creates a config; `frames_per_sync` must be nonzero.
    ///
    /// # Panics
    ///
    /// Panics if `frames_per_sync` is zero.
    pub fn new(ratio: SyncRatio, frames_per_sync: u64) -> SyncConfig {
        assert!(frames_per_sync > 0, "sync period must cover >= 1 frame");
        SyncConfig {
            ratio,
            frames_per_sync,
        }
    }

    /// SoC cycles per synchronization period.
    pub fn cycles_per_sync(&self) -> u64 {
        self.ratio.cycles_for_frames(self.frames_per_sync)
    }
}

impl Default for SyncConfig {
    /// 1 frame per sync at the default 1 GHz / 60 fps ratio (≈16.7M
    /// cycles), the fine-granularity end of Figure 15.
    fn default() -> SyncConfig {
        SyncConfig::new(SyncRatio::default(), 1)
    }
}

/// Synchronizer progress counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SyncStats {
    /// Synchronization periods completed.
    pub syncs: u64,
    /// Simulated SoC cycles.
    pub sim_cycles: u64,
    /// Simulated environment frames.
    pub sim_frames: u64,
    /// Data payloads delivered SoC → environment.
    pub data_to_env: u64,
    /// Data payloads delivered environment → SoC.
    pub data_to_rtl: u64,
    /// Wall-clock time spent inside `step_sync`.
    pub wall: Duration,
}

impl SyncStats {
    /// Co-simulation throughput in simulated cycles per wall second
    /// (Figure 15's y-axis).
    pub fn throughput_hz(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / secs
        }
    }
}

/// The lockstep synchronizer.
#[derive(Debug)]
pub struct Synchronizer<E, R> {
    env: E,
    rtl: R,
    config: SyncConfig,
    time: SimTime,
    stats: SyncStats,
}

impl<E: EnvSide, R: RtlSide> Synchronizer<E, R> {
    /// Creates a synchronizer owning both simulator endpoints.
    pub fn new(config: SyncConfig, env: E, rtl: R) -> Synchronizer<E, R> {
        Synchronizer {
            env,
            rtl,
            config,
            time: SimTime::ZERO,
            stats: SyncStats::default(),
        }
    }

    /// The synchronization configuration.
    pub fn config(&self) -> &SyncConfig {
        &self.config
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Progress counters.
    pub fn stats(&self) -> &SyncStats {
        &self.stats
    }

    /// The environment endpoint.
    pub fn env(&self) -> &E {
        &self.env
    }

    /// Mutable environment endpoint access (between sync periods).
    pub fn env_mut(&mut self) -> &mut E {
        &mut self.env
    }

    /// The RTL endpoint.
    pub fn rtl(&self) -> &R {
        &self.rtl
    }

    /// Mutable RTL endpoint access (between sync periods).
    pub fn rtl_mut(&mut self) -> &mut R {
        &mut self.rtl
    }

    /// Consumes the synchronizer, returning the endpoints.
    pub fn into_parts(self) -> (E, R) {
        (self.env, self.rtl)
    }

    /// Executes one synchronization period (the body of Algorithm 1).
    pub fn step_sync(&mut self) {
        let started = Instant::now();

        // Poll simulators for new data: translate I/O packets from the SoC
        // into environment API calls, and queue the responses (plus any
        // unsolicited sensor data) towards the SoC.
        for datum in self.rtl.drain_tx() {
            self.stats.data_to_env += 1;
            for response in self.env.handle_data(&datum) {
                self.stats.data_to_rtl += 1;
                self.rtl.push_data(response);
            }
        }
        for datum in self.env.poll_data() {
            self.stats.data_to_rtl += 1;
            self.rtl.push_data(datum);
        }

        // Allocate tokens and run both simulators one sync period.
        let cycles = self.config.cycles_per_sync();
        let frames = self.config.frames_per_sync;
        self.rtl.grant_and_run(cycles);
        self.env.step_frames(frames);

        self.time.advance(frames, cycles);
        self.stats.syncs += 1;
        self.stats.sim_cycles += cycles;
        self.stats.sim_frames += frames;
        self.stats.wall += started.elapsed();
    }

    /// Runs `n` synchronization periods.
    pub fn run_syncs(&mut self, n: u64) {
        for _ in 0..n {
            self.step_sync();
        }
    }

    /// Runs until `done(env, time)` returns true, the RTL program halts, or
    /// `max_syncs` elapse. Returns the number of periods executed.
    pub fn run_until(
        &mut self,
        max_syncs: u64,
        mut done: impl FnMut(&E, SimTime) -> bool,
    ) -> u64 {
        let mut executed = 0;
        while executed < max_syncs && !self.rtl.halted() && !done(&self.env, self.time) {
            self.step_sync();
            executed += 1;
        }
        executed
    }
}

/// An [`RtlSide`] living behind a packet transport (the paper's TCP
/// deployment: the synchronizer drives a remote FireSim instance).
#[derive(Debug)]
pub struct RemoteRtl<T> {
    transport: T,
    /// Payloads to deliver with the next grant.
    outbox: Vec<Vec<u8>>,
    /// Payloads received from the remote SoC.
    inbox: Vec<Vec<u8>>,
    halted: bool,
}

impl<T: Transport> RemoteRtl<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> RemoteRtl<T> {
        RemoteRtl {
            transport,
            outbox: Vec::new(),
            inbox: Vec::new(),
            halted: false,
        }
    }

    /// Sends an orderly shutdown to the remote server.
    ///
    /// # Errors
    ///
    /// Any transport error.
    pub fn shutdown(mut self) -> Result<(), TransportError> {
        self.transport.send(&Packet::Shutdown)
    }
}

impl<T: Transport> RtlSide for RemoteRtl<T> {
    fn grant_and_run(&mut self, cycles: u64) {
        for payload in self.outbox.drain(..) {
            self.transport
                .send(&Packet::Data(payload))
                .expect("remote RTL send failed");
        }
        self.transport
            .send(&Packet::GrantCycles { cycles })
            .expect("remote RTL send failed");
        // Wait for completion, collecting data the SoC emitted.
        loop {
            match self.transport.recv().expect("remote RTL recv failed") {
                Packet::Data(payload) => self.inbox.push(payload),
                Packet::CyclesDone { .. } => break,
                Packet::Shutdown => {
                    self.halted = true;
                    break;
                }
                other => panic!("unexpected packet from RTL server: {other:?}"),
            }
        }
    }

    fn push_data(&mut self, payload: Vec<u8>) {
        self.outbox.push(payload);
    }

    fn drain_tx(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.inbox)
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

/// Serves a local [`RtlSide`] implementation over a transport: the
/// counterpart of [`RemoteRtl`], running next to the RTL simulation (the
/// bridge-driver process in the paper's deployment).
///
/// Processes grants until a [`Packet::Shutdown`] arrives or the transport
/// disconnects.
///
/// # Errors
///
/// Returns the first transport error other than an orderly disconnect.
pub fn serve_rtl<T: Transport, R: RtlSide>(
    transport: &mut T,
    rtl: &mut R,
) -> Result<(), TransportError> {
    loop {
        match transport.recv() {
            Ok(Packet::Data(payload)) => rtl.push_data(payload),
            Ok(Packet::GrantCycles { cycles }) => {
                rtl.grant_and_run(cycles);
                for payload in rtl.drain_tx() {
                    transport.send(&Packet::Data(payload))?;
                }
                transport.send(&Packet::CyclesDone { cycles })?;
            }
            Ok(Packet::Shutdown) => return Ok(()),
            Ok(other) => panic!("unexpected packet at RTL server: {other:?}"),
            Err(TransportError::Disconnected) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use rose_sim_core::cycles::{ClockSpec, FrameSpec};
    use std::thread;

    /// Echo environment: replies to each datum with the same bytes + 1.
    #[derive(Default)]
    struct EchoEnv {
        frames: u64,
        handled: u64,
    }

    impl EnvSide for EchoEnv {
        fn step_frames(&mut self, frames: u64) {
            self.frames += frames;
        }

        fn handle_data(&mut self, payload: &[u8]) -> Vec<Vec<u8>> {
            self.handled += 1;
            vec![payload.iter().map(|b| b + 1).collect()]
        }
    }

    /// Loopback RTL: every pushed payload is emitted back on the next
    /// quantum; counts granted cycles.
    #[derive(Default)]
    struct LoopRtl {
        cycles: u64,
        rx: Vec<Vec<u8>>,
        tx: Vec<Vec<u8>>,
    }

    impl RtlSide for LoopRtl {
        fn grant_and_run(&mut self, cycles: u64) {
            self.cycles += cycles;
            self.tx.append(&mut self.rx);
        }

        fn push_data(&mut self, payload: Vec<u8>) {
            self.rx.push(payload);
        }

        fn drain_tx(&mut self) -> Vec<Vec<u8>> {
            std::mem::take(&mut self.tx)
        }
    }

    fn config(frames_per_sync: u64) -> SyncConfig {
        SyncConfig::new(
            SyncRatio::new(ClockSpec::from_hz(600), FrameSpec::from_hz(60)),
            frames_per_sync,
        )
    }

    #[test]
    fn lockstep_advances_both_domains() {
        let mut sync = Synchronizer::new(config(2), EchoEnv::default(), LoopRtl::default());
        sync.run_syncs(5);
        assert_eq!(sync.env().frames, 10);
        assert_eq!(sync.rtl().cycles, 5 * 2 * 10); // 10 cycles/frame
        assert_eq!(sync.time().frame.raw(), 10);
        assert_eq!(sync.time().cycle.raw(), 100);
        assert_eq!(sync.stats().syncs, 5);
    }

    #[test]
    fn data_crosses_at_sync_boundaries() {
        let mut sync = Synchronizer::new(config(1), EchoEnv::default(), LoopRtl::default());
        // Seed a message in the RTL TX path.
        sync.rtl_mut().tx.push(vec![1, 2, 3]);
        sync.step_sync();
        // Sync 1: message went to env, echo (+1) queued into RTL rx and
        // emitted into tx by the same grant.
        assert_eq!(sync.env().handled, 1);
        sync.step_sync();
        // Sync 2: echoed message [2,3,4] reached the env and re-echoed.
        assert_eq!(sync.env().handled, 2);
        assert_eq!(sync.stats().data_to_env, 2);
        assert_eq!(sync.stats().data_to_rtl, 2);
    }

    #[test]
    fn run_until_predicate_stops() {
        let mut sync = Synchronizer::new(config(1), EchoEnv::default(), LoopRtl::default());
        let executed = sync.run_until(100, |env, _| env.frames >= 7);
        assert_eq!(executed, 7);
        assert_eq!(sync.env().frames, 7);
    }

    #[test]
    fn equation_1_cycles_per_sync() {
        let cfg = SyncConfig::new(
            SyncRatio::new(ClockSpec::from_hz(1_000_000_000), FrameSpec::from_hz(60)),
            1,
        );
        assert_eq!(cfg.cycles_per_sync(), 16_666_666);
        let coarse = SyncConfig::new(cfg.ratio, 40);
        assert_eq!(coarse.cycles_per_sync(), 40 * 16_666_666);
    }

    #[test]
    fn remote_rtl_matches_local_behavior() {
        // Serve a LoopRtl over an in-process transport on another thread,
        // then run the same scenario as `data_crosses_at_sync_boundaries`.
        let (client, mut server) = ChannelTransport::pair();
        let server_thread = thread::spawn(move || {
            let mut rtl = LoopRtl::default();
            serve_rtl(&mut server, &mut rtl).unwrap();
            rtl
        });

        let mut remote = RemoteRtl::new(client);
        remote.push_data(vec![9]);
        let mut sync = Synchronizer::new(config(1), EchoEnv::default(), remote);
        sync.step_sync(); // delivers [9]; loopback emits it
        sync.step_sync(); // env receives [9], echoes [10]
        assert_eq!(sync.env().handled, 1);
        sync.step_sync(); // loopback emitted [10] during sync 2's grant...
        assert_eq!(sync.env().handled, 2); // ...so env handles it here
        sync.step_sync();
        assert_eq!(sync.env().handled, 3);

        let (_, remote) = sync.into_parts();
        remote.shutdown().unwrap();
        let rtl = server_thread.join().unwrap();
        assert!(rtl.cycles > 0);
    }
}

#[cfg(test)]
mod poll_tests {
    use super::*;
    use rose_sim_core::cycles::{ClockSpec, FrameSpec};

    /// An environment that streams one unsolicited sensor sample per sync
    /// (the `poll_data` path, used for pushed sensor streams).
    #[derive(Default)]
    struct StreamingEnv {
        frame: u64,
    }

    impl EnvSide for StreamingEnv {
        fn step_frames(&mut self, frames: u64) {
            self.frame += frames;
        }

        fn handle_data(&mut self, _payload: &[u8]) -> Vec<Vec<u8>> {
            Vec::new()
        }

        fn poll_data(&mut self) -> Vec<Vec<u8>> {
            vec![self.frame.to_le_bytes().to_vec()]
        }
    }

    #[derive(Default)]
    struct SinkRtl {
        received: Vec<Vec<u8>>,
    }

    impl RtlSide for SinkRtl {
        fn grant_and_run(&mut self, _cycles: u64) {}
        fn push_data(&mut self, payload: Vec<u8>) {
            self.received.push(payload);
        }
        fn drain_tx(&mut self) -> Vec<Vec<u8>> {
            Vec::new()
        }
    }

    #[test]
    fn unsolicited_env_data_streams_to_the_rtl() {
        let config = SyncConfig::new(
            SyncRatio::new(ClockSpec::from_hz(600), FrameSpec::from_hz(60)),
            1,
        );
        let mut sync = Synchronizer::new(config, StreamingEnv::default(), SinkRtl::default());
        sync.run_syncs(5);
        assert_eq!(sync.rtl().received.len(), 5);
        // Samples carry the frame count at push time (before the step).
        assert_eq!(sync.rtl().received[0], 0u64.to_le_bytes().to_vec());
        assert_eq!(sync.rtl().received[4], 4u64.to_le_bytes().to_vec());
        assert_eq!(sync.stats().data_to_rtl, 5);
    }
}
