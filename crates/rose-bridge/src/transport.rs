//! Packet transports.
//!
//! The paper's synchronizer communicates "with FireSim by using a TCP
//! listener" (Section 3.4.1). [`TcpTransport`] reproduces that deployment;
//! [`ChannelTransport`] provides the same interface in-process for
//! single-machine co-simulation and tests.
//!
//! # Short reads and short writes
//!
//! TCP is a byte stream: a single `read` may return any prefix of a
//! packet, and a naive `write` may accept only part of one. Both ends of
//! the framing here are already robust to that, by construction rather
//! than by retry loops bolted on top:
//!
//! * **Writes** go through [`std::io::Write::write_all`] on a blocking
//!   socket, which loops internally until every byte of the encoded
//!   packet is accepted or an error surfaces — a short write can never
//!   silently truncate a frame.
//! * **Reads** append whatever bytes arrive into a [`BytesMut`] inbox;
//!   [`Packet::decode`] returns [`DecodeError::Incomplete`] (leaving the
//!   buffer untouched) until a full frame is present. A packet dribbled
//!   in one byte at a time therefore decodes exactly once, when its last
//!   byte lands — see the `tcp_survives_dribbling_peer` test.
//!
//! This buffering also means packet boundaries need not align with read
//! boundaries: one read may complete several packets, and `pop` drains
//! them in order.

use crate::packet::{DecodeError, Packet};
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

/// A transport error.
#[derive(Debug)]
pub enum TransportError {
    /// The peer disconnected.
    Disconnected,
    /// A malformed packet arrived.
    Decode(DecodeError),
    /// An I/O error occurred.
    Io(io::Error),
    /// A well-formed packet arrived that the protocol state machine does
    /// not accept here (e.g. a `GrantCycles` at the synchronizer side).
    /// Latched instead of panicking so a confused or malicious peer winds
    /// the mission down through the ordinary fault path (PANIC001).
    Protocol {
        /// The kind of packet that arrived.
        got: &'static str,
        /// Where it arrived (which endpoint rejected it).
        at: &'static str,
    },
}

impl TransportError {
    /// True when a retry or reconnect could plausibly clear the error:
    /// disconnects and I/O errors are transient from the recovery layer's
    /// point of view, while decode and protocol errors indicate a peer
    /// speaking the wrong language — retrying those would loop forever.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            TransportError::Disconnected | TransportError::Io(_)
        )
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Decode(e) => write!(f, "decode error: {e}"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Protocol { got, at } => {
                write!(f, "protocol error: unexpected {got} packet at {at}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

/// A bidirectional, ordered packet pipe.
pub trait Transport {
    /// Sends one packet.
    ///
    /// # Errors
    ///
    /// Returns an error if the peer is gone or I/O fails.
    fn send(&mut self, packet: &Packet) -> Result<(), TransportError>;

    /// Receives the next packet without blocking; `None` if none is ready.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnect or corrupt input.
    fn try_recv(&mut self) -> Result<Option<Packet>, TransportError>;

    /// Receives the next packet, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnect or corrupt input.
    fn recv(&mut self) -> Result<Packet, TransportError>;

    /// Attempts to re-establish a dropped connection, discarding any
    /// partially received frame. Transports that cannot reconnect (the
    /// default, and e.g. the accept side of a TCP session) report
    /// [`TransportError::Disconnected`]; the recovery layer then exhausts
    /// its policy and latches.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when reconnection is unsupported,
    /// or any I/O error from the reconnection attempt.
    fn reconnect(&mut self) -> Result<(), TransportError> {
        Err(TransportError::Disconnected)
    }
}

/// An in-process transport over crossbeam channels.
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Sender<Packet>,
    rx: Receiver<Packet>,
}

impl ChannelTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (tx_a, rx_b) = unbounded();
        let (tx_b, rx_a) = unbounded();
        (
            ChannelTransport { tx: tx_a, rx: rx_a },
            ChannelTransport { tx: tx_b, rx: rx_b },
        )
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, packet: &Packet) -> Result<(), TransportError> {
        self.tx
            .send(packet.clone())
            .map_err(|_| TransportError::Disconnected)
    }

    fn try_recv(&mut self) -> Result<Option<Packet>, TransportError> {
        match self.rx.try_recv() {
            Ok(p) => Ok(Some(p)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn recv(&mut self) -> Result<Packet, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    /// Channels hold both directions open for as long as both endpoints
    /// exist, so "reconnecting" is a no-op: if the peer endpoint is alive
    /// the session simply continues, and if it was dropped the next
    /// operation reports [`TransportError::Disconnected`] again.
    fn reconnect(&mut self) -> Result<(), TransportError> {
        Ok(())
    }
}

/// A framed TCP transport.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    inbox: BytesMut,
    /// The address originally dialed, kept so `reconnect` can re-dial.
    /// `None` on the accept side — a server cannot call its client back.
    peer: Option<SocketAddr>,
}

impl TcpTransport {
    /// Connects to a listening peer. The resolved address is remembered so
    /// [`Transport::reconnect`] can re-dial after a drop.
    ///
    /// # Errors
    ///
    /// Any socket error from the connection attempt.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr().ok();
        let mut t = TcpTransport::from_stream(stream);
        t.peer = peer;
        Ok(t)
    }

    /// Accepts one connection from `listener`.
    ///
    /// # Errors
    ///
    /// Any socket error from `accept`.
    pub fn accept(listener: &TcpListener) -> io::Result<TcpTransport> {
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport::from_stream(stream))
    }

    /// Wraps an existing connected stream.
    pub fn from_stream(stream: TcpStream) -> TcpTransport {
        TcpTransport {
            stream,
            inbox: BytesMut::with_capacity(64 * 1024),
            peer: None,
        }
    }

    fn pump(&mut self, blocking: bool) -> Result<(), TransportError> {
        self.stream.set_nonblocking(!blocking)?;
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => {
                    self.inbox.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }

    fn pop(&mut self) -> Result<Option<Packet>, TransportError> {
        match Packet::decode(&mut self.inbox) {
            Ok(p) => Ok(Some(p)),
            Err(DecodeError::Incomplete) => Ok(None),
            Err(e) => Err(TransportError::Decode(e)),
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, packet: &Packet) -> Result<(), TransportError> {
        self.stream.set_nonblocking(false)?;
        // write_all loops over short writes internally: the whole frame is
        // on the wire or an error surfaces — never a truncated packet.
        self.stream.write_all(&packet.to_bytes())?;
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Packet>, TransportError> {
        if let Some(p) = self.pop()? {
            return Ok(Some(p));
        }
        self.pump(false)?;
        self.pop()
    }

    fn recv(&mut self) -> Result<Packet, TransportError> {
        loop {
            if let Some(p) = self.pop()? {
                return Ok(p);
            }
            self.pump(true)?;
        }
    }

    /// Re-dials the peer this transport originally connected to. Any bytes
    /// of a partially received frame are discarded — the sequence-resync
    /// handshake recovers whole packets, so a torn frame from the dead
    /// connection must not prefix the new one. The accept side has no
    /// address to dial and reports [`TransportError::Disconnected`].
    fn reconnect(&mut self) -> Result<(), TransportError> {
        let Some(peer) = self.peer else {
            return Err(TransportError::Disconnected);
        };
        let stream = TcpStream::connect(peer)?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        let stale = self.inbox.len();
        if stale > 0 {
            self.inbox.advance(stale);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn channel_roundtrip() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(&Packet::GrantCycles {
            cycles: 10,
            quantum: 0,
        })
        .unwrap();
        a.send(&Packet::Data {
            seq: 0,
            payload: vec![1, 2],
        })
        .unwrap();
        assert_eq!(
            b.recv().unwrap(),
            Packet::GrantCycles {
                cycles: 10,
                quantum: 0
            }
        );
        assert_eq!(
            b.try_recv().unwrap(),
            Some(Packet::Data {
                seq: 0,
                payload: vec![1, 2]
            })
        );
        assert_eq!(b.try_recv().unwrap(), None);
        b.send(&Packet::Shutdown).unwrap();
        assert_eq!(a.recv().unwrap(), Packet::Shutdown);
    }

    #[test]
    fn channel_disconnect_detected() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert!(matches!(
            a.send(&Packet::Shutdown),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn channel_reconnect_is_noop() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.reconnect().unwrap();
        a.send(&Packet::Shutdown).unwrap();
        assert_eq!(b.recv().unwrap(), Packet::Shutdown);
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut t = TcpTransport::accept(&listener).unwrap();
            // Echo three packets back.
            for _ in 0..3 {
                let p = t.recv().unwrap();
                t.send(&p).unwrap();
            }
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        let packets = [
            Packet::GrantCycles {
                cycles: 123,
                quantum: 1,
            },
            Packet::Data {
                seq: 5,
                payload: (0..1000u32).flat_map(|i| i.to_le_bytes()).collect(),
            },
            Packet::Shutdown,
        ];
        for p in &packets {
            client.send(p).unwrap();
        }
        for p in &packets {
            assert_eq!(&client.recv().unwrap(), p);
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_try_recv_nonblocking() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || TcpTransport::accept(&listener).unwrap());
        let mut client = TcpTransport::connect(addr).unwrap();
        let mut server = handle.join().unwrap();
        // Nothing sent yet.
        assert!(matches!(client.try_recv(), Ok(None)));
        server.send(&Packet::FramesDone { frames: 1 }).unwrap();
        // Poll until it arrives.
        let mut got = None;
        for _ in 0..1000 {
            if let Some(p) = client.try_recv().unwrap() {
                got = Some(p);
                break;
            }
            thread::yield_now();
        }
        assert_eq!(got, Some(Packet::FramesDone { frames: 1 }));
    }

    /// The short-read satellite: a peer that dribbles packets onto the
    /// wire one byte at a time (every read returns a 1-byte prefix) must
    /// still deliver every packet intact and in order — the BytesMut inbox
    /// plus `DecodeError::Incomplete` reassembles frames regardless of how
    /// the stream fragments them.
    #[test]
    fn tcp_survives_dribbling_peer() {
        let packets = vec![
            Packet::GrantCycles {
                cycles: 99,
                quantum: 3,
            },
            Packet::Data {
                seq: 0,
                payload: (0..=255u8).collect(),
            },
            Packet::Data {
                seq: 1,
                payload: vec![],
            },
            Packet::Resync {
                expect_rx: 2,
                quantum: 4,
            },
            Packet::Shutdown,
        ];
        let wire: Vec<u8> = packets.iter().flat_map(|p| p.to_bytes()).collect();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dribbler = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream.set_nodelay(true).unwrap();
            for (i, byte) in wire.iter().enumerate() {
                stream.write_all(std::slice::from_ref(byte)).unwrap();
                stream.flush().unwrap();
                // Yield frequently (and occasionally sleep) so the reader
                // genuinely observes partial frames rather than one
                // coalesced segment.
                if i % 7 == 0 {
                    thread::sleep(Duration::from_micros(50));
                } else {
                    thread::yield_now();
                }
            }
        });

        let mut client = TcpTransport::connect(addr).unwrap();
        for expected in &packets {
            assert_eq!(&client.recv().unwrap(), expected);
        }
        dribbler.join().unwrap();
    }

    /// The client side of a TCP session can reconnect after the server
    /// drops it; the accept side (no dialable address) cannot.
    #[test]
    fn tcp_reconnect_redials_the_original_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            // First session: accept, then hang up without a word.
            let first = TcpTransport::accept(&listener).unwrap();
            drop(first);
            // Second session: serve one echo.
            let mut second = TcpTransport::accept(&listener).unwrap();
            let p = second.recv().unwrap();
            second.send(&p).unwrap();
            second
        });

        let mut client = TcpTransport::connect(addr).unwrap();
        // Wait for the hangup to surface, then re-dial.
        loop {
            match client.recv() {
                Err(TransportError::Disconnected) | Err(TransportError::Io(_)) => break,
                Ok(_) => continue,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        client.reconnect().unwrap();
        let probe = Packet::Data {
            seq: 9,
            payload: vec![1, 2, 3],
        };
        client.send(&probe).unwrap();
        assert_eq!(client.recv().unwrap(), probe);
        let mut accept_side = server.join().unwrap();
        assert!(matches!(
            accept_side.reconnect(),
            Err(TransportError::Disconnected)
        ));
    }

    /// The `Protocol` variant and every `Display` arm format as the
    /// postmortem pipeline expects (the strings land verbatim in fault
    /// reports, so they are contract, not cosmetics).
    #[test]
    fn transport_error_display_formats() {
        assert_eq!(TransportError::Disconnected.to_string(), "peer disconnected");
        assert_eq!(
            TransportError::Decode(DecodeError::BadTag(0x7f)).to_string(),
            "decode error: unknown packet tag 0x7f"
        );
        let io_err = TransportError::Io(io::Error::new(io::ErrorKind::TimedOut, "stalled"));
        assert_eq!(io_err.to_string(), "io error: stalled");
        let proto = TransportError::Protocol {
            got: "GrantCycles",
            at: "synchronizer",
        };
        assert_eq!(
            proto.to_string(),
            "protocol error: unexpected GrantCycles packet at synchronizer"
        );
    }

    /// Transient classification: recovery retries disconnects and I/O
    /// errors but never decode/protocol errors (a peer speaking garbage
    /// will not improve on retry).
    #[test]
    fn transient_classification_guides_recovery() {
        assert!(TransportError::Disconnected.is_transient());
        assert!(TransportError::Io(io::Error::new(io::ErrorKind::TimedOut, "x")).is_transient());
        assert!(!TransportError::Decode(DecodeError::BadTag(0)).is_transient());
        assert!(!TransportError::Protocol {
            got: "Data",
            at: "RTL server"
        }
        .is_transient());
    }
}
