//! Packet transports.
//!
//! The paper's synchronizer communicates "with FireSim by using a TCP
//! listener" (Section 3.4.1). [`TcpTransport`] reproduces that deployment;
//! [`ChannelTransport`] provides the same interface in-process for
//! single-machine co-simulation and tests.

use crate::packet::{DecodeError, Packet};
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// A transport error.
#[derive(Debug)]
pub enum TransportError {
    /// The peer disconnected.
    Disconnected,
    /// A malformed packet arrived.
    Decode(DecodeError),
    /// An I/O error occurred.
    Io(io::Error),
    /// A well-formed packet arrived that the protocol state machine does
    /// not accept here (e.g. a `GrantCycles` at the synchronizer side).
    /// Latched instead of panicking so a confused or malicious peer winds
    /// the mission down through the ordinary fault path (PANIC001).
    Protocol {
        /// The kind of packet that arrived.
        got: &'static str,
        /// Where it arrived (which endpoint rejected it).
        at: &'static str,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Decode(e) => write!(f, "decode error: {e}"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Protocol { got, at } => {
                write!(f, "protocol error: unexpected {got} packet at {at}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

/// A bidirectional, ordered packet pipe.
pub trait Transport {
    /// Sends one packet.
    ///
    /// # Errors
    ///
    /// Returns an error if the peer is gone or I/O fails.
    fn send(&mut self, packet: &Packet) -> Result<(), TransportError>;

    /// Receives the next packet without blocking; `None` if none is ready.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnect or corrupt input.
    fn try_recv(&mut self) -> Result<Option<Packet>, TransportError>;

    /// Receives the next packet, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnect or corrupt input.
    fn recv(&mut self) -> Result<Packet, TransportError>;
}

/// An in-process transport over crossbeam channels.
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Sender<Packet>,
    rx: Receiver<Packet>,
}

impl ChannelTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (tx_a, rx_b) = unbounded();
        let (tx_b, rx_a) = unbounded();
        (
            ChannelTransport { tx: tx_a, rx: rx_a },
            ChannelTransport { tx: tx_b, rx: rx_b },
        )
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, packet: &Packet) -> Result<(), TransportError> {
        self.tx
            .send(packet.clone())
            .map_err(|_| TransportError::Disconnected)
    }

    fn try_recv(&mut self) -> Result<Option<Packet>, TransportError> {
        match self.rx.try_recv() {
            Ok(p) => Ok(Some(p)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn recv(&mut self) -> Result<Packet, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }
}

/// A framed TCP transport.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    inbox: BytesMut,
}

impl TcpTransport {
    /// Connects to a listening peer.
    ///
    /// # Errors
    ///
    /// Any socket error from the connection attempt.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport::from_stream(stream))
    }

    /// Accepts one connection from `listener`.
    ///
    /// # Errors
    ///
    /// Any socket error from `accept`.
    pub fn accept(listener: &TcpListener) -> io::Result<TcpTransport> {
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport::from_stream(stream))
    }

    /// Wraps an existing connected stream.
    pub fn from_stream(stream: TcpStream) -> TcpTransport {
        TcpTransport {
            stream,
            inbox: BytesMut::with_capacity(64 * 1024),
        }
    }

    fn pump(&mut self, blocking: bool) -> Result<(), TransportError> {
        self.stream.set_nonblocking(!blocking)?;
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => {
                    self.inbox.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }

    fn pop(&mut self) -> Result<Option<Packet>, TransportError> {
        match Packet::decode(&mut self.inbox) {
            Ok(p) => Ok(Some(p)),
            Err(DecodeError::Incomplete) => Ok(None),
            Err(e) => Err(TransportError::Decode(e)),
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, packet: &Packet) -> Result<(), TransportError> {
        self.stream.set_nonblocking(false)?;
        self.stream.write_all(&packet.to_bytes())?;
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Packet>, TransportError> {
        if let Some(p) = self.pop()? {
            return Ok(Some(p));
        }
        self.pump(false)?;
        self.pop()
    }

    fn recv(&mut self) -> Result<Packet, TransportError> {
        loop {
            if let Some(p) = self.pop()? {
                return Ok(p);
            }
            self.pump(true)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn channel_roundtrip() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(&Packet::GrantCycles { cycles: 10 }).unwrap();
        a.send(&Packet::Data(vec![1, 2])).unwrap();
        assert_eq!(b.recv().unwrap(), Packet::GrantCycles { cycles: 10 });
        assert_eq!(b.try_recv().unwrap(), Some(Packet::Data(vec![1, 2])));
        assert_eq!(b.try_recv().unwrap(), None);
        b.send(&Packet::Shutdown).unwrap();
        assert_eq!(a.recv().unwrap(), Packet::Shutdown);
    }

    #[test]
    fn channel_disconnect_detected() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert!(matches!(
            a.send(&Packet::Shutdown),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut t = TcpTransport::accept(&listener).unwrap();
            // Echo three packets back.
            for _ in 0..3 {
                let p = t.recv().unwrap();
                t.send(&p).unwrap();
            }
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        let packets = [
            Packet::GrantCycles { cycles: 123 },
            Packet::Data((0..1000u32).flat_map(|i| i.to_le_bytes()).collect()),
            Packet::Shutdown,
        ];
        for p in &packets {
            client.send(p).unwrap();
        }
        for p in &packets {
            assert_eq!(&client.recv().unwrap(), p);
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_try_recv_nonblocking() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || TcpTransport::accept(&listener).unwrap());
        let mut client = TcpTransport::connect(addr).unwrap();
        let mut server = handle.join().unwrap();
        // Nothing sent yet.
        assert!(matches!(client.try_recv(), Ok(None)));
        server.send(&Packet::FramesDone { frames: 1 }).unwrap();
        // Poll until it arrives.
        let mut got = None;
        for _ in 0..1000 {
            if let Some(p) = client.try_recv().unwrap() {
                got = Some(p);
                break;
            }
            thread::yield_now();
        }
        assert_eq!(got, Some(Packet::FramesDone { frames: 1 }));
    }
}
