//! Mission-level robustness acceptance (DESIGN.md §4h).
//!
//! A mission flown over a fault-injected transport must degrade
//! gracefully, never wedge:
//!
//! * recoverable faults (duplicates, stalls, transient disconnects) are
//!   absorbed by the sequenced retry protocol — the flight is
//!   bit-identical to a clean run, under both sync modes;
//! * lossy faults (drops, corruption) cost the application a degraded
//!   iteration via the RX watchdog and the degradation ladder, but the
//!   mission still completes, deterministically;
//! * an exhausted recovery policy latches and winds the mission down at a
//!   sync boundary with a postmortem naming the fault; and
//! * a sustained sensor blackout walks the ladder to a deliberate clean
//!   abort.

use rose::audit::MissionDigest;
use rose::mission::{run_mission, run_mission_with_faults, MissionConfig};
use rose::snapshot::Mission;
use rose_bridge::faults::{FaultKind, FaultPlan};
use rose_bridge::sync::{RecoveryPolicy, SyncMode};
use rose_sim_core::math::Vec3;
use rose_trace::json;

/// A mission short enough for CI but long enough to reach the goal
/// (50 m at 3 m/s ≈ 17.6 s simulated).
fn completing(sync_mode: SyncMode) -> MissionConfig {
    MissionConfig {
        max_sim_seconds: 25.0,
        sync_mode,
        ..MissionConfig::default()
    }
}

#[test]
fn recoverable_faults_are_absorbed_bit_identically_in_both_sync_modes() {
    // Only kinds the retry protocol makes transparent: duplicated data is
    // deduplicated by sequence number, stalled receives and a transient
    // mid-flight disconnect are retried/resynced.
    let plan = || {
        FaultPlan::new(0xFA17)
            .with_event(180, FaultKind::Duplicate)
            .with_event(360, FaultKind::Stall { ops: 2 })
            .with_event(450, FaultKind::Disconnect { ops: 2 })
    };
    let clean = MissionDigest::of(&run_mission(&completing(SyncMode::Sequential)));

    let mut digests = Vec::new();
    for sync_mode in [SyncMode::Sequential, SyncMode::Parallel] {
        let outcome = run_mission_with_faults(&completing(sync_mode), plan());
        assert_eq!(
            outcome.latched, None,
            "{sync_mode:?}: transient faults must not latch"
        );
        assert!(!outcome.aborted, "{sync_mode:?}: no degradation armed");
        assert!(
            outcome.report.completed,
            "{sync_mode:?}: the mission must still reach the goal"
        );
        let stats = outcome.fault_stats;
        assert_eq!(stats.duplicated, 1);
        assert!(stats.stalled_ops >= 1);
        assert!(stats.disconnected_ops >= 1);
        // Absorbing the faults cost retries, attributed on the host side —
        // never to the simulated system.
        assert!(
            outcome.recovery.retries >= 1,
            "{sync_mode:?}: recovery must have retried, stats {:?}",
            outcome.recovery
        );
        assert_eq!(outcome.report.app.lost_responses, 0);
        digests.push(MissionDigest::of(&outcome.report));
    }

    // Same seed ⇒ bit-identical flight across sync modes, and identical
    // to the fault-free run: recoverable faults are unobservable to the
    // simulated system.
    assert_eq!(digests[0], digests[1], "sync modes diverged under faults");
    assert_eq!(
        digests[0], clean,
        "fault absorption perturbed the simulated mission"
    );
}

#[test]
fn lossy_faults_degrade_deterministically_and_the_mission_still_completes() {
    // Every kind at once, including the lossy ones: a dropped sensor
    // response is gone (the server's dedupe floor jumps past it), so the
    // SoC's RX watchdog fires and the application flies that iteration
    // degraded instead of wedging forever.
    let plan = || {
        FaultPlan::new(0xD01)
            .with_event(120, FaultKind::Drop)
            .with_event(180, FaultKind::Duplicate)
            .with_event(240, FaultKind::Reorder)
            .with_event(300, FaultKind::Corrupt)
            .with_event(360, FaultKind::Stall { ops: 2 })
            .with_event(450, FaultKind::Disconnect { ops: 2 })
    };

    let mut digests = Vec::new();
    for sync_mode in [SyncMode::Sequential, SyncMode::Parallel] {
        let outcome = run_mission_with_faults(&completing(sync_mode), plan());
        assert_eq!(outcome.latched, None, "{sync_mode:?}");
        assert!(
            outcome.report.completed,
            "{sync_mode:?}: a lost packet must degrade, not wedge"
        );
        let stats = outcome.fault_stats;
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.corrupted, 1);
        // The dropped response tripped the watchdog exactly once.
        assert_eq!(
            outcome.report.app.lost_responses, 1,
            "{sync_mode:?}: app metrics {:?}",
            outcome.report.app
        );
        digests.push(MissionDigest::of(&outcome.report));
    }
    assert_eq!(digests[0], digests[1], "sync modes diverged under faults");

    // And the perturbed flight is repeatable run-to-run.
    let again = run_mission_with_faults(&completing(SyncMode::Parallel), plan());
    assert_eq!(
        MissionDigest::of(&again.report),
        digests[1],
        "same plan, same seed, different flight"
    );
}

#[test]
fn exhausted_recovery_latches_and_winds_down_cleanly() {
    let config = MissionConfig {
        max_sim_seconds: 5.0,
        // A policy tight enough that a long outage exhausts it quickly.
        recovery: RecoveryPolicy {
            max_retries: 2,
            backoff_base: 1,
            backoff_cap: 2,
        },
        ..MissionConfig::default()
    };
    // An outage far longer than the policy tolerates.
    let plan = FaultPlan::new(1).with_event(60, FaultKind::Disconnect { ops: 100_000 });
    let outcome = run_mission_with_faults(&config, plan);
    assert!(
        outcome.latched.is_some(),
        "an unsurvivable outage must latch"
    );
    assert!(!outcome.report.completed, "the mission wound down early");
    // The wind-down is orderly: a transport-fault postmortem names the
    // failure instead of a panic or a hang.
    let reasons: Vec<_> = outcome
        .report
        .postmortems
        .iter()
        .map(|pm| {
            json::parse(pm)
                .expect("postmortem is valid JSON")
                .get("reason")
                .and_then(|v| v.as_str())
                .map(str::to_owned)
        })
        .collect();
    assert!(
        reasons.iter().any(|r| r.as_deref() == Some("transport-fault")),
        "postmortems: {reasons:?}"
    );
}

/// A config whose sensors degrade mid-flight: a depth blackout window and
/// an IMU bias step, with tracing on so the digest covers event ordering.
fn degraded(sync_mode: SyncMode) -> MissionConfig {
    MissionConfig {
        max_sim_seconds: 2.0,
        trace: true,
        sync_mode,
        depth_blackouts: vec![(0.5, 0.9)],
        imu_bias_steps: vec![(0.3, Vec3::new(0.02, -0.01, 0.0))],
        controller: rose::app::ControllerChoice::dynamic_default(),
        ..MissionConfig::default()
    }
}

#[test]
fn degraded_mission_survives_snapshot_and_resume_bit_identically() {
    for sync_mode in [SyncMode::Sequential, SyncMode::Parallel] {
        let config = degraded(sync_mode);
        let straight = MissionDigest::of(&run_mission(&config));
        // Boundaries before, inside, and after the blackout window.
        for boundary in [1, 40, 70] {
            let mut mission = Mission::start(&config);
            mission.run_syncs(boundary);
            let resumed = mission.snapshot().resume().expect("snapshot must resume");
            assert_eq!(
                MissionDigest::of(&resumed.run_to_completion()),
                straight,
                "{sync_mode:?}: divergence after snapshot at sync {boundary}"
            );
        }
    }
}

#[test]
fn sustained_blackout_walks_the_ladder_to_a_clean_abort() {
    let config = MissionConfig {
        max_sim_seconds: 20.0,
        controller: rose::app::ControllerChoice::dynamic_default(),
        // The depth sensor dies at t=1 s and never comes back...
        depth_blackouts: vec![(1.0, 1e9)],
        // ...so after 10 consecutive degraded iterations the application
        // requests a clean abort.
        degraded_abort_streak: 10,
        ..MissionConfig::default()
    };
    let report = run_mission(&config);
    assert!(report.app.abort_requested, "the ladder must reach the abort rung");
    assert!(!report.completed, "an aborted mission does not reach the goal");
    assert!(report.app.degraded_depth >= 10);
    // The abort is documented, not silent.
    let aborts = report
        .postmortems
        .iter()
        .filter(|pm| {
            json::parse(pm)
                .expect("postmortem is valid JSON")
                .get("reason")
                .and_then(|v| v.as_str())
                == Some("mission-abort")
        })
        .count();
    assert_eq!(aborts, 1, "exactly one abort postmortem");
}
