//! Forced-failure postmortems (DESIGN.md §4f acceptance).
//!
//! The flight recorder must turn an injected failure into a postmortem
//! JSON that *names the cause*: a mission flown with an impossible control
//! deadline dumps a `deadline-miss` postmortem whose attribution blames
//! compute, and a mission whose remote RTL peer dies dumps a
//! `transport-fault` postmortem carrying the latched fault.

use rose::mission::{mission_parts, run_mission, MissionConfig};
use rose_bridge::sync::{RemoteRtl, Synchronizer};
use rose_bridge::transport::ChannelTransport;
use rose_trace::flight::POSTMORTEM_SCHEMA;
use rose_trace::json;
use rose_trace::{FlightRecorder, FlightSample};

#[test]
fn deadline_miss_postmortem_blames_compute() {
    let config = MissionConfig {
        max_sim_seconds: 2.0,
        trace: true,
        // One SoC cycle of budget: every control-loop response misses, so
        // the very first completed command trips the recorder.
        deadline_budget_s: 1e-9,
        ..MissionConfig::default()
    };
    let report = run_mission(&config);
    let misses = report.app.deadline_misses;
    assert!(misses > 0, "the 1ns budget must be unmeetable");
    assert!(
        !report.postmortems.is_empty(),
        "deadline misses must auto-dump a postmortem"
    );

    let parsed = json::parse(&report.postmortems[0]).expect("postmortem is valid JSON");
    assert_eq!(
        parsed.get("schema").and_then(|v| v.as_str()),
        Some(POSTMORTEM_SCHEMA)
    );
    assert_eq!(
        parsed.get("reason").and_then(|v| v.as_str()),
        Some("deadline-miss")
    );
    // The control loop is compute-bound (DNN kernels on the modeled SoC),
    // and the mission was traced — attribution must finger compute, not
    // the bridge or an rx stall.
    let dominant = parsed
        .get("attribution")
        .and_then(|a| a.get("dominant"))
        .and_then(|v| v.as_str());
    assert_eq!(
        dominant,
        Some("compute"),
        "postmortem: {}",
        report.postmortems[0]
    );
    // The ring carries context, not just the trigger sample.
    let ring = parsed.get("ring").and_then(|r| r.as_array()).expect("ring");
    assert!(!ring.is_empty());
}

#[test]
fn telemetry_does_not_perturb_the_digest_in_either_sync_mode() {
    use rose::audit::MissionDigest;
    use rose_bridge::sync::SyncMode;

    // Full observability armed: tracing, histograms, deadline accounting,
    // flight recorder. The digest must not notice, and Sequential must
    // still reproduce Parallel bit-for-bit.
    let instrumented = |sync_mode| {
        MissionConfig {
            max_sim_seconds: 2.0,
            trace: true,
            deadline_budget_s: 0.05,
            sync_mode,
            ..MissionConfig::default()
        }
    };
    let bare = MissionConfig {
        max_sim_seconds: 2.0,
        trace: true,
        ..MissionConfig::default()
    };
    let sequential = MissionDigest::of(&run_mission(&instrumented(SyncMode::Sequential)));
    let parallel = MissionDigest::of(&run_mission(&instrumented(SyncMode::Parallel)));
    assert_eq!(sequential, parallel, "sync modes diverged under telemetry");
    // The deadline budget only adds host-side accounting — the flown
    // trajectory and SoC state are untouched.
    let unbudgeted = MissionDigest::of(&run_mission(&bare));
    assert_eq!(sequential.trajectory, unbudgeted.trajectory);
    assert_eq!(sequential.soc, unbudgeted.soc);
}

#[test]
fn transport_fault_postmortem_names_the_latched_fault() {
    let config = MissionConfig {
        max_sim_seconds: 1.0,
        ..MissionConfig::default()
    };
    let (env, rtl, sync_config, _metrics) = mission_parts(&config);
    drop(rtl); // the SoC never comes up behind the transport...

    let (client, server) = ChannelTransport::pair();
    drop(server); // ...and the peer is gone before the first grant.
    let mut sync = Synchronizer::new(sync_config, env, RemoteRtl::new(client));
    let mut flight = FlightRecorder::default();

    sync.run_until(10, |_, _| false);
    let fault = sync
        .rtl()
        .fault()
        .expect("a dead peer must latch a transport fault")
        .to_string();

    // The mission driver folds the latch into the next flight sample,
    // exactly as a remote deployment's loop would.
    let sample = FlightSample {
        sync: sync.stats().syncs,
        fault: true,
        ..FlightSample::default()
    };
    let postmortem = flight
        .observe(sample, &[])
        .expect("fault latch must rise-edge a postmortem");

    let parsed = json::parse(&postmortem).expect("postmortem is valid JSON");
    assert_eq!(
        parsed.get("reason").and_then(|v| v.as_str()),
        Some("transport-fault")
    );
    assert!(!fault.is_empty(), "TransportError must render a message");
    // A second observation with the fault still latched is not a new
    // edge: the recorder dumps once per failure, not once per sync.
    let again = FlightSample {
        sync: sample.sync + 1,
        fault: true,
        ..FlightSample::default()
    };
    assert!(flight.observe(again, &[]).is_none());
}
