//! A sensor-fusion controller with irregular, data-dependent branch
//! execution (the paper's §6: "controller networks that perform sensor
//! fusion have separate backbones for each class of sensor ... branches of
//! the network can be executed at different rates depending on sensor
//! data, providing opportunities for both software and hardware schedulers
//! to improve performance").
//!
//! [`FusionApp`] runs two backbones on the simulated SoC:
//!
//! * an **IMU branch** — a small MLP over inertial samples, executed every
//!   control step (cheap, ~ms);
//! * an **image branch** — the convolutional trail classifier, executed
//!   only when the vehicle state demands fresh vision: the IMU reports
//!   high angular rate (aggressive maneuvering) or the last image is
//!   stale.
//!
//! The resulting SoC load is bimodal and data-dependent — exactly the
//! irregular execution pattern the paper points at for future scheduler
//! research.

use crate::app::ControlGains;
use crate::message::{AppMessage, TrailInfo};
use parking_lot::Mutex;
use rose_dnn::lower::{lower_inference, LoweringConfig};
use rose_dnn::perception::PerceptionHead;
use rose_dnn::DnnModel;
use rose_sim_core::rng::SimRng;
use rose_socsim::kernel::Kernel;
use rose_socsim::program::{ProgContext, TargetProgram};
use rose_socsim::TargetOp;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Fusion-controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusionConfig {
    /// The vision backbone.
    pub image_model: DnnModel,
    /// Gyro magnitude (rad/s) above which fresh vision is demanded.
    pub gyro_threshold: f64,
    /// Maximum image staleness (control steps) before a refresh.
    pub max_staleness: u32,
    /// IMU MLP hidden width (the IMU branch is `6 → hidden → hidden → 8`).
    pub imu_hidden: usize,
}

impl Default for FusionConfig {
    fn default() -> FusionConfig {
        FusionConfig {
            image_model: DnnModel::ResNet14,
            gyro_threshold: 0.35,
            max_staleness: 8,
            imu_hidden: 64,
        }
    }
}

/// Metrics recorded by the fusion application.
#[derive(Debug, Clone, Default)]
pub struct FusionMetrics {
    /// Control steps executed.
    pub steps: u64,
    /// Steps that ran the image branch.
    pub image_branch_runs: u64,
    /// Steps that ran only the IMU branch.
    pub imu_only_runs: u64,
    /// Steps that flew on the previous inertial estimate because the IMU
    /// reply failed to decode (sensor-loss dead-reckoning).
    pub dead_reckoned: u64,
    /// Per-step latency in cycles (request → command).
    pub latencies_cycles: Vec<u64>,
}

impl FusionMetrics {
    /// Fraction of steps that executed the (expensive) image branch.
    pub fn image_branch_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.image_branch_runs as f64 / self.steps as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    RequestImu,
    AwaitImu,
    RequestImage,
    AwaitImage,
    Compute,
    SendCommand,
}

/// The sensor-fusion target program.
pub struct FusionApp {
    config: FusionConfig,
    velocity: f64,
    gains: ControlGains,
    image_plan: Vec<TargetOp>,
    imu_plan: Vec<TargetOp>,
    head: PerceptionHead,
    state: State,
    queue: VecDeque<TargetOp>,
    run_image_branch: bool,
    staleness: u32,
    last_gyro_z: f64,
    last_trail: TrailInfo,
    request_cycle: u64,
    metrics: Arc<Mutex<FusionMetrics>>,
}

impl std::fmt::Debug for FusionApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusionApp")
            .field("config", &self.config)
            .field("state", &self.state)
            .finish()
    }
}

impl FusionApp {
    /// Builds the application and its shared metrics handle.
    pub fn new(
        config: FusionConfig,
        has_accelerator: bool,
        velocity: f64,
        rng: &SimRng,
    ) -> (FusionApp, Arc<Mutex<FusionMetrics>>) {
        let image_plan = lower_inference(
            &config.image_model.plan(),
            has_accelerator,
            &LoweringConfig::default(),
        );
        // IMU branch: a 3-layer MLP with a small framework cost; runs on
        // the CPU (too small for the mesh).
        let h = config.imu_hidden;
        let imu_plan = vec![
            TargetOp::CpuKernel(Kernel::FrameworkNode { tensors: 3 }),
            TargetOp::CpuKernel(Kernel::MatMul { m: 1, k: 6, n: h }),
            TargetOp::CpuKernel(Kernel::Elementwise {
                n: h,
                kind: rose_socsim::kernel::ElemKind::Relu,
            }),
            TargetOp::CpuKernel(Kernel::MatMul { m: 1, k: h, n: h }),
            TargetOp::CpuKernel(Kernel::Elementwise {
                n: h,
                kind: rose_socsim::kernel::ElemKind::Relu,
            }),
            TargetOp::CpuKernel(Kernel::MatMul { m: 1, k: h, n: 8 }),
        ];
        let metrics = Arc::new(Mutex::new(FusionMetrics::default()));
        (
            FusionApp {
                head: PerceptionHead::new(config.image_model, rng),
                config,
                velocity,
                gains: ControlGains::default(),
                image_plan,
                imu_plan,
                state: State::RequestImu,
                queue: VecDeque::new(),
                run_image_branch: true, // first step always sees the world
                staleness: 0,
                last_gyro_z: 0.0,
                last_trail: TrailInfo::default(),
                request_cycle: 0,
                metrics: Arc::clone(&metrics),
            },
            metrics,
        )
    }
}

impl TargetProgram for FusionApp {
    fn next_op(&mut self, ctx: &mut ProgContext) -> TargetOp {
        loop {
            match self.state {
                State::RequestImu => {
                    self.request_cycle = ctx.now();
                    self.state = State::AwaitImu;
                    return TargetOp::Send(AppMessage::ImuRequest.encode());
                }
                State::AwaitImu => match ctx.take_message() {
                    None => return TargetOp::Recv,
                    Some(bytes) => {
                        if let Ok(AppMessage::Imu { gyro, .. }) = AppMessage::decode(&bytes) {
                            self.last_gyro_z = gyro[2];
                        } else {
                            // Sensor loss: dead-reckon on the previous
                            // inertial estimate rather than latch up.
                            self.metrics.lock().dead_reckoned += 1;
                        }
                        // Data-dependent branch decision: fresh vision on
                        // aggressive maneuvers or stale features.
                        self.run_image_branch = self.last_gyro_z.abs()
                            > self.config.gyro_threshold
                            || self.staleness >= self.config.max_staleness;
                        self.state = if self.run_image_branch {
                            State::RequestImage
                        } else {
                            State::Compute
                        };
                    }
                },
                State::RequestImage => {
                    self.state = State::AwaitImage;
                    return TargetOp::Send(AppMessage::ImageRequest.encode());
                }
                State::AwaitImage => match ctx.take_message() {
                    None => return TargetOp::Recv,
                    Some(bytes) => {
                        if let Ok(AppMessage::Image { trail, .. }) = AppMessage::decode(&bytes) {
                            self.last_trail = trail;
                        }
                        self.state = State::Compute;
                    }
                },
                State::Compute => {
                    // Queue the branch workloads: IMU MLP always, conv
                    // backbone only when triggered.
                    self.queue = self.imu_plan.iter().cloned().collect();
                    if self.run_image_branch {
                        self.queue.extend(self.image_plan.iter().cloned());
                        self.staleness = 0;
                    } else {
                        self.staleness += 1;
                    }
                    self.state = State::SendCommand;
                }
                State::SendCommand => {
                    if let Some(op) = self.queue.pop_front() {
                        return op;
                    }
                    let out = self.head.classify(
                        self.last_trail.heading_error,
                        self.last_trail.lateral_offset,
                        self.last_trail.half_width,
                    );
                    let yaw_rate =
                        self.gains.beta_yaw * (out.angular.right() - out.angular.left());
                    let lateral =
                        self.gains.beta_lateral * (out.lateral.right() - out.lateral.left());
                    {
                        let mut m = self.metrics.lock();
                        m.steps += 1;
                        if self.run_image_branch {
                            m.image_branch_runs += 1;
                        } else {
                            m.imu_only_runs += 1;
                        }
                        m.latencies_cycles
                            .push(ctx.now().saturating_sub(self.request_cycle));
                    }
                    self.state = State::RequestImu;
                    return TargetOp::Send(
                        AppMessage::Command {
                            forward: self.velocity,
                            lateral,
                            yaw_rate,
                            altitude: 1.5,
                        }
                        .encode(),
                    );
                }
            }
        }
    }

    fn name(&self) -> &str {
        "sensor-fusion"
    }
}

/// Outcome of a fusion-controlled mission.
#[derive(Debug, Clone)]
pub struct FusionMissionReport {
    /// True if the UAV reached the goal in time.
    pub completed: bool,
    /// Simulated seconds to goal.
    pub mission_time_s: Option<f64>,
    /// Collision events.
    pub collisions: u32,
    /// Branch-rate and latency metrics.
    pub metrics: FusionMetrics,
}

/// Runs a closed-loop mission with the fusion controller.
pub fn run_fusion_mission(
    mission: &crate::mission::MissionConfig,
    fusion: FusionConfig,
) -> FusionMissionReport {
    use crate::mission::mission_parts_with_program;
    use rose_bridge::sync::Synchronizer;

    let rng = SimRng::new(mission.seed);
    let (app, metrics) = FusionApp::new(
        fusion,
        mission.soc.has_accelerator(),
        mission.velocity,
        &rng,
    );
    let (env, rtl, sync_config) = mission_parts_with_program(mission, Box::new(app));
    let mut sync = Synchronizer::new(sync_config, env, rtl);
    let max_syncs = (mission.max_sim_seconds * mission.frame_hz as f64
        / mission.frames_per_sync as f64)
        .ceil() as u64;
    sync.run_until(max_syncs, |env, _| env.sim().mission_complete());

    let (env, _rtl) = sync.into_parts();
    let sim = env.into_sim();
    let completed = sim.mission_complete();
    let snapshot = metrics.lock().clone();
    FusionMissionReport {
        completed,
        mission_time_s: completed.then(|| sim.time()),
        collisions: sim.collision_count(),
        metrics: snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mission::MissionConfig;
    use rose_envsim::WorldKind;

    #[test]
    fn fusion_mission_completes_tunnel() {
        let mission = MissionConfig {
            max_sim_seconds: 45.0,
            ..MissionConfig::default()
        };
        let r = run_fusion_mission(&mission, FusionConfig::default());
        assert!(r.completed, "fusion controller should finish the tunnel");
        assert!(r.metrics.steps > 50);
        // A healthy transport never forces a dead-reckoned step.
        assert_eq!(r.metrics.dead_reckoned, 0);
        // In a straight tunnel, most steps are IMU-only (low angular
        // rates): the image branch runs at a reduced, irregular rate.
        let rate = r.metrics.image_branch_rate();
        assert!(
            (0.05..0.8).contains(&rate),
            "image branch rate {rate} should be sparse but nonzero"
        );
    }

    #[test]
    fn curvy_world_raises_the_image_branch_rate() {
        let tunnel = run_fusion_mission(
            &MissionConfig {
                max_sim_seconds: 30.0,
                ..MissionConfig::default()
            },
            FusionConfig::default(),
        );
        let s_shape = run_fusion_mission(
            &MissionConfig {
                world: WorldKind::SShape,
                velocity: 6.0,
                max_sim_seconds: 30.0,
                ..MissionConfig::default()
            },
            FusionConfig::default(),
        );
        assert!(
            s_shape.metrics.image_branch_rate() > tunnel.metrics.image_branch_rate(),
            "s-shape {} vs tunnel {}",
            s_shape.metrics.image_branch_rate(),
            tunnel.metrics.image_branch_rate()
        );
    }

    #[test]
    fn latencies_are_bimodal() {
        let mission = MissionConfig {
            world: WorldKind::SShape,
            velocity: 6.0,
            max_sim_seconds: 30.0,
            ..MissionConfig::default()
        };
        let r = run_fusion_mission(&mission, FusionConfig::default());
        let (mut cheap, mut expensive) = (0u32, 0u32);
        for &lat in &r.metrics.latencies_cycles {
            if lat < 40_000_000 {
                cheap += 1; // IMU-only step (< 40 ms)
            } else if lat > 80_000_000 {
                expensive += 1; // image-branch step (> 80 ms)
            }
        }
        assert!(cheap > 0, "expected cheap IMU-only steps");
        assert!(expensive > 0, "expected expensive image-branch steps");
    }
}
