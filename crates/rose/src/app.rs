//! The trail-navigation target programs.
//!
//! These are the companion-computer applications of the evaluation: a
//! DNN-based end-to-end controller that requests a camera frame over the
//! RoSÉ I/O, runs inference on the simulated SoC, and sends angular and
//! linear velocity targets to the flight controller (Sections 4.2.2, 5.2).
//!
//! Two variants exist, selected by [`ControllerChoice`]:
//!
//! * **Static** — one fixed network (Figures 10–12, 14).
//! * **Dynamic** — the dynamic runtime of Section 5.3: reads the forward
//!   depth sensor, computes the deadline (Equations 3–5), and selects the
//!   high-accuracy network when time allows or the low-latency network
//!   (with an argmax policy) when a collision is imminent.

use crate::deadline::DeadlineModel;
use crate::message::{AppMessage, TrailInfo};
use parking_lot::Mutex;
use rose_dnn::lower::{lower_inference, LoweringConfig};
use rose_dnn::perception::PerceptionHead;
use rose_dnn::DnnModel;
use rose_sim_core::rng::SimRng;
use rose_sim_core::snap::{SnapError, SnapReader, SnapWriter};
use rose_socsim::program::{ProgContext, TargetProgram};
use rose_socsim::TargetOp;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Controller gains β of Equation 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlGains {
    /// β_l: lateral velocity per unit class-probability difference (m/s).
    pub beta_lateral: f64,
    /// β_ω: yaw rate per unit class-probability difference (rad/s).
    pub beta_yaw: f64,
}

impl Default for ControlGains {
    fn default() -> ControlGains {
        ControlGains {
            beta_lateral: 3.0,
            beta_yaw: 2.5,
        }
    }
}

impl ControlGains {
    /// Serializes the gains.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let ControlGains {
            beta_lateral,
            beta_yaw,
        } = self;
        w.f64(*beta_lateral);
        w.f64(*beta_yaw);
    }

    /// Restores gains.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<ControlGains, SnapError> {
        Ok(ControlGains {
            beta_lateral: r.f64()?,
            beta_yaw: r.f64()?,
        })
    }
}

/// Which controller runs on the companion computer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControllerChoice {
    /// A single fixed DNN.
    Static(DnnModel),
    /// The dynamic runtime: select per-inference based on the deadline.
    Dynamic {
        /// Low-latency fallback network (run with an argmax policy).
        fast: DnnModel,
        /// High-accuracy network used when the deadline allows.
        accurate: DnnModel,
        /// Switch to `fast` when `t_process` (Eq. 5) drops below this (s).
        threshold_s: f64,
    },
}

impl ControllerChoice {
    /// The paper's dynamic configuration: ResNet14 + ResNet6 (Section 5.3).
    pub fn dynamic_default() -> ControllerChoice {
        ControllerChoice::Dynamic {
            fast: DnnModel::ResNet6,
            accurate: DnnModel::ResNet14,
            threshold_s: 0.35,
        }
    }

    /// Serializes the controller choice with a stable one-byte tag.
    pub fn save_state(&self, w: &mut SnapWriter) {
        match self {
            ControllerChoice::Static(model) => {
                w.u8(0);
                model.save_state(w);
            }
            ControllerChoice::Dynamic {
                fast,
                accurate,
                threshold_s,
            } => {
                w.u8(1);
                fast.save_state(w);
                accurate.save_state(w);
                w.f64(*threshold_s);
            }
        }
    }

    /// Restores a controller choice.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::BadTag`] on an unknown tag.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<ControllerChoice, SnapError> {
        match r.u8()? {
            0 => Ok(ControllerChoice::Static(DnnModel::restore_state(r)?)),
            1 => Ok(ControllerChoice::Dynamic {
                fast: DnnModel::restore_state(r)?,
                accurate: DnnModel::restore_state(r)?,
                threshold_s: r.f64()?,
            }),
            tag => Err(SnapError::BadTag {
                context: "ControllerChoice",
                tag,
            }),
        }
    }
}

/// Metrics the application records as it flies (the quantitative metrics
/// of the artifact: DNN latency, inference counts, model selections).
#[derive(Debug, Clone, Default)]
pub struct AppMetrics {
    /// Completed inferences.
    pub inferences: u64,
    /// Per-inference latency, image request → command send, in cycles
    /// (Figure 16c's measurement).
    pub latencies_cycles: Vec<u64>,
    /// Velocity commands sent.
    pub commands: u64,
    /// Inferences executed with the fast (argmax) network.
    pub fast_inferences: u64,
    /// Deadline evaluations that selected the fast network.
    pub deadline_switches: u64,
    /// Control-loop iterations whose request→command latency exceeded the
    /// mission's deadline budget (0 when no budget is configured).
    pub deadline_misses: u64,
    /// Distribution of per-frame control-loop slack: deadline budget minus
    /// observed latency, in cycles. A miss records into the underflow
    /// bucket (slack clamps to 0). Host telemetry (DESIGN.md §4f): not
    /// snapshotted, so a resumed branch observes only its own suffix.
    pub slack_cycles: rose_trace::LogHistogram,
    /// Control-loop iterations flown without a valid depth reading (the
    /// sensor answered the blackout sentinel).
    pub degraded_depth: u64,
    /// Commands computed by the classical fallback controller instead of
    /// the DNN (deadline-pressure rung of the degradation ladder).
    pub classical_commands: u64,
    /// Set once the degraded-iteration streak crossed the mission's abort
    /// threshold; the mission loop winds down cleanly when it sees this.
    pub abort_requested: bool,
    /// Sensor responses the SoC's RX watchdog gave up on (lost in flight
    /// on a lossy transport); each one degrades that iteration.
    pub lost_responses: u64,
}

impl AppMetrics {
    /// Mean inference latency in cycles (0 if none).
    pub fn mean_latency_cycles(&self) -> f64 {
        if self.latencies_cycles.is_empty() {
            0.0
        } else {
            self.latencies_cycles.iter().sum::<u64>() as f64 / self.latencies_cycles.len() as f64
        }
    }
}

impl rose_trace::MetricSource for AppMetrics {
    fn record_metrics(&self, registry: &mut rose_trace::MetricRegistry) {
        registry.set_counter("app.inferences", self.inferences);
        registry.set_counter("app.commands", self.commands);
        registry.set_counter("app.fast_inferences", self.fast_inferences);
        registry.set_counter("app.deadline_switches", self.deadline_switches);
        registry.set_counter("app.deadline_misses", self.deadline_misses);
        registry.set_counter("app.degraded_depth", self.degraded_depth);
        registry.set_counter("app.classical_commands", self.classical_commands);
        registry.set_counter("app.lost_responses", self.lost_responses);
        registry.gauge("app.abort_requested", self.abort_requested as u8 as f64);
        registry.gauge("app.mean_latency_cycles", self.mean_latency_cycles());
        for &lat in &self.latencies_cycles {
            registry.observe("app.latency_cycles", lat as f64);
        }
        registry.record_histogram("app.slack_cycles", &self.slack_cycles);
    }
}

impl AppMetrics {
    fn save_state(&self, w: &mut SnapWriter) {
        let AppMetrics {
            inferences,
            latencies_cycles,
            commands,
            fast_inferences,
            deadline_switches,
            deadline_misses,
            // Host telemetry (DESIGN.md §4f): a resumed branch re-observes
            // only its own suffix; the shared prefix is recovered by
            // `MetricRegistry::delta_since` when merging forks.
            slack_cycles: _,
            degraded_depth,
            classical_commands,
            abort_requested,
            lost_responses,
        } = self;
        w.u64(*inferences);
        w.usize(latencies_cycles.len());
        for &lat in latencies_cycles {
            w.u64(lat);
        }
        w.u64(*commands);
        w.u64(*fast_inferences);
        w.u64(*deadline_switches);
        w.u64(*deadline_misses);
        w.u64(*degraded_depth);
        w.u64(*classical_commands);
        w.bool(*abort_requested);
        w.u64(*lost_responses);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.inferences = r.u64()?;
        let n = r.usize()?;
        self.latencies_cycles.clear();
        for _ in 0..n {
            self.latencies_cycles.push(r.u64()?);
        }
        self.commands = r.u64()?;
        self.fast_inferences = r.u64()?;
        self.deadline_switches = r.u64()?;
        self.deadline_misses = r.u64()?;
        self.slack_cycles = rose_trace::LogHistogram::new();
        self.degraded_depth = r.u64()?;
        self.classical_commands = r.u64()?;
        self.abort_requested = r.bool()?;
        self.lost_responses = r.u64()?;
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Request the depth sensor (dynamic runtime only).
    RequestDepth,
    AwaitDepth,
    RequestImage,
    AwaitImage,
    /// Drain the lowered inference ops.
    Inference,
    SendCommand,
}

impl State {
    fn save_state(self, w: &mut SnapWriter) {
        w.u8(match self {
            State::RequestDepth => 0,
            State::AwaitDepth => 1,
            State::RequestImage => 2,
            State::AwaitImage => 3,
            State::Inference => 4,
            State::SendCommand => 5,
        });
    }

    fn restore_state(r: &mut SnapReader<'_>) -> Result<State, SnapError> {
        match r.u8()? {
            0 => Ok(State::RequestDepth),
            1 => Ok(State::AwaitDepth),
            2 => Ok(State::RequestImage),
            3 => Ok(State::AwaitImage),
            4 => Ok(State::Inference),
            5 => Ok(State::SendCommand),
            tag => Err(SnapError::BadTag {
                context: "TrailNavApp::State",
                tag,
            }),
        }
    }
}

/// The trail-navigation application (a [`TargetProgram`]).
pub struct TrailNavApp {
    choice: ControllerChoice,
    gains: ControlGains,
    velocity: f64,
    altitude: f64,
    deadline: DeadlineModel,
    /// Lowered inference ops per model (accurate first, fast second for
    /// the dynamic runtime).
    plans: Vec<(DnnModel, Vec<TargetOp>)>,
    heads: Vec<(DnnModel, PerceptionHead)>,
    state: State,
    queue: VecDeque<TargetOp>,
    current_model: DnnModel,
    use_argmax: bool,
    last_trail: TrailInfo,
    request_cycle: u64,
    /// Control-loop deadline budget in SoC cycles (0 = no budget; never
    /// counts a miss). Structural config, like `gains`.
    deadline_budget_cycles: u64,
    /// True while the deadline-pressure rung of the degradation ladder is
    /// engaged: the next iteration skips the DNN and computes a classical
    /// proportional command instead.
    use_classical: bool,
    /// True when this iteration's depth reading was the blackout sentinel.
    depth_degraded: bool,
    /// Consecutive degraded iterations (invalid depth or deadline miss).
    degraded_streak: u64,
    /// Degraded-streak length that requests a clean mission abort
    /// (0 = never abort). Structural config.
    abort_after_degraded: u64,
    metrics: Arc<Mutex<AppMetrics>>,
}

impl std::fmt::Debug for TrailNavApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrailNavApp")
            .field("choice", &self.choice)
            .field("state", &self.state)
            .field("velocity", &self.velocity)
            .finish()
    }
}

impl TrailNavApp {
    /// Builds the application.
    ///
    /// * `choice` — static or dynamic controller selection.
    /// * `has_accelerator` — lowers convolutions to the accelerator or to
    ///   CPU kernels (Table 2 config C).
    /// * `velocity` — the forward velocity target (m/s).
    /// * `rng` — noise stream for the perception heads.
    ///
    /// Returns the program plus a shared handle to its metrics.
    pub fn new(
        choice: ControllerChoice,
        has_accelerator: bool,
        velocity: f64,
        rng: &SimRng,
    ) -> (TrailNavApp, Arc<Mutex<AppMetrics>>) {
        let models: Vec<DnnModel> = match choice {
            ControllerChoice::Static(m) => vec![m],
            ControllerChoice::Dynamic { fast, accurate, .. } => vec![accurate, fast],
        };
        let lowering = LoweringConfig::default();
        let plans: Vec<(DnnModel, Vec<TargetOp>)> = models
            .iter()
            .map(|&m| {
                (
                    m,
                    lower_inference(&m.plan(), has_accelerator, &lowering),
                )
            })
            .collect();
        let heads = models
            .iter()
            .map(|&m| (m, PerceptionHead::new(m, rng)))
            .collect();
        let metrics = Arc::new(Mutex::new(AppMetrics::default()));
        let initial_state = match choice {
            ControllerChoice::Static(_) => State::RequestImage,
            ControllerChoice::Dynamic { .. } => State::RequestDepth,
        };
        let app = TrailNavApp {
            current_model: models[0],
            choice,
            gains: ControlGains::default(),
            velocity,
            altitude: 1.5,
            deadline: DeadlineModel::default(),
            plans,
            heads,
            state: initial_state,
            queue: VecDeque::new(),
            use_argmax: false,
            last_trail: TrailInfo::default(),
            request_cycle: 0,
            deadline_budget_cycles: 0,
            use_classical: false,
            depth_degraded: false,
            degraded_streak: 0,
            abort_after_degraded: 0,
            metrics: Arc::clone(&metrics),
        };
        (app, metrics)
    }

    /// Overrides the control gains.
    pub fn set_gains(&mut self, gains: ControlGains) {
        self.gains = gains;
    }

    /// Arms the per-frame deadline budget: each request→command latency is
    /// compared against `budget_s` (converted to cycles at `clock_hz`), a
    /// miss is counted, and the remaining slack is recorded into
    /// [`AppMetrics::slack_cycles`]. A non-positive budget disables the
    /// check.
    pub fn set_deadline_budget(&mut self, budget_s: f64, clock_hz: f64) {
        self.deadline_budget_cycles = if budget_s > 0.0 && clock_hz > 0.0 {
            (budget_s * clock_hz) as u64
        } else {
            0
        };
    }

    /// Arms the abort rung of the degradation ladder: after `streak`
    /// consecutive degraded control-loop iterations (blacked-out depth or
    /// missed deadline), [`AppMetrics::abort_requested`] is raised and the
    /// mission loop winds down cleanly. 0 (the default) never aborts.
    pub fn set_abort_after_degraded(&mut self, streak: u64) {
        self.abort_after_degraded = streak;
    }

    fn plan_for(&self, model: DnnModel) -> &[TargetOp] {
        &self
            .plans
            .iter()
            .find(|(m, _)| *m == model)
            // rose-lint: allow(PANIC002, new() builds a plan for every DnnModel variant)
            .expect("plan built at construction")
            .1
    }

    fn select_model(&mut self, depth: f64) -> DnnModel {
        match self.choice {
            ControllerChoice::Static(m) => m,
            ControllerChoice::Dynamic {
                fast,
                accurate,
                threshold_s,
            } => {
                let t_process = self.deadline.t_process(depth, self.velocity);
                if t_process < threshold_s {
                    self.metrics.lock().deadline_switches += 1;
                    self.use_argmax = true;
                    fast
                } else {
                    self.use_argmax = false;
                    accurate
                }
            }
        }
    }

    fn command_from(&mut self, trail: TrailInfo) -> AppMessage {
        let model = self.current_model;
        let head = &mut self
            .heads
            .iter_mut()
            .find(|(m, _)| *m == model)
            // rose-lint: allow(PANIC002, new() builds a head for every DnnModel variant)
            .expect("head built at construction")
            .1;
        let out = head.classify(trail.heading_error, trail.lateral_offset, trail.half_width);
        let (angular, lateral) = if self.use_argmax {
            // Argmax policy: full-magnitude corrections from the fast net
            // (Section 5.3).
            (out.angular.one_hot(), out.lateral.one_hot())
        } else {
            (out.angular, out.lateral)
        };
        // Equation 2: corrections proportional to softmax differences.
        let yaw_rate = self.gains.beta_yaw * (angular.right() - angular.left());
        let v_lateral = self.gains.beta_lateral * (lateral.right() - lateral.left());
        AppMessage::Command {
            forward: self.velocity,
            lateral: v_lateral,
            yaw_rate,
            altitude: self.altitude,
        }
    }

    /// The classical fallback controller: proportional corrections from
    /// the trail estimate alone, no perception. Crude, but cheap enough to
    /// always meet the deadline — the middle rung of the degradation
    /// ladder when DNN inference misses its budget.
    fn classical_command(&self, trail: TrailInfo) -> AppMessage {
        let yaw_rate = -self.gains.beta_yaw * trail.heading_error;
        let lateral =
            -self.gains.beta_lateral * (trail.lateral_offset / trail.half_width.max(0.1));
        AppMessage::Command {
            forward: self.velocity,
            lateral,
            yaw_rate,
            altitude: self.altitude,
        }
    }
}

impl TargetProgram for TrailNavApp {
    fn next_op(&mut self, ctx: &mut ProgContext) -> TargetOp {
        loop {
            match self.state {
                State::RequestDepth => {
                    self.state = State::AwaitDepth;
                    return TargetOp::Send(AppMessage::DepthRequest.encode());
                }
                State::AwaitDepth => {
                    match ctx.take_message() {
                        // The RX watchdog gave up: the depth response was
                        // lost in flight. Degrade exactly like a blackout
                        // reading and move on.
                        None if ctx.rx_timed_out() => {
                            self.metrics.lock().lost_responses += 1;
                            self.depth_degraded = true;
                            self.current_model = self.select_model(0.0);
                            self.state = State::RequestImage;
                        }
                        None => return TargetOp::Recv,
                        Some(bytes) => {
                            let depth = match AppMessage::decode(&bytes) {
                                Ok(AppMessage::Depth { depth }) => depth,
                                // Unexpected payload: be conservative.
                                _ => 0.0,
                            };
                            if depth < 0.0 {
                                // Blackout sentinel: no valid reading.
                                // Dead-reckon conservatively — assume an
                                // imminent obstacle so the fast network
                                // (argmax policy) takes over.
                                self.metrics.lock().degraded_depth += 1;
                                self.depth_degraded = true;
                                self.current_model = self.select_model(0.0);
                            } else {
                                self.current_model = self.select_model(depth);
                            }
                            self.state = State::RequestImage;
                        }
                    }
                }
                State::RequestImage => {
                    self.request_cycle = ctx.now();
                    self.state = State::AwaitImage;
                    return TargetOp::Send(AppMessage::ImageRequest.encode());
                }
                State::AwaitImage => match ctx.take_message() {
                    // Lost perception: no fresh trail estimate this
                    // iteration. Fly the classical rung on the stale
                    // estimate rather than wedging behind a response that
                    // will never arrive.
                    None if ctx.rx_timed_out() => {
                        self.metrics.lock().lost_responses += 1;
                        self.depth_degraded = true;
                        self.use_classical = true;
                        self.queue = VecDeque::new();
                        self.state = State::Inference;
                    }
                    None => return TargetOp::Recv,
                    Some(bytes) => {
                        if let Ok(AppMessage::Image { trail, .. }) = AppMessage::decode(&bytes) {
                            self.last_trail = trail;
                        }
                        // The classical rung skips the DNN entirely: the
                        // queue stays empty and the iteration falls
                        // straight through to the command.
                        self.queue = if self.use_classical {
                            VecDeque::new()
                        } else {
                            self.plan_for(self.current_model).iter().cloned().collect()
                        };
                        self.state = State::Inference;
                    }
                },
                State::Inference => match self.queue.pop_front() {
                    Some(op) => return op,
                    None => self.state = State::SendCommand,
                },
                State::SendCommand => {
                    let command = if self.use_classical {
                        self.classical_command(self.last_trail)
                    } else {
                        self.command_from(self.last_trail)
                    };
                    let latency = ctx.now().saturating_sub(self.request_cycle);
                    let mut missed = false;
                    {
                        let mut m = self.metrics.lock();
                        m.commands += 1;
                        if self.use_classical {
                            m.classical_commands += 1;
                        } else {
                            m.inferences += 1;
                            m.latencies_cycles.push(latency);
                            if self.use_argmax {
                                m.fast_inferences += 1;
                            }
                        }
                        if self.deadline_budget_cycles > 0 {
                            let slack = self.deadline_budget_cycles.saturating_sub(latency);
                            if latency > self.deadline_budget_cycles {
                                m.deadline_misses += 1;
                                missed = true;
                            }
                            // A miss clamps to 0 slack → the histogram's
                            // underflow bucket.
                            m.slack_cycles.record_u64(slack);
                        }
                        // The degradation ladder: a degraded iteration
                        // (no valid depth, or a missed deadline) extends
                        // the streak; a clean one resets it. A sustained
                        // streak requests a clean abort.
                        let ladder_armed = self.abort_after_degraded > 0;
                        if self.depth_degraded || (missed && ladder_armed) {
                            self.degraded_streak += 1;
                            if self.abort_after_degraded > 0
                                && self.degraded_streak >= self.abort_after_degraded
                            {
                                m.abort_requested = true;
                            }
                        } else {
                            self.degraded_streak = 0;
                        }
                    }
                    // Deadline pressure engages the classical rung for the
                    // next iteration; a clean iteration releases it. The
                    // rung only arms together with the abort threshold —
                    // with the ladder disarmed, a deadline budget stays
                    // pure host-side accounting and must not perturb the
                    // flown trajectory.
                    self.use_classical = missed && self.abort_after_degraded > 0;
                    self.depth_degraded = false;
                    self.state = match self.choice {
                        ControllerChoice::Static(_) => State::RequestImage,
                        ControllerChoice::Dynamic { .. } => State::RequestDepth,
                    };
                    return TargetOp::Send(command.encode());
                }
            }
        }
    }

    fn name(&self) -> &str {
        match self.choice {
            ControllerChoice::Static(_) => "trail-nav-static",
            ControllerChoice::Dynamic { .. } => "trail-nav-dynamic",
        }
    }

    /// Serializes the application's dynamic state. Configuration (choice,
    /// gains, velocity, altitude, deadline parameters) and the lowered
    /// inference plans are structural — rebuilt from [`MissionConfig`]
    /// (`crate::mission::MissionConfig`) on resume. The current model is
    /// stored as an index into the plan table, so no model codec is needed.
    fn save_state(&self, w: &mut SnapWriter) {
        let TrailNavApp {
            choice: _,
            gains: _,
            velocity: _,
            altitude: _,
            deadline: _,
            plans,
            heads,
            state,
            queue,
            current_model,
            use_argmax,
            last_trail,
            request_cycle,
            deadline_budget_cycles: _,
            use_classical,
            depth_degraded,
            degraded_streak,
            abort_after_degraded: _,
            metrics,
        } = self;
        for (_, head) in heads {
            head.save_state(w);
        }
        state.save_state(w);
        w.usize(queue.len());
        for op in queue {
            op.save_state(w);
        }
        let model_idx = plans
            .iter()
            .position(|(m, _)| m == current_model)
            // rose-lint: allow(PANIC002, current_model is only ever set from plans' keys)
            .expect("current model always has a plan");
        w.u8(model_idx as u8);
        w.bool(*use_argmax);
        last_trail.save_state(w);
        w.u64(*request_cycle);
        w.bool(*use_classical);
        w.bool(*depth_degraded);
        w.u64(*degraded_streak);
        metrics.lock().save_state(w);
    }

    /// Restores the application's dynamic state.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on a malformed snapshot, including a model
    /// index outside this app's plan table.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for (_, head) in &mut self.heads {
            head.restore_state(r)?;
        }
        self.state = State::restore_state(r)?;
        let n_ops = r.usize()?;
        self.queue.clear();
        for _ in 0..n_ops {
            self.queue.push_back(TargetOp::restore_state(r)?);
        }
        let model_idx = r.u8()? as usize;
        self.current_model = match self.plans.get(model_idx) {
            Some((m, _)) => *m,
            None => {
                return Err(SnapError::BadTag {
                    context: "TrailNavApp model index",
                    tag: model_idx as u8,
                });
            }
        };
        self.use_argmax = r.bool()?;
        self.last_trail = TrailInfo::restore_state(r)?;
        self.request_cycle = r.u64()?;
        self.use_classical = r.bool()?;
        self.depth_degraded = r.bool()?;
        self.degraded_streak = r.u64()?;
        self.metrics.lock().restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rose_socsim::Soc;
    use rose_socsim::SocConfig;

    fn run_app_with_responder(
        choice: ControllerChoice,
        grants: u32,
    ) -> (Arc<Mutex<AppMetrics>>, u64) {
        run_app_with_depth(choice, grants, 30.0, 0)
    }

    fn run_app_with_depth(
        choice: ControllerChoice,
        grants: u32,
        depth: f64,
        abort_after: u64,
    ) -> (Arc<Mutex<AppMetrics>>, u64) {
        let rng = SimRng::new(1);
        let (mut app, metrics) = TrailNavApp::new(choice, true, 3.0, &rng);
        app.set_abort_after_degraded(abort_after);
        let mut soc = Soc::new(SocConfig::config_a(), Box::new(app));
        let mut commands = 0;
        for _ in 0..grants {
            // Answer every request like the environment would.
            for payload in soc.bridge_mut().host_drain_tx() {
                match AppMessage::decode(&payload).unwrap() {
                    AppMessage::ImageRequest => {
                        let reply = AppMessage::Image {
                            width: 64,
                            height: 64,
                            pixels: vec![0; 4096],
                            trail: TrailInfo {
                                lateral_offset: 0.8,
                                heading_error: 0.3,
                                half_width: 1.6,
                                progress: 1.0,
                            },
                        };
                        soc.bridge_mut().host_push_rx(reply.encode());
                    }
                    AppMessage::DepthRequest => {
                        soc.bridge_mut()
                            .host_push_rx(AppMessage::Depth { depth }.encode());
                    }
                    AppMessage::Command { .. } => commands += 1,
                    other => panic!("unexpected {other:?}"),
                }
            }
            soc.run_cycles(20_000_000);
        }
        (metrics, commands)
    }

    #[test]
    fn static_app_closes_the_loop() {
        let (metrics, commands) =
            run_app_with_responder(ControllerChoice::Static(DnnModel::ResNet14), 40);
        let m = metrics.lock();
        assert!(m.inferences >= 2, "expected >=2 inferences, got {}", m.inferences);
        assert_eq!(m.commands, m.inferences);
        assert!(commands >= 1);
        // Latency covers the lowered inference (~107 ms on config A) plus
        // sync-boundary waits.
        let mean = m.mean_latency_cycles();
        assert!(
            mean > 80_000_000.0,
            "latency {mean} should include inference"
        );
    }

    #[test]
    fn dynamic_app_uses_accurate_model_when_safe() {
        let (metrics, _) = run_app_with_responder(ControllerChoice::dynamic_default(), 40);
        let m = metrics.lock();
        assert!(m.inferences >= 1);
        // Depth 30 m at 3 m/s: 10 s to impact — never switch to the fast
        // network.
        assert_eq!(m.fast_inferences, 0);
        assert_eq!(m.deadline_switches, 0);
    }

    #[test]
    fn blacked_out_depth_degrades_to_the_fast_network() {
        let (metrics, commands) = run_app_with_depth(
            ControllerChoice::dynamic_default(),
            40,
            rose_envsim::uav::DEPTH_INVALID,
            0,
        );
        let m = metrics.lock();
        assert!(m.inferences >= 1);
        // Every iteration saw the sentinel: all degraded, all flown on the
        // conservative fast network, and the loop kept closing. (The depth
        // count may lead by one in-flight iteration.)
        assert!(m.degraded_depth >= m.inferences);
        assert_eq!(m.fast_inferences, m.inferences);
        assert!(commands >= 1);
        // No abort threshold armed: the mission never requests one.
        assert!(!m.abort_requested);
    }

    #[test]
    fn sustained_degradation_requests_a_clean_abort() {
        let (metrics, _) = run_app_with_depth(
            ControllerChoice::dynamic_default(),
            40,
            rose_envsim::uav::DEPTH_INVALID,
            2,
        );
        let m = metrics.lock();
        assert!(m.degraded_depth >= 2, "degraded {}", m.degraded_depth);
        assert!(m.abort_requested, "streak of {} degraded", m.degraded_depth);
    }

    #[test]
    fn classical_fallback_commands_are_corrective() {
        let rng = SimRng::new(5);
        let (app, _) =
            TrailNavApp::new(ControllerChoice::Static(DnnModel::ResNet14), true, 3.0, &rng);
        // Far left of the trail, pointing left: corrections must be
        // rightward (negative lateral, negative yaw) — same sign contract
        // as the DNN path, but deterministic.
        let trail = TrailInfo {
            lateral_offset: 1.2,
            heading_error: 0.35,
            half_width: 1.6,
            progress: 0.0,
        };
        match app.classical_command(trail) {
            AppMessage::Command {
                lateral, yaw_rate, ..
            } => {
                assert!(lateral < 0.0, "lateral {lateral}");
                assert!(yaw_rate < 0.0, "yaw {yaw_rate}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn command_signs_are_corrective() {
        let rng = SimRng::new(5);
        let (mut app, _) =
            TrailNavApp::new(ControllerChoice::Static(DnnModel::ResNet34), true, 3.0, &rng);
        // UAV far left of the trail and pointing left: corrections must be
        // rightward (negative lateral, negative yaw).
        let trail = TrailInfo {
            lateral_offset: 1.2,
            heading_error: 0.35,
            half_width: 1.6,
            progress: 0.0,
        };
        let mut lat_sum = 0.0;
        let mut yaw_sum = 0.0;
        for _ in 0..200 {
            match app.command_from(trail) {
                AppMessage::Command {
                    lateral, yaw_rate, ..
                } => {
                    lat_sum += lateral;
                    yaw_sum += yaw_rate;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(lat_sum < 0.0, "lateral correction sum {lat_sum}");
        assert!(yaw_sum < 0.0, "yaw correction sum {yaw_sum}");
    }

    #[test]
    fn bigger_models_command_sharper_corrections() {
        let rng = SimRng::new(6);
        let trail = TrailInfo {
            lateral_offset: -1.2,
            heading_error: -0.35,
            half_width: 1.6,
            progress: 0.0,
        };
        let mean_yaw = |model| {
            let (mut app, _) =
                TrailNavApp::new(ControllerChoice::Static(model), true, 3.0, &rng);
            let mut sum = 0.0;
            for _ in 0..300 {
                if let AppMessage::Command { yaw_rate, .. } = app.command_from(trail) {
                    sum += yaw_rate;
                }
            }
            sum / 300.0
        };
        let small = mean_yaw(DnnModel::ResNet6);
        let large = mean_yaw(DnnModel::ResNet34);
        assert!(
            large > small + 0.1,
            "ResNet34 correction {large} vs ResNet6 {small}"
        );
    }
}
