//! RoSÉ: hardware-software co-simulation for pre-silicon, full-stack
//! evaluation of robotics SoCs — the top-level crate of the reproduction.
//!
//! RoSÉ couples an environment simulator (the AirSim substitute in
//! `rose-envsim`), a cycle-level SoC simulator (the FireSim substitute in
//! `rose-socsim`), and a lockstep synchronizer (`rose-bridge`) to evaluate
//! robot UAV systems end to end: environment → sensors → DNN controller
//! running on simulated hardware → flight controller → actuation →
//! environment.
//!
//! # Quickstart
//!
//! ```
//! use rose::mission::{MissionConfig, run_mission};
//! use rose::app::ControllerChoice;
//! use rose_dnn::DnnModel;
//! use rose_envsim::WorldKind;
//! use rose_socsim::SocConfig;
//!
//! let config = MissionConfig {
//!     soc: SocConfig::config_a(),
//!     controller: ControllerChoice::Static(DnnModel::ResNet14),
//!     world: WorldKind::Tunnel,
//!     velocity: 3.0,
//!     initial_yaw_deg: 0.0,
//!     max_sim_seconds: 5.0, // short demo; real missions run to completion
//!     ..MissionConfig::default()
//! };
//! let report = run_mission(&config);
//! assert!(report.trajectory.len() > 0);
//! ```
//!
//! Modules:
//!
//! * [`message`] — the application-level data-packet codec carried over
//!   the RoSÉ bridge (image/depth requests, sensor responses, velocity
//!   commands).
//! * [`envside`] — [`envside::CoSimEnv`], the environment endpoint: decodes
//!   data packets into simulator API calls (Algorithm 1's
//!   `call_airsim_api`).
//! * [`rtlside`] — [`rtlside::SocRtl`], the RTL endpoint wrapping the
//!   simulated SoC and its bridge queues.
//! * [`app`] — the trail-navigation target programs: the static DNN
//!   controller of Sections 5.1–5.2 and the dynamic-runtime controller of
//!   Section 5.3.
//! * [`deadline`] — the deadline model of Equations 3–5.
//! * [`mission`] — the mission runner: configures, runs, and reports one
//!   closed-loop flight.
//! * [`audit`] — the cross-run determinism auditor: runs a config twice
//!   and compares FNV digests of trajectory, SoC counters, and trace
//!   ordering.
//! * [`snapshot`] — mission snapshot / fork / resume: serialize the full
//!   co-simulation state at a quantum boundary, warm-start sweeps from a
//!   shared checkpoint, and clone a running mission into divergent
//!   branches.

#![deny(missing_docs)]

pub mod app;
pub mod audit;
pub mod deadline;
pub mod envside;
pub mod fusion;
pub mod message;
pub mod mission;
pub mod mpc;
pub mod rtlside;
pub mod snapshot;

pub use app::{AppMetrics, ControllerChoice};
pub use mission::{run_mission, MissionConfig, MissionReport};
pub use snapshot::{Mission, MissionSnapshot};
