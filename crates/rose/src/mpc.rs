//! A classical model-predictive-control workload with data-dependent
//! runtime (the paper's §6: "many classical algorithms such as SLAM and
//! nonlinear MPC build upon iterative optimization algorithms ... with
//! data-dependent runtime behaviors, where RoSÉ can capture their
//! performance implications on both hardware and software").
//!
//! [`MpcSolver`] is a real trajectory optimizer: gradient descent (with an
//! adjoint backward pass) over a yaw-rate control sequence for linearized
//! corridor-tracking dynamics, iterating **until convergence** — so the
//! iteration count, and therefore the compute time billed to the simulated
//! SoC, depends on how far the UAV has strayed. [`MpcApp`] wraps it as a
//! target program: the closed loop couples flight state → solver
//! iterations → SoC latency → control delay → flight state.

use crate::message::{AppMessage, TrailInfo};
use parking_lot::Mutex;
use rose_sim_core::math::clamp;
use rose_socsim::kernel::Kernel;
use rose_socsim::program::{ProgContext, TargetProgram};
use rose_socsim::TargetOp;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpcConfig {
    /// Prediction horizon (steps).
    pub horizon: usize,
    /// Step length (s).
    pub dt: f64,
    /// Lateral-offset cost weight.
    pub q_offset: f64,
    /// Heading-error cost weight.
    pub q_heading: f64,
    /// Control-effort cost weight.
    pub r_control: f64,
    /// Gradient-descent step size.
    pub step_size: f64,
    /// Convergence threshold on the gradient norm.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Abstract CPU operations billed per solver iteration (one forward +
    /// one adjoint pass over the horizon).
    pub ops_per_iter: usize,
}

impl Default for MpcConfig {
    fn default() -> MpcConfig {
        MpcConfig {
            horizon: 16,
            dt: 0.1,
            q_offset: 1.0,
            q_heading: 0.6,
            r_control: 0.08,
            step_size: 0.05,
            tolerance: 1e-3,
            max_iters: 400,
            ops_per_iter: 60_000,
        }
    }
}

/// The result of one solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpcSolution {
    /// Optimized yaw-rate sequence.
    pub controls: Vec<f64>,
    /// Iterations until convergence (or the cap).
    pub iterations: usize,
    /// Final cost.
    pub cost: f64,
}

/// The corridor-tracking trajectory optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpcSolver {
    config: MpcConfig,
}

impl MpcSolver {
    /// Creates a solver.
    pub fn new(config: MpcConfig) -> MpcSolver {
        MpcSolver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// Solves for the yaw-rate sequence minimizing tracking cost from the
    /// initial `(lateral_offset, heading_error)` at forward speed `v`.
    ///
    /// Dynamics (linearized corridor frame):
    /// `y' = v·ψ`, `ψ' = r` with control `r`.
    pub fn solve(&self, lateral_offset: f64, heading_error: f64, v: f64) -> MpcSolution {
        let cfg = &self.config;
        let h = cfg.horizon;
        let mut controls = vec![0.0f64; h];
        let mut iterations = 0;
        let mut cost = f64::INFINITY;

        for iter in 0..cfg.max_iters {
            iterations = iter + 1;
            // Forward rollout.
            let mut ys = Vec::with_capacity(h + 1);
            let mut psis = Vec::with_capacity(h + 1);
            let (mut y, mut psi) = (lateral_offset, heading_error);
            ys.push(y);
            psis.push(psi);
            for &r in &controls {
                (y, psi) = (y + cfg.dt * v * psi, psi + cfg.dt * r);
                ys.push(y);
                psis.push(psi);
            }
            cost = (1..=h)
                .map(|k| cfg.q_offset * ys[k] * ys[k] + cfg.q_heading * psis[k] * psis[k])
                .sum::<f64>()
                + controls.iter().map(|r| cfg.r_control * r * r).sum::<f64>();

            // Adjoint backward pass: lambda_k = dJ/d(state_k).
            let mut lam_y = 0.0;
            let mut lam_psi = 0.0;
            let mut grad = vec![0.0f64; h];
            for k in (0..h).rev() {
                // Stage cost at state k+1.
                lam_y += 2.0 * cfg.q_offset * ys[k + 1];
                lam_psi += 2.0 * cfg.q_heading * psis[k + 1];
                // Control gradient: r_k affects psi_{k+1} by dt.
                grad[k] = 2.0 * cfg.r_control * controls[k] + cfg.dt * lam_psi;
                // Propagate through dynamics transposed.
                lam_psi += cfg.dt * v * lam_y;
            }

            let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if gnorm < cfg.tolerance {
                break;
            }
            for (r, g) in controls.iter_mut().zip(&grad) {
                *r -= cfg.step_size * g;
                *r = clamp(*r, -2.5, 2.5);
            }
        }
        MpcSolution {
            controls,
            iterations,
            cost,
        }
    }
}

/// Metrics recorded by the MPC application.
#[derive(Debug, Clone, Default)]
pub struct MpcMetrics {
    /// Solver iteration count per control step.
    pub iterations: Vec<usize>,
    /// Commands sent.
    pub commands: u64,
    /// Request → command latency, in cycles.
    pub latencies_cycles: Vec<u64>,
}

impl MpcMetrics {
    /// Mean solver iterations (0 if none).
    pub fn mean_iterations(&self) -> f64 {
        if self.iterations.is_empty() {
            0.0
        } else {
            self.iterations.iter().sum::<usize>() as f64 / self.iterations.len() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(clippy::enum_variant_names)] // "State" here means vehicle state, not the enum
enum State {
    RequestState,
    AwaitState,
    Solving,
    SendCommand,
}

/// The MPC corridor-tracking target program.
pub struct MpcApp {
    solver: MpcSolver,
    velocity: f64,
    state: State,
    last_trail: TrailInfo,
    pending_solution: Option<MpcSolution>,
    request_cycle: u64,
    metrics: Arc<Mutex<MpcMetrics>>,
}

impl std::fmt::Debug for MpcApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpcApp")
            .field("velocity", &self.velocity)
            .field("state", &self.state)
            .finish()
    }
}

impl MpcApp {
    /// Builds the application and its shared metrics handle.
    pub fn new(config: MpcConfig, velocity: f64) -> (MpcApp, Arc<Mutex<MpcMetrics>>) {
        let metrics = Arc::new(Mutex::new(MpcMetrics::default()));
        (
            MpcApp {
                solver: MpcSolver::new(config),
                velocity,
                state: State::RequestState,
                last_trail: TrailInfo::default(),
                pending_solution: None,
                request_cycle: 0,
                metrics: Arc::clone(&metrics),
            },
            metrics,
        )
    }
}

impl TargetProgram for MpcApp {
    fn next_op(&mut self, ctx: &mut ProgContext) -> TargetOp {
        loop {
            match self.state {
                State::RequestState => {
                    self.request_cycle = ctx.now();
                    self.state = State::AwaitState;
                    // State comes back with the image channel's ground
                    // truth (the MPC consumes pose estimates rather than
                    // pixels).
                    return TargetOp::Send(AppMessage::ImageRequest.encode());
                }
                State::AwaitState => match ctx.take_message() {
                    None => return TargetOp::Recv,
                    Some(bytes) => {
                        if let Ok(AppMessage::Image { trail, .. }) = AppMessage::decode(&bytes) {
                            self.last_trail = trail;
                        }
                        self.state = State::Solving;
                    }
                },
                State::Solving => {
                    // Run the real solver functionally; bill its iteration
                    // count as data-dependent compute on the simulated CPU.
                    let solution = self.solver.solve(
                        self.last_trail.lateral_offset,
                        self.last_trail.heading_error,
                        self.velocity,
                    );
                    let ops = solution.iterations * self.solver.config().ops_per_iter;
                    self.metrics.lock().iterations.push(solution.iterations);
                    self.pending_solution = Some(solution);
                    self.state = State::SendCommand;
                    return TargetOp::CpuKernel(Kernel::Control { ops });
                }
                State::SendCommand => {
                    // rose-lint: allow(PANIC002, SendCommand is only entered after Solve stores a solution)
                    let solution = self.pending_solution.take().expect("solved");
                    let yaw_rate = solution.controls.first().copied().unwrap_or(0.0);
                    // Lateral velocity from a proportional term on the
                    // offset (the solver handles heading).
                    let lateral = clamp(-1.2 * self.last_trail.lateral_offset, -2.5, 2.5);
                    {
                        let mut m = self.metrics.lock();
                        m.commands += 1;
                        m.latencies_cycles
                            .push(ctx.now().saturating_sub(self.request_cycle));
                    }
                    self.state = State::RequestState;
                    return TargetOp::Send(
                        AppMessage::Command {
                            forward: self.velocity,
                            lateral,
                            yaw_rate,
                            altitude: 1.5,
                        }
                        .encode(),
                    );
                }
            }
        }
    }

    fn name(&self) -> &str {
        "mpc-corridor-tracking"
    }
}

/// Outcome of an MPC-controlled mission.
#[derive(Debug, Clone)]
pub struct MpcMissionReport {
    /// True if the UAV crossed the goal plane in time.
    pub completed: bool,
    /// Simulated seconds to goal.
    pub mission_time_s: Option<f64>,
    /// Collision events.
    pub collisions: u32,
    /// Solver/latency metrics.
    pub metrics: MpcMetrics,
    /// Mean request → command latency in ms.
    pub mean_latency_ms: f64,
}

/// Runs a closed-loop mission with the MPC controller in place of the DNN
/// application.
pub fn run_mpc_mission(
    mission: &crate::mission::MissionConfig,
    mpc: MpcConfig,
) -> MpcMissionReport {
    use crate::mission::mission_parts_with_program;
    use rose_bridge::sync::Synchronizer;

    let (app, metrics) = MpcApp::new(mpc, mission.velocity);
    let (env, rtl, sync_config) = mission_parts_with_program(mission, Box::new(app));
    let mut sync = Synchronizer::new(sync_config, env, rtl);
    let max_syncs = (mission.max_sim_seconds * mission.frame_hz as f64
        / mission.frames_per_sync as f64)
        .ceil() as u64;
    sync.run_until(max_syncs, |env, _| env.sim().mission_complete());

    let (env, _rtl) = sync.into_parts();
    let sim = env.into_sim();
    let completed = sim.mission_complete();
    let m = metrics.lock().clone();
    let mean_latency_ms = if m.latencies_cycles.is_empty() {
        0.0
    } else {
        m.latencies_cycles.iter().sum::<u64>() as f64
            / m.latencies_cycles.len() as f64
            / mission.soc.clock.hz() as f64
            * 1e3
    };
    MpcMissionReport {
        completed,
        mission_time_s: completed.then(|| sim.time()),
        collisions: sim.collision_count(),
        metrics: m,
        mean_latency_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_converges_to_low_cost() {
        let solver = MpcSolver::new(MpcConfig::default());
        let sol = solver.solve(1.0, 0.2, 3.0);
        assert!(sol.iterations > 1);
        // The optimized sequence steers back: first control turns away
        // from the offset (offset +1 left, heading +0.2 left -> turn
        // right = negative yaw rate).
        assert!(sol.controls[0] < 0.0, "first control {}", sol.controls[0]);
        // Cost is far below the do-nothing rollout cost.
        let idle = solver.solve(1.0, 0.2, 3.0).cost; // converged cost
        let unsteered = MpcConfig {
            max_iters: 1,
            ..MpcConfig::default()
        };
        let one_iter = MpcSolver::new(unsteered).solve(1.0, 0.2, 3.0);
        assert!(idle < one_iter.cost * 0.8, "{idle} vs {}", one_iter.cost);
    }

    #[test]
    fn iterations_are_data_dependent() {
        let solver = MpcSolver::new(MpcConfig::default());
        let centered = solver.solve(0.01, 0.0, 3.0);
        let strayed = solver.solve(1.2, 0.3, 3.0);
        assert!(
            strayed.iterations > centered.iterations,
            "strayed {} vs centered {}",
            strayed.iterations,
            centered.iterations
        );
    }

    #[test]
    fn perfectly_centered_needs_no_control() {
        let solver = MpcSolver::new(MpcConfig::default());
        let sol = solver.solve(0.0, 0.0, 3.0);
        assert!(sol.iterations <= 2, "iterations {}", sol.iterations);
        assert!(sol.cost < 1e-9);
    }

    #[test]
    fn faster_flight_changes_the_solution() {
        let solver = MpcSolver::new(MpcConfig::default());
        let slow = solver.solve(0.8, 0.0, 2.0);
        let fast = solver.solve(0.8, 0.0, 10.0);
        assert_ne!(slow.controls[0], fast.controls[0]);
    }
}
