//! The application-level data-packet codec.
//!
//! Data packets are the only packets visible to the simulated SoC
//! (Section 3.4.1). The companion-computer application and the
//! synchronizer exchange these messages as the payloads of
//! `Packet::Data`: sensor requests flow SoC → environment, sensor data
//! flows back, and velocity commands flow SoC → flight controller.
//!
//! The encoding is a fixed little-endian binary format (one tag byte plus
//! fields), mirroring the serialized structs the paper's C++ bridge driver
//! moves through the bridge queues.
//!
//! # Ground truth rider
//!
//! [`AppMessage::Image`] carries, alongside the rendered pixels, the
//! ground-truth trail pose ([`TrailInfo`]) used by the calibrated
//! perception head (see DESIGN.md §1). The paper's SoC decodes the image
//! with a trained network; we ride the ground truth along the same data
//! path so the closed loop sees identical message sizes and timing.

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ground-truth pose of the UAV relative to the trail at capture time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrailInfo {
    /// Signed lateral offset in meters (positive = UAV left of trail).
    pub lateral_offset: f64,
    /// Signed heading error in radians (positive = UAV points left).
    pub heading_error: f64,
    /// Local corridor half-width in meters.
    pub half_width: f64,
    /// Arc-length progress along the trail in meters.
    pub progress: f64,
}

impl TrailInfo {
    /// Serializes the trail estimate.
    pub fn save_state(&self, w: &mut rose_sim_core::snap::SnapWriter) {
        let TrailInfo {
            lateral_offset,
            heading_error,
            half_width,
            progress,
        } = self;
        w.f64(*lateral_offset);
        w.f64(*heading_error);
        w.f64(*half_width);
        w.f64(*progress);
    }

    /// Restores a trail estimate.
    ///
    /// # Errors
    ///
    /// Propagates [`rose_sim_core::snap::SnapError`] on a malformed
    /// snapshot.
    pub fn restore_state(
        r: &mut rose_sim_core::snap::SnapReader<'_>,
    ) -> Result<TrailInfo, rose_sim_core::snap::SnapError> {
        Ok(TrailInfo {
            lateral_offset: r.f64()?,
            heading_error: r.f64()?,
            half_width: r.f64()?,
            progress: r.f64()?,
        })
    }
}

/// An application-level message carried in a data packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AppMessage {
    /// SoC → env: capture a camera frame.
    ImageRequest,
    /// SoC → env: read the forward depth sensor.
    DepthRequest,
    /// SoC → env: read the IMU.
    ImuRequest,
    /// env → SoC: an IMU sample.
    Imu {
        /// Body-frame specific force (m/s²).
        accel: [f64; 3],
        /// Body-frame angular rate (rad/s).
        gyro: [f64; 3],
    },
    /// env → SoC: a camera frame (+ ground-truth rider).
    Image {
        /// Image width in pixels.
        width: u16,
        /// Image height in pixels.
        height: u16,
        /// Grayscale pixels, row-major.
        pixels: Vec<u8>,
        /// Ground-truth trail pose at capture time.
        trail: TrailInfo,
    },
    /// env → SoC: a depth reading in meters.
    Depth {
        /// Distance to the nearest obstacle along the heading.
        depth: f64,
    },
    /// SoC → env: velocity targets for the flight controller.
    Command {
        /// Forward velocity target (m/s, body frame).
        forward: f64,
        /// Lateral velocity target (m/s, body frame, positive left).
        lateral: f64,
        /// Yaw rate target (rad/s, positive counterclockwise).
        yaw_rate: f64,
        /// Altitude hold target (m).
        altitude: f64,
    },
}

const TAG_IMAGE_REQ: u8 = 0x10;
const TAG_DEPTH_REQ: u8 = 0x11;
const TAG_IMU_REQ: u8 = 0x12;
const TAG_IMAGE: u8 = 0x20;
const TAG_DEPTH: u8 = 0x21;
const TAG_IMU: u8 = 0x22;
const TAG_COMMAND: u8 = 0x30;

/// A message decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageError {
    /// Payload too short for its tag.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
}

impl fmt::Display for MessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageError::Truncated => write!(f, "truncated message"),
            MessageError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
        }
    }
}

impl std::error::Error for MessageError {}

impl AppMessage {
    /// Serializes the message to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        match self {
            AppMessage::ImageRequest => buf.put_u8(TAG_IMAGE_REQ),
            AppMessage::DepthRequest => buf.put_u8(TAG_DEPTH_REQ),
            AppMessage::ImuRequest => buf.put_u8(TAG_IMU_REQ),
            AppMessage::Imu { accel, gyro } => {
                buf.put_u8(TAG_IMU);
                for v in accel.iter().chain(gyro) {
                    buf.put_f64_le(*v);
                }
            }
            AppMessage::Image {
                width,
                height,
                pixels,
                trail,
            } => {
                buf.put_u8(TAG_IMAGE);
                buf.put_u16_le(*width);
                buf.put_u16_le(*height);
                buf.put_u32_le(pixels.len() as u32);
                buf.put_slice(pixels);
                buf.put_f64_le(trail.lateral_offset);
                buf.put_f64_le(trail.heading_error);
                buf.put_f64_le(trail.half_width);
                buf.put_f64_le(trail.progress);
            }
            AppMessage::Depth { depth } => {
                buf.put_u8(TAG_DEPTH);
                buf.put_f64_le(*depth);
            }
            AppMessage::Command {
                forward,
                lateral,
                yaw_rate,
                altitude,
            } => {
                buf.put_u8(TAG_COMMAND);
                buf.put_f64_le(*forward);
                buf.put_f64_le(*lateral);
                buf.put_f64_le(*yaw_rate);
                buf.put_f64_le(*altitude);
            }
        }
        buf
    }

    /// Decodes a message from bytes.
    ///
    /// # Errors
    ///
    /// [`MessageError::Truncated`] or [`MessageError::BadTag`] on corrupt
    /// payloads.
    pub fn decode(bytes: &[u8]) -> Result<AppMessage, MessageError> {
        let mut buf = bytes;
        if buf.is_empty() {
            return Err(MessageError::Truncated);
        }
        let tag = buf.get_u8();
        let need = |buf: &&[u8], n: usize| {
            if buf.len() < n {
                Err(MessageError::Truncated)
            } else {
                Ok(())
            }
        };
        match tag {
            TAG_IMAGE_REQ => Ok(AppMessage::ImageRequest),
            TAG_DEPTH_REQ => Ok(AppMessage::DepthRequest),
            TAG_IMU_REQ => Ok(AppMessage::ImuRequest),
            TAG_IMU => {
                need(&buf, 48)?;
                let mut vals = [0.0f64; 6];
                for v in &mut vals {
                    *v = buf.get_f64_le();
                }
                Ok(AppMessage::Imu {
                    accel: [vals[0], vals[1], vals[2]],
                    gyro: [vals[3], vals[4], vals[5]],
                })
            }
            TAG_IMAGE => {
                need(&buf, 8)?;
                let width = buf.get_u16_le();
                let height = buf.get_u16_le();
                let len = buf.get_u32_le() as usize;
                need(&buf, len + 32)?;
                let pixels = buf[..len].to_vec();
                buf.advance(len);
                let trail = TrailInfo {
                    lateral_offset: buf.get_f64_le(),
                    heading_error: buf.get_f64_le(),
                    half_width: buf.get_f64_le(),
                    progress: buf.get_f64_le(),
                };
                Ok(AppMessage::Image {
                    width,
                    height,
                    pixels,
                    trail,
                })
            }
            TAG_DEPTH => {
                need(&buf, 8)?;
                Ok(AppMessage::Depth {
                    depth: buf.get_f64_le(),
                })
            }
            TAG_COMMAND => {
                need(&buf, 32)?;
                Ok(AppMessage::Command {
                    forward: buf.get_f64_le(),
                    lateral: buf.get_f64_le(),
                    yaw_rate: buf.get_f64_le(),
                    altitude: buf.get_f64_le(),
                })
            }
            t => Err(MessageError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: AppMessage) {
        let bytes = msg.encode();
        assert_eq!(AppMessage::decode(&bytes), Ok(msg));
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(AppMessage::ImageRequest);
        roundtrip(AppMessage::DepthRequest);
        roundtrip(AppMessage::Image {
            width: 64,
            height: 64,
            pixels: (0..4096u32).map(|i| (i % 251) as u8).collect(),
            trail: TrailInfo {
                lateral_offset: -0.4,
                heading_error: 0.12,
                half_width: 1.6,
                progress: 23.5,
            },
        });
        roundtrip(AppMessage::Depth { depth: 17.25 });
        roundtrip(AppMessage::Command {
            forward: 3.0,
            lateral: -0.5,
            yaw_rate: 0.2,
            altitude: 1.5,
        });
    }

    #[test]
    fn truncated_rejected() {
        let full = AppMessage::Command {
            forward: 1.0,
            lateral: 2.0,
            yaw_rate: 3.0,
            altitude: 4.0,
        }
        .encode();
        for cut in [0, 1, 16, full.len() - 1] {
            assert_eq!(
                AppMessage::decode(&full[..cut]),
                Err(MessageError::Truncated)
            );
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(AppMessage::decode(&[0xff]), Err(MessageError::BadTag(0xff)));
    }

    #[test]
    fn image_payload_size_matches_camera() {
        // A 64x64 image message is ~4 KiB — the dominant bridge payload.
        let msg = AppMessage::Image {
            width: 64,
            height: 64,
            pixels: vec![0; 4096],
            trail: TrailInfo::default(),
        };
        let len = msg.encode().len();
        assert_eq!(len, 1 + 2 + 2 + 4 + 4096 + 32);
    }
}
