//! Mission snapshot, fork, and resume (DESIGN.md §4e).
//!
//! A [`MissionSnapshot`] is a compact, versioned, dependency-free
//! serialization of the **entire** co-simulation state at a quantum
//! boundary: the environment (UAV pose, dynamics integrator, sensor RNG
//! streams), the SoC (CPU/cache/accelerator counters, cost caches, the
//! in-flight program position), the bridge queues, the synchronizer
//! position, and every component's trace prefix. Resuming a snapshot and
//! running to completion produces a [`crate::audit::MissionDigest`]
//! **bit-identical** to the straight run — under both
//! [`SyncMode::Sequential`] and [`SyncMode::Parallel`] — which is the
//! correctness gate the determinism auditor enforces.
//!
//! # Format
//!
//! ```text
//! section "ROSE" | u16 version | MissionConfig | CoSimEnv | SocRtl | Synchronizer
//! ```
//!
//! The snapshot embeds its [`MissionConfig`], so it is self-contained:
//! resume rebuilds the mission *structure* (boxed programs, worlds,
//! autopilots, interned labels) from the config exactly as
//! [`build_mission`] does, then overlays the dynamic state field by
//! field. Structural state never travels in the byte stream — only
//! state that changes as the mission runs.
//!
//! # Warm-starting sweeps
//!
//! The expensive prefix of every mission is identical within one SoC
//! configuration: boot, first frames, cache and cost-model warm-up. A
//! sweep (e.g. the Figure 10 trajectory study) can run that prefix
//! *once*, [`Mission::snapshot`] it, and [`Mission::fork`] one branch
//! per sweep point, perturbing each branch (initial yaw, gains) before
//! running it to completion.
//!
//! [`SyncMode::Sequential`]: rose_bridge::sync::SyncMode::Sequential
//! [`SyncMode::Parallel`]: rose_bridge::sync::SyncMode::Parallel

use crate::app::AppMetrics;
use crate::envside::CoSimEnv;
use crate::mission::{build_mission, finish_report, MissionConfig, MissionReport};
use crate::rtlside::SocRtl;
use parking_lot::Mutex;
use rose_bridge::sync::Synchronizer;
use rose_sim_core::snap::{SnapError, SnapReader, SnapWriter};
use std::sync::Arc;

/// A running (or paused) mission: the full co-simulation plus its
/// configuration, steppable in units of synchronization periods and
/// snapshottable at any quantum boundary.
#[derive(Debug)]
pub struct Mission {
    config: MissionConfig,
    sync: Synchronizer<CoSimEnv, SocRtl>,
    metrics: Arc<Mutex<AppMetrics>>,
}

impl Mission {
    /// Builds a mission at its initial state (nothing executed yet).
    pub fn start(config: &MissionConfig) -> Mission {
        let (sync, metrics) = build_mission(config);
        Mission {
            config: config.clone(),
            sync,
            metrics,
        }
    }

    /// The mission's configuration.
    pub fn config(&self) -> &MissionConfig {
        &self.config
    }

    /// The environment endpoint.
    pub fn env(&self) -> &CoSimEnv {
        self.sync.env()
    }

    /// The RTL endpoint.
    pub fn rtl(&self) -> &SocRtl {
        self.sync.rtl()
    }

    /// Synchronization periods executed so far.
    pub fn syncs_executed(&self) -> u64 {
        self.sync.stats().syncs
    }

    /// True once the UAV has crossed the goal plane.
    pub fn complete(&self) -> bool {
        self.sync.env().sim().mission_complete()
    }

    /// Shared handle to the application's metrics.
    pub fn metrics(&self) -> Arc<Mutex<AppMetrics>> {
        Arc::clone(&self.metrics)
    }

    /// Runs up to `n` synchronization periods, stopping early at mission
    /// completion or an SoC halt. Returns the number executed.
    pub fn run_syncs(&mut self, n: u64) -> u64 {
        self.sync.run_until(n, |env, _| env.sim().mission_complete())
    }

    /// Runs until the mission completes, the SoC halts, or the simulated
    /// time wall ([`MissionConfig::max_sim_seconds`]) is reached, then
    /// extracts the report. Periods already executed (including those
    /// executed before a snapshot was taken) count against the wall.
    pub fn run_to_completion(self) -> MissionReport {
        let Mission {
            config,
            mut sync,
            metrics,
        } = self;
        let remaining = config.max_syncs().saturating_sub(sync.stats().syncs);
        sync.run_until(remaining, |env, _| env.sim().mission_complete());
        finish_report(&config, sync, &metrics)
    }

    /// Extracts the report at the current position without running further.
    pub fn finish(self) -> MissionReport {
        finish_report(&self.config, self.sync, &self.metrics)
    }

    /// Rotates the UAV in place by `dyaw` radians — the divergence knob
    /// for forked sweep branches.
    pub fn perturb_yaw(&mut self, dyaw: f64) {
        self.sync.env_mut().sim_mut().perturb_yaw(dyaw);
    }

    /// Serializes the complete co-simulation state. Valid at any quantum
    /// boundary (between [`run_syncs`](Mission::run_syncs) calls).
    pub fn snapshot(&self) -> MissionSnapshot {
        let mut w = SnapWriter::new();
        w.section(MissionSnapshot::MAGIC);
        w.u16(MissionSnapshot::VERSION);
        self.config.save_state(&mut w);
        self.sync.env().save_state(&mut w);
        self.sync.rtl().save_state(&mut w);
        self.sync.save_state(&mut w);
        MissionSnapshot {
            bytes: w.into_bytes(),
        }
    }

    /// Clones the running mission into `n` independent branches, each
    /// resumed from the same snapshot of `self`. The branches share no
    /// state; diverge them with [`perturb_yaw`](Mission::perturb_yaw) or
    /// by reconfiguring before running.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] if the snapshot fails to round-trip —
    /// which would indicate a save/restore asymmetry bug.
    pub fn fork(&self, n: usize) -> Result<Vec<Mission>, SnapError> {
        let snap = self.snapshot();
        (0..n).map(|_| snap.resume()).collect()
    }
}

/// A serialized mission: the byte-level snapshot format. See the module
/// docs for the layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissionSnapshot {
    bytes: Vec<u8>,
}

impl MissionSnapshot {
    /// Leading section magic: `"ROSE"` in big-endian byte order.
    pub const MAGIC: u32 = 0x524f_5345;
    /// Newest format version this build reads and writes. Version 2 added
    /// [`MissionConfig::deadline_budget_s`] and the app's cumulative
    /// deadline-miss counter to the embedded config/metrics codecs.
    /// Version 3 added the robustness state: sensor-degradation schedules
    /// and the recovery policy in the config codec, the environment's
    /// bias-step cursor, and the app's degradation-ladder state.
    pub const VERSION: u16 = 3;

    /// The raw snapshot bytes (e.g. for writing to a checkpoint file).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Takes ownership of the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Wraps bytes read back from a checkpoint file. Validation is
    /// deferred to [`resume`](MissionSnapshot::resume) /
    /// [`config`](MissionSnapshot::config), which fail with a
    /// [`SnapError`] on a corrupt or foreign buffer.
    pub fn from_bytes(bytes: Vec<u8>) -> MissionSnapshot {
        MissionSnapshot { bytes }
    }

    /// Decodes just the embedded [`MissionConfig`] (header + config
    /// prefix), without rebuilding the mission.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on a corrupt header or config.
    pub fn config(&self) -> Result<MissionConfig, SnapError> {
        let mut r = SnapReader::new(&self.bytes);
        Self::read_header(&mut r)?;
        MissionConfig::restore_state(&mut r)
    }

    /// Rebuilds the mission: constructs the structure from the embedded
    /// config, then overlays every component's dynamic state. The
    /// returned [`Mission`] continues bit-identically to the mission the
    /// snapshot was taken from.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on a corrupt, truncated, version-mismatched, or
    /// trailing-byte-carrying buffer.
    pub fn resume(&self) -> Result<Mission, SnapError> {
        let mut r = SnapReader::new(&self.bytes);
        Self::read_header(&mut r)?;
        let config = MissionConfig::restore_state(&mut r)?;
        let (mut sync, metrics) = build_mission(&config);
        sync.env_mut().restore_state(&mut r)?;
        sync.rtl_mut().restore_state(&mut r)?;
        sync.restore_state(&mut r)?;
        r.finish()?;
        Ok(Mission {
            config,
            sync,
            metrics,
        })
    }

    fn read_header(r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section(Self::MAGIC)?;
        let version = r.u16()?;
        if version != Self::VERSION {
            return Err(SnapError::BadVersion {
                supported: Self::VERSION as u32,
                found: version as u32,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::MissionDigest;
    use crate::mission::run_mission;
    use rose_bridge::sync::SyncMode;

    fn short(sync_mode: SyncMode) -> MissionConfig {
        MissionConfig {
            max_sim_seconds: 2.0,
            trace: true,
            sync_mode,
            ..MissionConfig::default()
        }
    }

    fn digest_of_resumed(config: &MissionConfig, snapshot_at_syncs: u64) -> MissionDigest {
        let mut mission = Mission::start(config);
        mission.run_syncs(snapshot_at_syncs);
        let snap = mission.snapshot();
        let resumed = snap.resume().expect("snapshot must resume");
        MissionDigest::of(&resumed.run_to_completion())
    }

    #[test]
    fn resume_is_bit_identical_sequential() {
        let config = short(SyncMode::Sequential);
        let straight = MissionDigest::of(&run_mission(&config));
        for boundary in [0, 1, 17, 60] {
            assert_eq!(
                digest_of_resumed(&config, boundary),
                straight,
                "divergence after snapshot at sync {boundary}"
            );
        }
    }

    #[test]
    fn resume_is_bit_identical_parallel() {
        let config = short(SyncMode::Parallel);
        let straight = MissionDigest::of(&run_mission(&config));
        for boundary in [0, 1, 17, 60] {
            assert_eq!(
                digest_of_resumed(&config, boundary),
                straight,
                "divergence after snapshot at sync {boundary}"
            );
        }
    }

    #[test]
    fn snapshot_roundtrips_byte_identically() {
        let config = short(SyncMode::Sequential);
        let mut mission = Mission::start(&config);
        mission.run_syncs(25);
        let first = mission.snapshot();
        let resumed = first.resume().expect("resume");
        let second = resumed.snapshot();
        assert_eq!(
            first.bytes(),
            second.bytes(),
            "serialize → deserialize → serialize must be byte-identical"
        );
    }

    #[test]
    fn snapshot_config_decodes_without_resume() {
        let config = short(SyncMode::Parallel);
        let mission = Mission::start(&config);
        let snap = mission.snapshot();
        assert_eq!(snap.config().expect("config decodes"), config);
    }

    #[test]
    fn forked_branches_run_independently() {
        let config = short(SyncMode::Sequential);
        let mut mission = Mission::start(&config);
        mission.run_syncs(20);
        let branches = mission.fork(2).expect("fork");
        let mut digests = Vec::new();
        let mut diverged = Vec::new();
        for (i, mut branch) in branches.into_iter().enumerate() {
            if i == 1 {
                branch.perturb_yaw(0.3);
                diverged.push(true);
            } else {
                diverged.push(false);
            }
            digests.push(MissionDigest::of(&branch.run_to_completion()));
        }
        // The unperturbed branch reproduces the straight run...
        assert_eq!(digests[0], MissionDigest::of(&run_mission(&config)));
        // ...and the perturbed branch flies a different trajectory.
        assert_ne!(digests[0].trajectory, digests[1].trajectory);
    }

    #[test]
    fn forked_branch_registries_combine_without_double_counting() {
        let config = short(SyncMode::Sequential);
        let straight = run_mission(&config).metric_registry();

        let mut mission = Mission::start(&config);
        mission.run_syncs(20);
        let branches = mission.fork(2).expect("fork");
        let prefix = mission.finish().metric_registry();
        let prefix_syncs = prefix.counter_value("sync.syncs").expect("sync.syncs");
        assert_eq!(prefix_syncs, 20);
        let prefix_cycles = prefix.counter_value("soc.cycles").expect("soc.cycles");

        let mut regs = Vec::new();
        for (i, mut branch) in branches.into_iter().enumerate() {
            if i == 1 {
                branch.perturb_yaw(0.2);
            }
            regs.push(branch.run_to_completion().metric_registry());
        }
        let suffix_syncs: u64 = regs
            .iter()
            .map(|r| r.counter_value("sync.syncs").unwrap() - prefix_syncs)
            .sum();
        let suffix_cycles: u64 = regs
            .iter()
            .map(|r| r.counter_value("soc.cycles").unwrap() - prefix_cycles)
            .sum();

        // Persisted counters resume from the prefix totals, so merging the
        // branch registries naively counts the shared warm-start prefix
        // once per branch...
        let mut naive = prefix.clone();
        for reg in &regs {
            naive.merge(reg);
        }
        assert_eq!(
            naive.counter_value("sync.syncs"),
            Some(3 * prefix_syncs + suffix_syncs)
        );

        // ...while prefix + Σ delta_since(prefix) counts it exactly once.
        let mut merged = prefix.clone();
        for reg in &regs {
            merged.merge(&reg.delta_since(&prefix));
        }
        assert_eq!(
            merged.counter_value("sync.syncs"),
            Some(prefix_syncs + suffix_syncs)
        );
        assert_eq!(
            merged.counter_value("soc.cycles"),
            Some(prefix_cycles + suffix_cycles)
        );

        // Host telemetry (DESIGN.md §4f) is never persisted: a resumed
        // branch re-observes only its own suffix, so it never needed the
        // delta in the first place — the unperturbed branch's kernel-cycle
        // histogram plus the prefix's reassembles the straight run's.
        let count = |reg: &rose_trace::MetricRegistry| {
            reg.histogram("soc.kernel_cycles").expect("kernel hist").count()
        };
        assert_eq!(count(&prefix) + count(&regs[0]), count(&straight));
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let config = short(SyncMode::Sequential);
        let mission = Mission::start(&config);
        let snap = mission.snapshot();

        // Wrong magic.
        let mut bad = snap.bytes().to_vec();
        bad[0] ^= 0xFF;
        assert!(MissionSnapshot::from_bytes(bad).resume().is_err());

        // Unsupported version.
        let mut bad = snap.bytes().to_vec();
        bad[4] = 0xFF;
        assert!(matches!(
            MissionSnapshot::from_bytes(bad).resume(),
            Err(SnapError::BadVersion { .. })
        ));

        // Truncation anywhere in the stream.
        let mut bad = snap.bytes().to_vec();
        bad.truncate(bad.len() / 2);
        assert!(MissionSnapshot::from_bytes(bad).resume().is_err());

        // Trailing garbage.
        let mut bad = snap.bytes().to_vec();
        bad.push(0);
        assert!(matches!(
            MissionSnapshot::from_bytes(bad).resume(),
            Err(SnapError::TrailingBytes { .. })
        ));
    }
}
