//! The mission runner: one closed-loop flight, configured end to end.
//!
//! A mission wires the full Figure 3 stack together — environment
//! ([`rose_envsim::UavSim`] + [`rose_flightctl::SimpleFlight`]), hardware
//! ([`rose_socsim::Soc`] running a [`crate::app::TrailNavApp`]), and the
//! lockstep [`rose_bridge::Synchronizer`] — runs it until the UAV reaches
//! the goal (or times out), and reports the paper's quantitative metrics:
//! mission time, average flight velocity, collision count, inference
//! latency, and accelerator activity factor.

use crate::app::{AppMetrics, ControlGains, ControllerChoice, TrailNavApp};
use crate::envside::CoSimEnv;
use crate::rtlside::SocRtl;
use parking_lot::Mutex;
use rose_bridge::faults::{FaultPlan, FaultStats, FaultyTransport};
use rose_bridge::sync::{
    serve_rtl, RecoveryPolicy, RecoveryStats, RemoteRtl, SyncConfig, SyncMode, SyncStats,
    SyncTelemetry, Synchronizer,
};
use rose_bridge::transport::ChannelTransport;
use rose_dnn::DnnModel;
use rose_envsim::uav::{TrajectoryPoint, UavSim, UavSimConfig};
use rose_envsim::world::{World, WorldKind};
use rose_flightctl::SimpleFlight;
use rose_sim_core::cycles::{FrameSpec, SyncRatio};
use rose_sim_core::csv::CsvLog;
use rose_sim_core::math::Vec3;
use rose_sim_core::rng::SimRng;
use rose_socsim::soc::SocStats;
use rose_socsim::{Soc, SocConfig};
use rose_trace::{
    FlightRecorder, FlightSample, LogHistogram, MetricRegistry, Profiler, TraceClock, TraceLog,
    Tracer,
};
use std::sync::Arc;

/// Full configuration of one mission.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionConfig {
    /// The SoC under evaluation (Table 2).
    pub soc: SocConfig,
    /// Controller selection (static DNN or dynamic runtime).
    pub controller: ControllerChoice,
    /// The environment (Figure 9).
    pub world: WorldKind,
    /// Forward velocity target in m/s.
    pub velocity: f64,
    /// Initial heading relative to the corridor, degrees (Figure 10 uses
    /// −20°, 0°, +20°).
    pub initial_yaw_deg: f64,
    /// Environment frame rate.
    pub frame_hz: u32,
    /// Frames per synchronization period (granularity of Figures 15/16).
    pub frames_per_sync: u64,
    /// Intra-period execution: run the SoC grant and the environment
    /// frames concurrently ([`SyncMode::Parallel`], the default) or on one
    /// thread. Unobservable to the simulated system either way.
    pub sync_mode: SyncMode,
    /// Deterministic seed for all stochastic components.
    pub seed: u64,
    /// Wall on simulated time; missions that have not reached the goal by
    /// then report `completed = false`.
    pub max_sim_seconds: f64,
    /// Controller gains (Equation 2).
    pub gains: ControlGains,
    /// Record a cycle-accurate event trace of the run. Off by default:
    /// every component then pays only a branch per would-be event. The
    /// collected trace is returned in [`MissionReport::trace`].
    pub trace: bool,
    /// Per-frame control-loop deadline budget in simulated seconds.
    /// When positive, every image-request → command latency above the
    /// budget counts a deadline miss (triggering a flight-recorder
    /// postmortem), and the remaining slack feeds
    /// [`AppMetrics::slack_cycles`]. 0 disables the check.
    pub deadline_budget_s: f64,
    /// Depth-sensor blackout windows `[start, end)` in simulated seconds:
    /// inside a window the sensor answers the invalid-reading sentinel
    /// and the application degrades to its conservative ladder.
    pub depth_blackouts: Vec<(f64, f64)>,
    /// Scheduled accelerometer bias step changes `(at_seconds, delta)`,
    /// modeling in-flight IMU degradation.
    pub imu_bias_steps: Vec<(f64, Vec3)>,
    /// Transport-fault recovery policy for deployments that place the RTL
    /// behind a transport ([`run_mission_with_faults`]).
    pub recovery: RecoveryPolicy,
    /// Consecutive degraded control-loop iterations (invalid depth or
    /// missed deadline) after which the application requests a clean
    /// mission abort. 0 (the default) never aborts.
    pub degraded_abort_streak: u64,
    /// Optional shared timing cache (DESIGN.md §4i): the SoC replays
    /// previously expanded kernel and accelerator costs instead of
    /// re-deriving them, with bit-identical mission digests. `None` (the
    /// default) runs every mission cold.
    pub timing_cache: Option<rose_socsim::SharedTimingCache>,
}

impl Default for MissionConfig {
    fn default() -> MissionConfig {
        MissionConfig {
            soc: SocConfig::config_a(),
            controller: ControllerChoice::Static(DnnModel::ResNet14),
            world: WorldKind::Tunnel,
            velocity: 3.0,
            initial_yaw_deg: 0.0,
            frame_hz: 60,
            frames_per_sync: 1,
            sync_mode: SyncMode::Parallel,
            seed: 0x0520_2306,
            max_sim_seconds: 90.0,
            gains: ControlGains::default(),
            trace: false,
            deadline_budget_s: 0.0,
            depth_blackouts: Vec::new(),
            imu_bias_steps: Vec::new(),
            recovery: RecoveryPolicy::default(),
            degraded_abort_streak: 0,
            timing_cache: None,
        }
    }
}

impl MissionConfig {
    /// The clock mapping both simulated time domains (SoC cycles and
    /// environment frames) onto one trace timeline.
    pub fn trace_clock(&self) -> TraceClock {
        TraceClock::new(self.soc.clock, FrameSpec::from_hz(self.frame_hz))
    }

    /// Serializes the configuration into a snapshot stream. A snapshot is
    /// self-contained: resume rebuilds the mission structure from this
    /// embedded config, then overlays the dynamic state.
    pub fn save_state(&self, w: &mut rose_sim_core::snap::SnapWriter) {
        let MissionConfig {
            soc,
            controller,
            world,
            velocity,
            initial_yaw_deg,
            frame_hz,
            frames_per_sync,
            sync_mode,
            seed,
            max_sim_seconds,
            gains,
            trace,
            deadline_budget_s,
            depth_blackouts,
            imu_bias_steps,
            recovery,
            degraded_abort_streak,
            // Structural, host-local attachment: a resumed mission decides
            // its own cache (like the recovery policy's re-arming), and the
            // digest contract makes the choice unobservable anyway.
            timing_cache: _,
        } = self;
        soc.save_state(w);
        controller.save_state(w);
        world.save_state(w);
        w.f64(*velocity);
        w.f64(*initial_yaw_deg);
        w.u32(*frame_hz);
        w.u64(*frames_per_sync);
        w.u8(match sync_mode {
            SyncMode::Sequential => 0,
            SyncMode::Parallel => 1,
        });
        w.u64(*seed);
        w.f64(*max_sim_seconds);
        gains.save_state(w);
        w.bool(*trace);
        w.f64(*deadline_budget_s);
        w.usize(depth_blackouts.len());
        for &(start, end) in depth_blackouts {
            w.f64(start);
            w.f64(end);
        }
        w.usize(imu_bias_steps.len());
        for (at, delta) in imu_bias_steps {
            w.f64(*at);
            delta.save_state(w);
        }
        w.u32(recovery.max_retries);
        w.u32(recovery.backoff_base);
        w.u32(recovery.backoff_cap);
        w.u64(*degraded_abort_streak);
    }

    /// Restores a configuration from a snapshot stream.
    ///
    /// # Errors
    ///
    /// Propagates [`rose_sim_core::snap::SnapError`] on a malformed
    /// snapshot.
    pub fn restore_state(
        r: &mut rose_sim_core::snap::SnapReader<'_>,
    ) -> Result<MissionConfig, rose_sim_core::snap::SnapError> {
        let soc = SocConfig::restore_state(r)?;
        let controller = ControllerChoice::restore_state(r)?;
        let world = WorldKind::restore_state(r)?;
        let velocity = r.f64()?;
        let initial_yaw_deg = r.f64()?;
        let frame_hz = r.u32()?;
        let frames_per_sync = r.u64()?;
        let sync_mode = match r.u8()? {
            0 => SyncMode::Sequential,
            1 => SyncMode::Parallel,
            tag => {
                return Err(rose_sim_core::snap::SnapError::BadTag {
                    context: "MissionConfig.sync_mode",
                    tag,
                })
            }
        };
        let seed = r.u64()?;
        let max_sim_seconds = r.f64()?;
        let gains = ControlGains::restore_state(r)?;
        let trace = r.bool()?;
        let deadline_budget_s = r.f64()?;
        let n_blackouts = r.usize()?;
        let mut depth_blackouts = Vec::with_capacity(n_blackouts.min(1 << 16));
        for _ in 0..n_blackouts {
            let start = r.f64()?;
            depth_blackouts.push((start, r.f64()?));
        }
        let n_steps = r.usize()?;
        let mut imu_bias_steps = Vec::with_capacity(n_steps.min(1 << 16));
        for _ in 0..n_steps {
            let at = r.f64()?;
            imu_bias_steps.push((at, Vec3::restore_state(r)?));
        }
        let recovery = RecoveryPolicy {
            max_retries: r.u32()?,
            backoff_base: r.u32()?,
            backoff_cap: r.u32()?,
        };
        Ok(MissionConfig {
            soc,
            controller,
            world,
            velocity,
            initial_yaw_deg,
            frame_hz,
            frames_per_sync,
            sync_mode,
            seed,
            max_sim_seconds,
            gains,
            trace,
            deadline_budget_s,
            depth_blackouts,
            imu_bias_steps,
            recovery,
            degraded_abort_streak: r.u64()?,
            timing_cache: None,
        })
    }

    /// The number of synchronization periods implied by the simulated-time
    /// wall ([`MissionConfig::max_sim_seconds`]).
    pub fn max_syncs(&self) -> u64 {
        (self.max_sim_seconds * self.frame_hz as f64 / self.frames_per_sync as f64).ceil() as u64
    }
}

/// The outcome of one mission.
#[derive(Debug, Clone)]
pub struct MissionReport {
    /// True if the UAV crossed the goal plane before the time limit.
    pub completed: bool,
    /// Simulated seconds to goal (`None` if not completed).
    pub mission_time_s: Option<f64>,
    /// Total simulated seconds executed.
    pub sim_time_s: f64,
    /// Collision events during the flight.
    pub collisions: u32,
    /// Average flight velocity along the corridor (goal distance over
    /// mission time), m/s; 0 if not completed.
    pub avg_velocity: f64,
    /// Per-frame trajectory.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Inferences completed.
    pub inference_count: u64,
    /// Mean image-request → command latency in milliseconds (Figure 16c).
    pub mean_latency_ms: f64,
    /// Fraction of inferences served by the fast network (dynamic only).
    pub fast_fraction: f64,
    /// Accelerator activity factor (Section 5.3 / Figure 13).
    pub activity_factor: f64,
    /// Mission energy (first-order model, see `rose_socsim::energy`).
    pub energy: rose_socsim::energy::EnergyReport,
    /// Raw SoC counters.
    pub soc_stats: SocStats,
    /// Synchronizer counters (throughput for Figure 15).
    pub sync_stats: SyncStats,
    /// Application-level counters (inference latencies, model selections).
    pub app: AppMetrics,
    /// The merged cycle-accurate event trace, present when
    /// [`MissionConfig::trace`] was set.
    pub trace: Option<TraceLog>,
    /// Host wall-clock self-profile of the run (env step / RTL grant /
    /// transport / snapshot codec / trace overhead). Telemetry: never an
    /// input to the determinism digest (DESIGN.md §4f).
    pub profile: Profiler,
    /// Synchronizer host-telemetry histograms (quantum wall time, grant
    /// latency, bridge queue depth).
    pub sync_telemetry: SyncTelemetry,
    /// Distribution of per-issue kernel / accelerator-tile cycle costs.
    pub kernel_cycles: LogHistogram,
    /// Postmortem JSON documents the flight recorder dumped during the
    /// run (one per trigger: collision, deadline miss, transport fault).
    pub postmortems: Vec<String>,
    /// Flight-recorder ring occupancy at mission end.
    pub flight_occupancy: usize,
    /// Flight-recorder ring capacity.
    pub flight_capacity: usize,
}

impl MissionReport {
    /// Dumps the trajectory as a CSV table (`t,x,y,z,vx,vy,vz,yaw,collision`),
    /// matching the synchronizer CSV logs of the artifact.
    pub fn trajectory_csv(&self) -> CsvLog {
        let mut log = CsvLog::new(&["t", "x", "y", "z", "vx", "vy", "vz", "yaw", "collision"]);
        for p in &self.trajectory {
            log.row(&[
                p.t,
                p.position.x,
                p.position.y,
                p.position.z,
                p.velocity.x,
                p.velocity.y,
                p.velocity.z,
                p.yaw,
                p.in_collision as u8 as f64,
            ]);
        }
        log
    }

    /// Collects every counter of the run — SoC, synchronizer, energy,
    /// application, and mission-level outcomes — into one named-metric
    /// registry (the `--metrics` CSV of `profile_mission`).
    pub fn metric_registry(&self) -> MetricRegistry {
        let mut registry = MetricRegistry::new();
        registry.record(&self.soc_stats);
        registry.record(&self.sync_stats);
        registry.record(&self.sync_telemetry);
        registry.record(&self.energy);
        registry.record(&self.app);
        registry.record(&self.profile);
        registry.record_histogram("soc.kernel_cycles", &self.kernel_cycles);
        registry.set_counter("mission.collisions", self.collisions as u64);
        registry.set_counter("mission.postmortems", self.postmortems.len() as u64);
        registry.gauge("mission.completed", self.completed as u8 as f64);
        registry.gauge("mission.sim_time_s", self.sim_time_s);
        registry.gauge("mission.avg_velocity", self.avg_velocity);
        registry.gauge("mission.mean_latency_ms", self.mean_latency_ms);
        registry.gauge("mission.activity_factor", self.activity_factor);
        registry.gauge("flight.ring_occupancy", self.flight_occupancy as f64);
        registry.gauge("flight.ring_capacity", self.flight_capacity as f64);
        registry
    }
}

/// Builds and runs one mission to completion (goal or timeout), with the
/// flight recorder sampling every synchronization boundary.
pub fn run_mission(config: &MissionConfig) -> MissionReport {
    let (mut sync, metrics) = build_mission(config);
    let mut flight = FlightRecorder::default();
    let postmortems = drive_mission(config, &mut sync, &metrics, &mut flight);
    let mut report = finish_report(config, sync, &metrics);
    report.postmortems = postmortems;
    report.flight_occupancy = flight.occupancy();
    report.flight_capacity = flight.capacity();
    report
}

/// Steps the co-simulation one synchronization period at a time until the
/// mission completes, the program halts, or the simulated-time wall is
/// reached, feeding `flight` one [`FlightSample`] per quantum. Returns the
/// postmortem JSON documents the recorder dumped.
///
/// The per-quantum loop is host bookkeeping only — the simulated system
/// sees exactly the same grant sequence as one
/// [`Synchronizer::run_until`] call, so trajectories and the determinism
/// digest are unchanged.
pub fn drive_mission(
    config: &MissionConfig,
    sync: &mut Synchronizer<CoSimEnv, SocRtl>,
    metrics: &Mutex<AppMetrics>,
    flight: &mut FlightRecorder,
) -> Vec<String> {
    let max_syncs = config.max_syncs();
    let mut postmortems = Vec::new();
    while sync.stats().syncs < max_syncs {
        let before = *sync.stats();
        if sync.run_until(1, |env, _| env.sim().mission_complete()) == 0 {
            break; // mission complete or program halted
        }
        let after = *sync.stats();
        let sample = FlightSample {
            sync: after.syncs,
            sim_time_s: sync.env().sim().time(),
            collisions: sync.env().sim().collision_count() as u64,
            deadline_misses: metrics.lock().deadline_misses,
            queue_depth: after.data_to_env - before.data_to_env,
            env_wall_us: (after.env_wall - before.env_wall).as_secs_f64() * 1e6,
            rtl_wall_us: (after.rtl_wall - before.rtl_wall).as_secs_f64() * 1e6,
            // In-process RTL: no transport, so never a fault and never
            // recovery work.
            fault: false,
            recovery_retries: 0,
            recovery_us: 0.0,
        };
        // Attribution reads the SoC tracer's buffer non-destructively;
        // with tracing off this is an empty slice and the recorder costs
        // a few counter compares per quantum.
        let recent = sync.rtl().soc().tracer().events();
        if let Some(pm) = flight.observe(sample, recent) {
            postmortems.push(pm);
        }
        if metrics.lock().abort_requested {
            // The degradation ladder's last rung: wind down cleanly with
            // a postmortem instead of flying blind to the timeout.
            postmortems.push(flight.postmortem(
                "mission-abort",
                "sustained degraded-control streak",
            ));
            break;
        }
    }
    postmortems
}

/// Constructs the full co-simulation for `config` without running it
/// (exposed for benches that need custom stepping).
pub fn build_mission(
    config: &MissionConfig,
) -> (
    Synchronizer<CoSimEnv, SocRtl>,
    Arc<Mutex<AppMetrics>>,
) {
    let (env, rtl, sync_config, metrics) = mission_parts(config);
    let mut sync = Synchronizer::new(sync_config, env, rtl);
    if config.trace {
        sync.set_tracer(Tracer::enabled(config.trace_clock()));
    }
    (sync, metrics)
}

/// Constructs the mission's endpoints without a synchronizer — used by
/// deployments that place the RTL side behind a transport (the paper's
/// TCP configuration, exercised by the Figure 15 throughput benchmark).
pub fn mission_parts(
    config: &MissionConfig,
) -> (CoSimEnv, SocRtl, SyncConfig, Arc<Mutex<AppMetrics>>) {
    let rng = SimRng::new(config.seed);
    let (mut app, metrics) = TrailNavApp::new(
        config.controller,
        config.soc.has_accelerator(),
        config.velocity,
        &rng,
    );
    app.set_gains(config.gains);
    app.set_deadline_budget(config.deadline_budget_s, config.soc.clock.hz() as f64);
    app.set_abort_after_degraded(config.degraded_abort_streak);
    let (env, rtl, sync_config) = mission_parts_with_program(config, Box::new(app));
    (env, rtl, sync_config, metrics)
}

/// Synchronization quanta a blocked sensor read waits before the SoC's RX
/// watchdog declares the response lost and lets the application degrade
/// (DESIGN.md §4h). Responses arrive within one quantum on a healthy
/// link; the margin keeps transient stall/reorder jitter from tripping
/// the watchdog spuriously.
pub const RX_TIMEOUT_QUANTA: u64 = 8;

/// Constructs the mission's endpoints around an arbitrary target program
/// (e.g. the classical MPC workload of [`crate::mpc`]).
pub fn mission_parts_with_program(
    config: &MissionConfig,
    program: Box<dyn rose_socsim::TargetProgram>,
) -> (CoSimEnv, SocRtl, SyncConfig) {
    let rng = SimRng::new(config.seed);
    let world = World::of_kind(config.world);

    // Environment + software-in-the-loop flight controller (Figure 7).
    let uav_config = UavSimConfig {
        frames: FrameSpec::from_hz(config.frame_hz),
        start_yaw: config.initial_yaw_deg.to_radians(),
        ..UavSimConfig::default()
    };
    let autopilot = SimpleFlight::default_for(uav_config.quad);
    let mut sim = UavSim::new(uav_config, world, Box::new(autopilot), &rng);
    // Sensor-degradation schedules are structural config: they are
    // re-applied here on every build, including a snapshot resume.
    sim.set_depth_blackouts(config.depth_blackouts.clone());
    sim.set_imu_bias_steps(config.imu_bias_steps.clone());
    if config.trace {
        sim.set_tracer(Tracer::enabled(config.trace_clock()));
    }
    // The mission's velocity target is active from launch; the DNN
    // controller refines lateral/angular targets once inferences arrive
    // (so high-latency SoCs fly uncorrected at speed, as in Figure 10c).
    sim.handle(rose_envsim::api::SimRequest::SetVelocityTarget(
        rose_envsim::api::VelocityTarget::forward(config.velocity),
    ));
    let env = CoSimEnv::new(sim);

    // Companion-computer SoC running the target application.
    let mut soc = Soc::new(config.soc.clone(), program);
    // Arm the blocked-Recv watchdog so a sensor response lost on a lossy
    // transport degrades the iteration instead of wedging the control
    // loop forever. Healthy links answer within one quantum, so the
    // window is unreachable on clean runs (behavior-neutral).
    soc.set_rx_timeout_quanta(RX_TIMEOUT_QUANTA);
    if config.trace {
        soc.set_tracer(Tracer::enabled(config.trace_clock()));
    }
    if let Some(cache) = &config.timing_cache {
        soc.set_timing_cache(cache.clone());
    }
    let rtl = SocRtl::new(soc);

    let ratio = SyncRatio::new(config.soc.clock, FrameSpec::from_hz(config.frame_hz));
    let sync_config = SyncConfig::new(ratio, config.frames_per_sync).with_mode(config.sync_mode);
    (env, rtl, sync_config)
}

/// Runs a mission with a best-effort telemetry task time-sharing the
/// companion core with the control loop (the multi-tenant scenario the
/// paper motivates in §1). Returns the mission report plus the number of
/// telemetry blocks the background task processed.
pub fn run_mission_multitenant(
    config: &MissionConfig,
    sharing: rose_socsim::multitenant::TimeSharedConfig,
    telemetry_block_bytes: usize,
) -> (MissionReport, u64) {
    use rose_socsim::multitenant::{TelemetryTask, TimeShared};

    let rng = SimRng::new(config.seed);
    let (mut app, metrics) = TrailNavApp::new(
        config.controller,
        config.soc.has_accelerator(),
        config.velocity,
        &rng,
    );
    app.set_gains(config.gains);
    app.set_deadline_budget(config.deadline_budget_s, config.soc.clock.hz() as f64);
    let (telemetry, loops) = TelemetryTask::new(telemetry_block_bytes);
    let shared = TimeShared::new(Box::new(app), Box::new(telemetry), sharing);
    let (env, rtl, sync_config) = mission_parts_with_program(config, Box::new(shared));
    let mut sync = Synchronizer::new(sync_config, env, rtl);
    if config.trace {
        sync.set_tracer(Tracer::enabled(config.trace_clock()));
    }
    sync.run_until(config.max_syncs(), |env, _| env.sim().mission_complete());
    let report = finish_report(config, sync, &metrics);
    let processed = loops.load(std::sync::atomic::Ordering::Relaxed);
    (report, processed)
}

/// Extracts the report after a run (exposed for benches).
pub fn finish_report(
    config: &MissionConfig,
    mut sync: Synchronizer<CoSimEnv, SocRtl>,
    metrics: &Mutex<AppMetrics>,
) -> MissionReport {
    let sync_stats = *sync.stats();
    let sync_telemetry = sync.telemetry().clone();
    let profile = sync.profiler().clone();
    let sync_events = sync.take_trace_events();
    let (env, rtl) = sync.into_parts();
    assemble_report(
        config,
        sync_stats,
        sync_telemetry,
        profile,
        sync_events,
        env,
        rtl,
        metrics,
    )
}

/// Assembles a [`MissionReport`] from a run's disassembled pieces. Shared
/// by the in-process topology ([`finish_report`]) and the remote one
/// ([`run_mission_with_faults`]), where the RTL endpoint comes back from
/// the server thread rather than out of the synchronizer.
#[allow(clippy::too_many_arguments)]
fn assemble_report(
    config: &MissionConfig,
    sync_stats: SyncStats,
    sync_telemetry: SyncTelemetry,
    profile: Profiler,
    sync_events: Vec<rose_trace::TraceEvent>,
    env: CoSimEnv,
    rtl: SocRtl,
    metrics: &Mutex<AppMetrics>,
) -> MissionReport {
    let mut sim = env.into_sim();
    let mut soc = rtl.into_soc();
    let soc_stats = soc.stats();
    let kernel_cycles = soc.kernel_cycles_hist().clone();
    // Merge each component's owned trace buffer into one chronological log.
    let trace = config.trace.then(|| {
        let mut log = TraceLog::new();
        log.extend(sim.take_trace_events());
        log.extend(soc.take_trace_events());
        log.extend(sync_events);
        log.sort_by_time();
        log
    });
    let m = metrics.lock();

    let completed = sim.mission_complete();
    let mission_time = completed.then(|| sim.time());
    let goal = sim.world().goal_x();
    let clock_hz = config.soc.clock.hz() as f64;
    MissionReport {
        completed,
        mission_time_s: mission_time,
        sim_time_s: sim.time(),
        collisions: sim.collision_count(),
        avg_velocity: mission_time.map_or(0.0, |t| if t > 0.0 { goal / t } else { 0.0 }),
        trajectory: sim.trajectory().to_vec(),
        inference_count: m.inferences,
        mean_latency_ms: m.mean_latency_cycles() / clock_hz * 1e3,
        fast_fraction: if m.inferences == 0 {
            0.0
        } else {
            m.fast_inferences as f64 / m.inferences as f64
        },
        activity_factor: soc_stats.activity_factor(),
        energy: rose_socsim::energy::energy_of(&soc_stats, &config.soc),
        soc_stats,
        sync_stats,
        app: m.clone(),
        trace,
        profile,
        sync_telemetry,
        kernel_cycles,
        postmortems: Vec::new(),
        flight_occupancy: 0,
        flight_capacity: 0,
    }
}

/// Outcome of a mission flown over a fault-injected transport.
#[derive(Debug, Clone)]
pub struct FaultedMissionReport {
    /// The ordinary mission report (trajectory, counters, postmortems).
    pub report: MissionReport,
    /// What the injector actually fired, by kind.
    pub fault_stats: FaultStats,
    /// What absorbing the faults cost the synchronizer.
    pub recovery: RecoveryStats,
    /// The latched fault's message, when the recovery policy was
    /// exhausted and the mission wound down early.
    pub latched: Option<String>,
    /// True when the application's degradation ladder requested a clean
    /// abort.
    pub aborted: bool,
}

/// Runs a mission with the RTL endpoint behind an in-process transport
/// wrapped in a deterministic fault injector — the full robustness
/// topology: sequenced packets, the recovery policy of
/// [`MissionConfig::recovery`], and the application's degradation ladder,
/// all under one seeded [`FaultPlan`].
///
/// The SoC runs on a server thread driven by [`serve_rtl`]; the
/// synchronizer drives it through [`RemoteRtl`] over a
/// [`FaultyTransport`]-wrapped [`ChannelTransport`]. Transient faults are
/// absorbed (and attributed to [`rose_trace::Phase::Recovery`]); only an
/// exhausted policy latches, winding the mission down at the last
/// completed sync boundary.
pub fn run_mission_with_faults(config: &MissionConfig, plan: FaultPlan) -> FaultedMissionReport {
    use rose_trace::Phase;

    let (env, rtl, sync_config, metrics) = mission_parts(config);
    let (client, mut server) = ChannelTransport::pair();
    let server_thread = std::thread::spawn(move || {
        let mut rtl = rtl;
        let result = serve_rtl(&mut server, &mut rtl);
        (rtl, result)
    });
    let remote = RemoteRtl::with_policy(FaultyTransport::new(client, plan), config.recovery);
    let mut sync = Synchronizer::new(sync_config, env, remote);
    if config.trace {
        sync.set_tracer(Tracer::enabled(config.trace_clock()));
    }

    let max_syncs = config.max_syncs();
    let mut flight = FlightRecorder::default();
    let mut postmortems = Vec::new();
    let mut aborted = false;
    while sync.stats().syncs < max_syncs {
        let before = *sync.stats();
        let recovery_before = sync.profiler().total(Phase::Recovery);
        let ran = sync.run_until(1, |env, _| env.sim().mission_complete());
        let after = *sync.stats();
        let sample = FlightSample {
            sync: after.syncs,
            sim_time_s: sync.env().sim().time(),
            collisions: sync.env().sim().collision_count() as u64,
            deadline_misses: metrics.lock().deadline_misses,
            queue_depth: after.data_to_env - before.data_to_env,
            env_wall_us: (after.env_wall - before.env_wall).as_secs_f64() * 1e6,
            rtl_wall_us: (after.rtl_wall - before.rtl_wall).as_secs_f64() * 1e6,
            fault: sync.rtl().fault().is_some(),
            recovery_retries: sync.rtl().recovery_stats().retries,
            recovery_us: (sync.profiler().total(Phase::Recovery) - recovery_before)
                .as_secs_f64()
                * 1e6,
        };
        // The remote SoC's tracer buffer lives on the server thread, so
        // attribution here sees only boundary samples.
        if let Some(pm) = flight.observe(sample, &[]) {
            postmortems.push(pm);
        }
        if ran == 0 {
            break; // complete, halted, or latched fault
        }
        if metrics.lock().abort_requested {
            aborted = true;
            postmortems.push(flight.postmortem(
                "mission-abort",
                "sustained degraded-control streak",
            ));
            break;
        }
    }

    let sync_stats = *sync.stats();
    let sync_telemetry = sync.telemetry().clone();
    let profile = sync.profiler().clone();
    let sync_events = sync.take_trace_events();
    let (env, remote) = sync.into_parts();
    let fault_stats = *remote.transport().stats();
    let recovery = *remote.recovery_stats();
    let latched = remote.fault().map(|e| e.to_string());
    // Orderly shutdown when healthy; on a latched fault this returns the
    // error and dropping the transport disconnects the server instead.
    let _ = remote.shutdown();
    let (rtl, served) = server_thread.join().expect("rtl server thread");
    debug_assert!(served.is_ok(), "server exited with {served:?}");

    let mut report = assemble_report(
        config,
        sync_stats,
        sync_telemetry,
        profile,
        sync_events,
        env,
        rtl,
        &metrics,
    );
    report.postmortems = postmortems;
    report.flight_occupancy = flight.occupancy();
    report.flight_capacity = flight.capacity();
    FaultedMissionReport {
        report,
        fault_stats,
        recovery,
        latched,
        aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_mission_produces_consistent_report() {
        let config = MissionConfig {
            max_sim_seconds: 3.0,
            ..MissionConfig::default()
        };
        let report = run_mission(&config);
        assert!(!report.completed, "3 s is not enough for 50 m at 3 m/s");
        assert_eq!(report.trajectory.len(), 180); // 3 s at 60 fps
        assert!(report.sim_time_s >= 3.0);
        assert!(report.inference_count >= 1, "at least one control update");
        assert!(report.mean_latency_ms > 50.0, "latency includes inference");
        assert!(report.activity_factor > 0.0);
        // The UAV should be moving forward by the end.
        let last = report.trajectory.last().unwrap();
        assert!(last.position.x > 1.0, "x = {}", last.position.x);
    }

    #[test]
    fn deterministic_missions() {
        let config = MissionConfig {
            max_sim_seconds: 2.0,
            ..MissionConfig::default()
        };
        let a = run_mission(&config);
        let b = run_mission(&config);
        let pa = a.trajectory.last().unwrap().position;
        let pb = b.trajectory.last().unwrap().position;
        assert_eq!(pa, pb, "same seed must reproduce the trajectory");
        assert_eq!(a.inference_count, b.inference_count);
    }

    #[test]
    fn different_seeds_diverge() {
        let base = MissionConfig {
            max_sim_seconds: 2.0,
            ..MissionConfig::default()
        };
        let a = run_mission(&base);
        let b = run_mission(&MissionConfig {
            seed: 999,
            ..base.clone()
        });
        let pa = a.trajectory.last().unwrap().position;
        let pb = b.trajectory.last().unwrap().position;
        assert_ne!(pa, pb, "different seeds should perturb the flight");
    }

    #[test]
    fn traced_mission_merges_all_tracks_and_registry_matches_stats() {
        let config = MissionConfig {
            max_sim_seconds: 2.0,
            trace: true,
            ..MissionConfig::default()
        };
        let report = run_mission(&config);
        let log = report.trace.as_ref().expect("trace requested");

        // Every layer of the stack contributed events, merged in time order.
        assert_eq!(log.count_named("env-frame"), report.trajectory.len());
        assert_eq!(
            log.count_named("sync-quantum") as u64,
            report.sync_stats.syncs
        );
        assert_eq!(
            log.count_named("bridge-packet") as u64,
            report.sync_stats.data_to_env + report.sync_stats.data_to_rtl
        );
        assert!(log.count_named("gemmini-tile") > 0, "accelerator ran");
        assert!(
            log.events().windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
            "merged log is chronological"
        );

        // The registry reproduces the raw stats counters exactly.
        let reg = report.metric_registry();
        assert_eq!(
            reg.counter_value("soc.l2.misses"),
            Some(report.soc_stats.l2.misses)
        );
        assert_eq!(
            reg.counter_value("soc.l1.misses"),
            Some(report.soc_stats.l1.misses)
        );
        assert_eq!(reg.counter_value("sync.syncs"), Some(report.sync_stats.syncs));
        assert_eq!(
            reg.counter_value("app.inferences"),
            Some(report.inference_count)
        );
        assert_eq!(
            reg.gauge_value("energy.total_mj"),
            Some(report.energy.total_mj())
        );

        // An untraced mission carries no log (and records no events).
        let quiet = run_mission(&MissionConfig {
            max_sim_seconds: 2.0,
            ..MissionConfig::default()
        });
        assert!(quiet.trace.is_none());
    }

    #[test]
    fn trajectory_csv_has_all_frames() {
        let config = MissionConfig {
            max_sim_seconds: 1.0,
            ..MissionConfig::default()
        };
        let report = run_mission(&config);
        let csv = report.trajectory_csv();
        assert_eq!(csv.len(), report.trajectory.len());
        assert_eq!(csv.header()[0], "t");
        let xs = csv.column("x").unwrap();
        assert!(xs.last().unwrap() >= &0.0);
    }
}
